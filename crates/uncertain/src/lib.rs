//! # pv-uncertain — the attribute-uncertainty object model
//!
//! The paper adopts the *attribute uncertainty model* (§I): each object's
//! d-dimensional attribute vector is a random variable whose support is
//! minimally bounded by an axis-parallel **uncertainty region** `u(o)`, and
//! whose pdf is discretised into `n` weighted point *instances* (500 in the
//! paper's experiments, each carrying probability `1/n`).
//!
//! [`UncertainObject`] couples the region with a [`Pdf`] descriptor. To keep
//! 10⁷-instance datasets (the paper's scale) affordable in memory, the
//! uniform and Gaussian pdfs are stored as *(kind, seed, n)* and their
//! instances are re-materialised deterministically on demand; an
//! [`Pdf::Explicit`] variant stores literal samples for callers that need
//! full control. Serialisation helpers encode objects for the PV-index's
//! disk-resident secondary index.

#![deny(missing_docs)]

pub mod persist;

use pv_geom::{HyperRect, Point};
use pv_storage::codec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

/// Probability density descriptor for an uncertain object.
///
/// All variants discretise to `n` instances of weight `1/n` (the discrete
/// model of the paper's references \[13\], \[14\]).
#[derive(Debug, Clone, PartialEq)]
pub enum Pdf {
    /// `n` samples drawn uniformly from the uncertainty region.
    Uniform {
        /// Number of instances.
        n: u32,
        /// Deterministic sampling seed.
        seed: u64,
    },
    /// `n` samples from an isotropic Gaussian centred in the region
    /// (σ in domain units), clipped by rejection to the region — the model
    /// used for the paper's GPS-derived `airports` dataset.
    Gaussian {
        /// Standard deviation in each dimension.
        sigma: f64,
        /// Number of instances.
        n: u32,
        /// Deterministic sampling seed.
        seed: u64,
    },
    /// Explicit instance list (uniform weights).
    Explicit(Arc<Vec<Point>>),
}

impl Pdf {
    /// Number of instances this pdf discretises to.
    pub fn n_samples(&self) -> usize {
        match self {
            Pdf::Uniform { n, .. } | Pdf::Gaussian { n, .. } => *n as usize,
            Pdf::Explicit(v) => v.len(),
        }
    }

    /// Materialises the instance list for a given uncertainty region.
    ///
    /// Deterministic: the same `(pdf, region)` pair always yields the same
    /// samples, which is what makes lazily materialised pdfs sound for both
    /// probability computation and testing.
    pub fn samples(&self, region: &HyperRect) -> Vec<Point> {
        match self {
            Pdf::Uniform { n, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let d = region.dim();
                (0..*n)
                    .map(|_| {
                        Point::new(
                            (0..d)
                                .map(|j| {
                                    if region.extent(j) > 0.0 {
                                        rng.gen_range(region.lo()[j]..=region.hi()[j])
                                    } else {
                                        region.lo()[j]
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect()
            }
            Pdf::Gaussian { sigma, n, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let d = region.dim();
                let c = region.center();
                (0..*n)
                    .map(|_| {
                        // Rejection-sample a clipped Gaussian; fall back to
                        // clamping after a bounded number of tries so the
                        // generator cannot stall on tiny regions.
                        for _ in 0..64 {
                            let cand = Point::new(
                                (0..d).map(|j| c[j] + sigma * gauss(&mut rng)).collect(),
                            );
                            if region.contains_point(&cand) {
                                return cand;
                            }
                        }
                        let clamped: Vec<f64> = (0..d)
                            .map(|j| {
                                (c[j] + sigma * gauss(&mut rng))
                                    .clamp(region.lo()[j], region.hi()[j])
                            })
                            .collect();
                        Point::new(clamped)
                    })
                    .collect()
            }
            Pdf::Explicit(v) => v.as_ref().clone(),
        }
    }
}

/// One standard-normal variate via Box–Muller (keeps us inside the approved
/// dependency set — `rand_distr` is not vendored).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// An uncertain object: identity, rectangular uncertainty region and pdf.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainObject {
    /// Database-unique identifier.
    pub id: u64,
    /// Uncertainty region `u(o)` minimally bounding all attribute values.
    pub region: HyperRect,
    /// Discretised pdf over the region.
    pub pdf: Pdf,
}

impl UncertainObject {
    /// Convenience constructor with a uniform pdf whose seed derives from
    /// the object id (deterministic per object).
    pub fn uniform(id: u64, region: HyperRect, n_samples: u32) -> Self {
        Self {
            id,
            region,
            pdf: Pdf::Uniform {
                n: n_samples,
                seed: id.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(1),
            },
        }
    }

    /// Materialised instances.
    pub fn samples(&self) -> Vec<Point> {
        self.pdf.samples(&self.region)
    }

    /// Mean position (centre of the uncertainty region) — what FS/IS use as
    /// the object's "mean position" for NN ordering.
    pub fn mean(&self) -> Point {
        self.region.center()
    }

    /// Serialises `(id, region, pdf)` for the secondary index.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u64(&mut out, self.id);
        codec::put_u16(&mut out, self.region.dim() as u16);
        for &x in self.region.lo() {
            codec::put_f64(&mut out, x);
        }
        for &x in self.region.hi() {
            codec::put_f64(&mut out, x);
        }
        match &self.pdf {
            Pdf::Uniform { n, seed } => {
                codec::put_u16(&mut out, 0);
                codec::put_u32(&mut out, *n);
                codec::put_u64(&mut out, *seed);
            }
            Pdf::Gaussian { sigma, n, seed } => {
                codec::put_u16(&mut out, 1);
                codec::put_f64(&mut out, *sigma);
                codec::put_u32(&mut out, *n);
                codec::put_u64(&mut out, *seed);
            }
            Pdf::Explicit(points) => {
                codec::put_u16(&mut out, 2);
                codec::put_u32(&mut out, points.len() as u32);
                for p in points.iter() {
                    for &x in p.coords() {
                        codec::put_f64(&mut out, x);
                    }
                }
            }
        }
        out
    }

    /// Decodes an object serialised with [`UncertainObject::encode`].
    ///
    /// # Panics
    /// On a corrupted buffer; use [`UncertainObject::try_decode`] to handle
    /// corruption as an error instead.
    pub fn decode(buf: &[u8]) -> Self {
        Self::try_decode(buf).expect("corrupted uncertain-object record")
    }

    /// Checked variant of [`UncertainObject::decode`]: reports truncation and
    /// unknown pdf tags through the codec layer instead of panicking.
    pub fn try_decode(buf: &[u8]) -> Result<Self, codec::DecodeError> {
        let mut r = codec::Reader::new(buf);
        let id = r.try_u64()?;
        let dim = r.try_u16()? as usize;
        let read_coords = |r: &mut codec::Reader| -> Result<Vec<f64>, codec::DecodeError> {
            (0..dim).map(|_| r.try_f64()).collect()
        };
        let lo = read_coords(&mut r)?;
        let hi = read_coords(&mut r)?;
        let region = HyperRect::new(lo, hi);
        let pdf = match r.try_u16()? {
            0 => Pdf::Uniform {
                n: r.try_u32()?,
                seed: r.try_u64()?,
            },
            1 => Pdf::Gaussian {
                sigma: r.try_f64()?,
                n: r.try_u32()?,
                seed: r.try_u64()?,
            },
            2 => {
                let n = r.try_u32()? as usize;
                let pts = (0..n)
                    .map(|_| Ok(Point::new(read_coords(&mut r)?)))
                    .collect::<Result<Vec<_>, codec::DecodeError>>()?;
                Pdf::Explicit(Arc::new(pts))
            }
            t => {
                return Err(codec::DecodeError::UnknownTag {
                    context: "pdf descriptor",
                    tag: t,
                })
            }
        };
        Ok(UncertainObject { id, region, pdf })
    }
}

/// An uncertain database: a domain and a set of objects (§III: the set `S`).
#[derive(Debug, Clone)]
pub struct UncertainDb {
    /// The d-dimensional domain `D`.
    pub domain: HyperRect,
    /// Objects, indexable by position; ids are unique but not necessarily
    /// dense after updates.
    pub objects: Vec<UncertainObject>,
}

impl UncertainDb {
    /// Creates a database over `domain` with the given objects.
    ///
    /// # Panics
    /// If an object's region is not fully inside the domain, or ids repeat.
    pub fn new(domain: HyperRect, objects: Vec<UncertainObject>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for o in &objects {
            assert!(
                domain.contains_rect(&o.region),
                "object {} outside the domain",
                o.id
            );
            assert!(seen.insert(o.id), "duplicate object id {}", o.id);
        }
        Self { domain, objects }
    }

    /// Number of objects (`|S|`).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.domain.dim()
    }

    /// Finds an object by id (linear; index structures are built on top).
    pub fn get(&self, id: u64) -> Option<&UncertainObject> {
        self.objects.iter().find(|o| o.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn uniform_samples_stay_in_region_and_are_deterministic() {
        let r = region(&[0.0, 10.0], &[2.0, 12.0]);
        let o = UncertainObject::uniform(7, r.clone(), 200);
        let s1 = o.samples();
        let s2 = o.samples();
        assert_eq!(s1.len(), 200);
        assert_eq!(s1, s2, "sampling must be deterministic");
        assert!(s1.iter().all(|p| r.contains_point(p)));
    }

    #[test]
    fn different_ids_sample_differently() {
        let r = region(&[0.0, 0.0], &[1.0, 1.0]);
        let a = UncertainObject::uniform(1, r.clone(), 50);
        let b = UncertainObject::uniform(2, r, 50);
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn gaussian_samples_cluster_near_center() {
        let r = region(&[0.0, 0.0], &[10.0, 10.0]);
        let o = UncertainObject {
            id: 3,
            region: r.clone(),
            pdf: Pdf::Gaussian {
                sigma: 0.5,
                n: 500,
                seed: 99,
            },
        };
        let samples = o.samples();
        assert!(samples.iter().all(|p| r.contains_point(p)));
        let c = r.center();
        let mean_dist: f64 = samples.iter().map(|p| p.dist(&c)).sum::<f64>() / samples.len() as f64;
        // sigma=0.5 ⇒ expected 2-D distance ≈ sigma·sqrt(π/2) ≈ 0.63
        assert!(mean_dist < 1.5, "mean distance {mean_dist}");
    }

    #[test]
    fn gaussian_tiny_region_terminates() {
        let r = region(&[5.0, 5.0], &[5.0, 5.0]); // degenerate point region
        let o = UncertainObject {
            id: 4,
            region: r.clone(),
            pdf: Pdf::Gaussian {
                sigma: 3.0,
                n: 32,
                seed: 1,
            },
        };
        let s = o.samples();
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|p| r.contains_point(p)));
    }

    #[test]
    fn explicit_pdf_roundtrip() {
        let pts = vec![Point::new(vec![1.0, 2.0]), Point::new(vec![3.0, 4.0])];
        let o = UncertainObject {
            id: 11,
            region: region(&[0.0, 0.0], &[5.0, 5.0]),
            pdf: Pdf::Explicit(Arc::new(pts.clone())),
        };
        assert_eq!(o.samples(), pts);
        assert_eq!(o.pdf.n_samples(), 2);
    }

    #[test]
    fn encode_decode_roundtrip_all_pdfs() {
        let objs = vec![
            UncertainObject::uniform(1, region(&[0.0, 1.0], &[2.0, 3.0]), 64),
            UncertainObject {
                id: 2,
                region: region(&[5.0, 5.0], &[6.0, 7.0]),
                pdf: Pdf::Gaussian {
                    sigma: 0.25,
                    n: 16,
                    seed: 5,
                },
            },
            UncertainObject {
                id: 3,
                region: region(&[0.0, 0.0], &[1.0, 1.0]),
                pdf: Pdf::Explicit(Arc::new(vec![
                    Point::new(vec![0.5, 0.5]),
                    Point::new(vec![0.25, 0.75]),
                ])),
            },
        ];
        for o in objs {
            let buf = o.encode();
            let back = UncertainObject::decode(&buf);
            assert_eq!(back, o);
        }
    }

    #[test]
    fn try_decode_surfaces_corruption() {
        use pv_storage::codec::DecodeError;
        let o = UncertainObject::uniform(9, region(&[0.0, 0.0], &[1.0, 1.0]), 8);
        let mut buf = o.encode();
        // id(8) + dim(2) + 4 corners(32) puts the pdf tag at offset 42.
        buf[42] = 0xEE;
        buf[43] = 0xEE;
        assert_eq!(
            UncertainObject::try_decode(&buf),
            Err(DecodeError::UnknownTag {
                context: "pdf descriptor",
                tag: 0xEEEE,
            })
        );
        let good = o.encode();
        assert!(matches!(
            UncertainObject::try_decode(&good[..good.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        assert_eq!(UncertainObject::try_decode(&good), Ok(o));
    }

    #[test]
    fn db_rejects_out_of_domain_objects() {
        let domain = region(&[0.0, 0.0], &[10.0, 10.0]);
        let bad = UncertainObject::uniform(1, region(&[9.0, 9.0], &[11.0, 11.0]), 8);
        let result = std::panic::catch_unwind(|| {
            UncertainDb::new(domain.clone(), vec![bad.clone()]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn db_rejects_duplicate_ids() {
        let domain = region(&[0.0, 0.0], &[10.0, 10.0]);
        let a = UncertainObject::uniform(1, region(&[1.0, 1.0], &[2.0, 2.0]), 8);
        let b = UncertainObject::uniform(1, region(&[3.0, 3.0], &[4.0, 4.0]), 8);
        let result = std::panic::catch_unwind(|| {
            UncertainDb::new(domain.clone(), vec![a.clone(), b.clone()]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn db_lookup() {
        let domain = region(&[0.0, 0.0], &[10.0, 10.0]);
        let a = UncertainObject::uniform(5, region(&[1.0, 1.0], &[2.0, 2.0]), 8);
        let db = UncertainDb::new(domain, vec![a.clone()]);
        assert_eq!(db.get(5), Some(&a));
        assert_eq!(db.get(6), None);
        assert_eq!(db.len(), 1);
        assert_eq!(db.dim(), 2);
    }
}
