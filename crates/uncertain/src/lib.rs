//! # pv-uncertain — the attribute-uncertainty object model
//!
//! The paper adopts the *attribute uncertainty model* (§I): each object's
//! d-dimensional attribute vector is a random variable whose support is
//! minimally bounded by an axis-parallel **uncertainty region** `u(o)`, and
//! whose pdf is discretised into `n` weighted point *instances* (500 in the
//! paper's experiments, each carrying probability `1/n`).
//!
//! [`UncertainObject`] couples the region with a [`Pdf`] descriptor. To keep
//! 10⁷-instance datasets (the paper's scale) affordable in memory, the
//! uniform and Gaussian pdfs are stored as *(kind, seed, n)* and their
//! instances are re-materialised deterministically on demand; an
//! [`Pdf::Explicit`] variant stores literal samples for callers that need
//! full control. Serialisation helpers encode objects for the PV-index's
//! disk-resident secondary index.

#![deny(missing_docs)]

pub mod persist;

use pv_geom::{HyperRect, Point};
use pv_storage::codec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

/// Probability density descriptor for an uncertain object.
///
/// All variants discretise to `n` instances of weight `1/n` (the discrete
/// model of the paper's references \[13\], \[14\]).
#[derive(Debug, Clone, PartialEq)]
pub enum Pdf {
    /// `n` samples drawn uniformly from the uncertainty region.
    Uniform {
        /// Number of instances.
        n: u32,
        /// Deterministic sampling seed.
        seed: u64,
    },
    /// `n` samples from an isotropic Gaussian centred in the region
    /// (σ in domain units), clipped by rejection to the region — the model
    /// used for the paper's GPS-derived `airports` dataset.
    Gaussian {
        /// Standard deviation in each dimension.
        sigma: f64,
        /// Number of instances.
        n: u32,
        /// Deterministic sampling seed.
        seed: u64,
    },
    /// Explicit instance list (uniform weights).
    Explicit(Arc<Vec<Point>>),
}

impl Pdf {
    /// Number of instances this pdf discretises to.
    pub fn n_samples(&self) -> usize {
        match self {
            Pdf::Uniform { n, .. } | Pdf::Gaussian { n, .. } => *n as usize,
            Pdf::Explicit(v) => v.len(),
        }
    }

    /// Materialises the instance list for a given uncertainty region.
    ///
    /// Deterministic: the same `(pdf, region)` pair always yields the same
    /// samples, which is what makes lazily materialised pdfs sound for both
    /// probability computation and testing.
    pub fn samples(&self, region: &HyperRect) -> Vec<Point> {
        match self {
            Pdf::Uniform { n, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let d = region.dim();
                (0..*n)
                    .map(|_| {
                        Point::new(
                            (0..d)
                                .map(|j| {
                                    if region.extent(j) > 0.0 {
                                        rng.gen_range(region.lo()[j]..=region.hi()[j])
                                    } else {
                                        region.lo()[j]
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect()
            }
            Pdf::Gaussian { sigma, n, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let d = region.dim();
                let c = region.center();
                (0..*n)
                    .map(|_| {
                        // Rejection-sample a clipped Gaussian; fall back to
                        // clamping after a bounded number of tries so the
                        // generator cannot stall on tiny regions.
                        for _ in 0..64 {
                            let cand = Point::new(
                                (0..d).map(|j| c[j] + sigma * gauss(&mut rng)).collect(),
                            );
                            if region.contains_point(&cand) {
                                return cand;
                            }
                        }
                        let clamped: Vec<f64> = (0..d)
                            .map(|j| {
                                (c[j] + sigma * gauss(&mut rng))
                                    .clamp(region.lo()[j], region.hi()[j])
                            })
                            .collect();
                        Point::new(clamped)
                    })
                    .collect()
            }
            Pdf::Explicit(v) => v.as_ref().clone(),
        }
    }
}

/// One standard-normal variate via Box–Muller (keeps us inside the approved
/// dependency set — `rand_distr` is not vendored).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Reusable buffers for the allocation-free payload path
/// ([`UncertainObject::dists_sq_into`] / [`EncodedObject::dists_sq_into`]).
/// Keep one per query thread; after the first few queries grow the buffers
/// to their working size, sampling performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct SampleScratch {
    lo: Vec<f64>,
    hi: Vec<f64>,
    coords: Vec<f64>,
}

/// Squared Euclidean distance between a coordinate slice and a point slice,
/// accumulated in dimension order — bit-identical to [`Point::dist_sq`].
#[inline]
fn slice_dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Streams the squared instance distances of a *uniform* pdf to `q` into
/// `out`, drawing exactly the same RNG sequence as [`Pdf::samples`] — the
/// distances are bitwise equal to sampling first and measuring afterwards.
fn uniform_dists_sq_into(lo: &[f64], hi: &[f64], n: u32, seed: u64, q: &[f64], out: &mut Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        let mut acc = 0.0;
        for ((&l, &h), &qc) in lo.iter().zip(hi).zip(q) {
            let c = if h - l > 0.0 { rng.gen_range(l..=h) } else { l };
            let diff = c - qc;
            acc += diff * diff;
        }
        out.push(acc);
    }
}

/// Streams the squared instance distances of a clipped-Gaussian pdf to `q`,
/// mirroring the rejection/clamp control flow (and RNG draws) of
/// [`Pdf::samples`] exactly.
#[allow(clippy::too_many_arguments)]
fn gaussian_dists_sq_into(
    lo: &[f64],
    hi: &[f64],
    sigma: f64,
    n: u32,
    seed: u64,
    q: &[f64],
    coords: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    'samples: for _ in 0..n {
        for _ in 0..64 {
            coords.clear();
            for (&l, &h) in lo.iter().zip(hi) {
                coords.push(0.5 * (l + h) + sigma * gauss(&mut rng));
            }
            if lo
                .iter()
                .zip(hi)
                .zip(coords.iter())
                .all(|((l, h), c)| l <= c && c <= h)
            {
                out.push(slice_dist_sq(coords, q));
                continue 'samples;
            }
        }
        coords.clear();
        for (&l, &h) in lo.iter().zip(hi) {
            coords.push((0.5 * (l + h) + sigma * gauss(&mut rng)).clamp(l, h));
        }
        out.push(slice_dist_sq(coords, q));
    }
}

/// An uncertain object: identity, rectangular uncertainty region and pdf.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainObject {
    /// Database-unique identifier.
    pub id: u64,
    /// Uncertainty region `u(o)` minimally bounding all attribute values.
    pub region: HyperRect,
    /// Discretised pdf over the region.
    pub pdf: Pdf,
}

impl UncertainObject {
    /// Convenience constructor with a uniform pdf whose seed derives from
    /// the object id (deterministic per object).
    pub fn uniform(id: u64, region: HyperRect, n_samples: u32) -> Self {
        Self {
            id,
            region,
            pdf: Pdf::Uniform {
                n: n_samples,
                seed: id.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(1),
            },
        }
    }

    /// Materialised instances.
    pub fn samples(&self) -> Vec<Point> {
        self.pdf.samples(&self.region)
    }

    /// Mean position (centre of the uncertainty region) — what FS/IS use as
    /// the object's "mean position" for NN ordering.
    pub fn mean(&self) -> Point {
        self.region.center()
    }

    /// Appends the **squared** distance of every instance to `q` onto `out`,
    /// without materialising the instance points. The values are bitwise
    /// identical to `self.samples().iter().map(|s| s.dist_sq(q))` (same RNG
    /// sequence, same per-dimension accumulation order) but the whole pass
    /// is allocation-free once `scratch` has grown to its working size —
    /// this is the Step-2 payload path of the query engine.
    pub fn dists_sq_into(&self, q: &Point, scratch: &mut SampleScratch, out: &mut Vec<f64>) {
        debug_assert_eq!(self.region.dim(), q.dim());
        match &self.pdf {
            Pdf::Uniform { n, seed } => {
                uniform_dists_sq_into(self.region.lo(), self.region.hi(), *n, *seed, q, out)
            }
            Pdf::Gaussian { sigma, n, seed } => gaussian_dists_sq_into(
                self.region.lo(),
                self.region.hi(),
                *sigma,
                *n,
                *seed,
                q,
                &mut scratch.coords,
                out,
            ),
            Pdf::Explicit(points) => {
                for p in points.iter() {
                    out.push(slice_dist_sq(p.coords(), q));
                }
            }
        }
    }

    /// Serialises `(id, region, pdf)` for the secondary index.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u64(&mut out, self.id);
        codec::put_u16(&mut out, self.region.dim() as u16);
        for &x in self.region.lo() {
            codec::put_f64(&mut out, x);
        }
        for &x in self.region.hi() {
            codec::put_f64(&mut out, x);
        }
        match &self.pdf {
            Pdf::Uniform { n, seed } => {
                codec::put_u16(&mut out, 0);
                codec::put_u32(&mut out, *n);
                codec::put_u64(&mut out, *seed);
            }
            Pdf::Gaussian { sigma, n, seed } => {
                codec::put_u16(&mut out, 1);
                codec::put_f64(&mut out, *sigma);
                codec::put_u32(&mut out, *n);
                codec::put_u64(&mut out, *seed);
            }
            Pdf::Explicit(points) => {
                codec::put_u16(&mut out, 2);
                codec::put_u32(&mut out, points.len() as u32);
                for p in points.iter() {
                    for &x in p.coords() {
                        codec::put_f64(&mut out, x);
                    }
                }
            }
        }
        out
    }

    /// Decodes an object serialised with [`UncertainObject::encode`].
    ///
    /// # Panics
    /// On a corrupted buffer; use [`UncertainObject::try_decode`] to handle
    /// corruption as an error instead.
    pub fn decode(buf: &[u8]) -> Self {
        // pv-lint: allow(hot-path-no-panic, reason = "the documented panicking convenience wrapper; callers needing totality use try_decode")
        Self::try_decode(buf).expect("corrupted uncertain-object record")
    }

    /// Checked variant of [`UncertainObject::decode`]: reports truncation and
    /// unknown pdf tags through the codec layer instead of panicking.
    pub fn try_decode(buf: &[u8]) -> Result<Self, codec::DecodeError> {
        let mut r = codec::Reader::new(buf);
        let id = r.try_u64()?;
        let dim = r.try_u16()? as usize;
        let read_coords = |r: &mut codec::Reader| -> Result<Vec<f64>, codec::DecodeError> {
            (0..dim).map(|_| r.try_f64()).collect() // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned UncertainObject; the hot path streams EncodedObject views instead")
        };
        let lo = read_coords(&mut r)?;
        let hi = read_coords(&mut r)?;
        let region = HyperRect::new(lo, hi);
        let pdf = match r.try_u16()? {
            0 => Pdf::Uniform {
                n: r.try_u32()?,
                seed: r.try_u64()?,
            },
            1 => Pdf::Gaussian {
                sigma: r.try_f64()?,
                n: r.try_u32()?,
                seed: r.try_u64()?,
            },
            2 => {
                let n = r.try_u32()? as usize;
                let pts = (0..n)
                    .map(|_| Ok(Point::new(read_coords(&mut r)?)))
                    .collect::<Result<Vec<_>, codec::DecodeError>>()?; // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned UncertainObject; the hot path streams EncodedObject views instead")
                Pdf::Explicit(Arc::new(pts)) // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned UncertainObject; the hot path streams EncodedObject views instead")
            }
            t => {
                return Err(codec::DecodeError::UnknownTag {
                    context: "pdf descriptor",
                    tag: t,
                })
            }
        };
        Ok(UncertainObject { id, region, pdf })
    }
}

/// The pdf descriptor of an [`EncodedObject`], borrowing any instance data
/// from the underlying record bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncodedPdf<'a> {
    /// Uniform pdf parameters.
    Uniform {
        /// Number of instances.
        n: u32,
        /// Sampling seed.
        seed: u64,
    },
    /// Clipped-Gaussian pdf parameters.
    Gaussian {
        /// Standard deviation.
        sigma: f64,
        /// Number of instances.
        n: u32,
        /// Sampling seed.
        seed: u64,
    },
    /// Explicit instance list: `n · dim` little-endian `f64`s.
    Explicit {
        /// Number of instances.
        n: u32,
        /// Raw coordinate bytes (`n * dim * 8` of them).
        data: &'a [u8],
    },
}

/// A zero-copy view over a record written by [`UncertainObject::encode`].
///
/// [`UncertainObject::try_decode`] materialises a full object (two boxed
/// corner slices plus the pdf) on every call — fine for maintenance paths,
/// wasteful for PNNQ Step 2, which only needs the instance *distances* to
/// the query point. `EncodedObject` parses the same bytes into borrowed
/// offsets and streams those distances straight out of the buffer.
#[derive(Debug, Clone, Copy)]
pub struct EncodedObject<'a> {
    id: u64,
    dim: usize,
    /// `2 · dim` little-endian f64s: the region's lo corner then hi corner.
    region: &'a [u8],
    pdf: EncodedPdf<'a>,
}

impl<'a> EncodedObject<'a> {
    /// Parses a record produced by [`UncertainObject::encode`] without
    /// copying coordinate data.
    pub fn parse(buf: &'a [u8]) -> Result<Self, codec::DecodeError> {
        let mut r = codec::Reader::new(buf);
        let id = r.try_u64()?;
        let dim = r.try_u16()? as usize;
        if dim == 0 {
            return Err(codec::DecodeError::Invalid {
                context: "encoded object dimensionality",
            });
        }
        let region = r.try_borrow(2 * dim * 8)?;
        let pdf = match r.try_u16()? {
            0 => EncodedPdf::Uniform {
                n: r.try_u32()?,
                seed: r.try_u64()?,
            },
            1 => EncodedPdf::Gaussian {
                sigma: r.try_f64()?,
                n: r.try_u32()?,
                seed: r.try_u64()?,
            },
            2 => {
                let n = r.try_u32()?;
                EncodedPdf::Explicit {
                    n,
                    data: r.try_borrow(n as usize * dim * 8)?,
                }
            }
            t => {
                return Err(codec::DecodeError::UnknownTag {
                    context: "pdf descriptor",
                    tag: t,
                })
            }
        };
        Ok(Self {
            id,
            dim,
            region,
            pdf,
        })
    }

    /// Object id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of instances the pdf discretises to.
    pub fn n_samples(&self) -> usize {
        match self.pdf {
            EncodedPdf::Uniform { n, .. }
            | EncodedPdf::Gaussian { n, .. }
            | EncodedPdf::Explicit { n, .. } => n as usize,
        }
    }

    /// The pdf descriptor.
    pub fn pdf(&self) -> EncodedPdf<'a> {
        self.pdf
    }

    /// Reads the `i`-th little-endian f64. Total: [`EncodedObject::parse`]
    /// validated the section lengths, so the window is always present on a
    /// well-formed record; a short read (corruption) poisons the distance
    /// with NaN instead of panicking mid-query.
    #[inline]
    fn coord(bytes: &[u8], i: usize) -> f64 {
        bytes
            .get(i * 8..i * 8 + 8)
            .and_then(|w| w.try_into().ok())
            .map_or(f64::NAN, f64::from_le_bytes)
    }

    /// Appends the squared distance of every instance to `q` onto `out`,
    /// bitwise identical to decoding the object and calling
    /// [`UncertainObject::dists_sq_into`], but with zero heap allocation at
    /// steady state (the region corners are staged in `scratch`).
    pub fn dists_sq_into(&self, q: &Point, scratch: &mut SampleScratch, out: &mut Vec<f64>) {
        debug_assert_eq!(self.dim, q.dim());
        let d = self.dim;
        scratch.lo.clear();
        scratch.hi.clear();
        for j in 0..d {
            scratch.lo.push(Self::coord(self.region, j));
            scratch.hi.push(Self::coord(self.region, d + j));
        }
        match self.pdf {
            EncodedPdf::Uniform { n, seed } => {
                uniform_dists_sq_into(&scratch.lo, &scratch.hi, n, seed, q, out)
            }
            EncodedPdf::Gaussian { sigma, n, seed } => gaussian_dists_sq_into(
                &scratch.lo,
                &scratch.hi,
                sigma,
                n,
                seed,
                q,
                &mut scratch.coords,
                out,
            ),
            EncodedPdf::Explicit { n, data } => {
                for s in 0..n as usize {
                    let mut acc = 0.0;
                    for (j, &qc) in q.coords().iter().enumerate().take(d) {
                        let diff = Self::coord(data, s * d + j) - qc;
                        acc += diff * diff;
                    }
                    out.push(acc);
                }
            }
        }
    }
}

/// An uncertain database: a domain and a set of objects (§III: the set `S`).
#[derive(Debug, Clone)]
pub struct UncertainDb {
    /// The d-dimensional domain `D`.
    pub domain: HyperRect,
    /// Objects, indexable by position; ids are unique but not necessarily
    /// dense after updates.
    pub objects: Vec<UncertainObject>,
}

impl UncertainDb {
    /// Creates a database over `domain` with the given objects.
    ///
    /// # Panics
    /// If an object's region is not fully inside the domain, or ids repeat.
    pub fn new(domain: HyperRect, objects: Vec<UncertainObject>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for o in &objects {
            assert!(
                domain.contains_rect(&o.region),
                "object {} outside the domain",
                o.id
            );
            assert!(seen.insert(o.id), "duplicate object id {}", o.id);
        }
        Self { domain, objects }
    }

    /// Number of objects (`|S|`).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.domain.dim()
    }

    /// Finds an object by id (linear; index structures are built on top).
    pub fn get(&self, id: u64) -> Option<&UncertainObject> {
        self.objects.iter().find(|o| o.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn uniform_samples_stay_in_region_and_are_deterministic() {
        let r = region(&[0.0, 10.0], &[2.0, 12.0]);
        let o = UncertainObject::uniform(7, r.clone(), 200);
        let s1 = o.samples();
        let s2 = o.samples();
        assert_eq!(s1.len(), 200);
        assert_eq!(s1, s2, "sampling must be deterministic");
        assert!(s1.iter().all(|p| r.contains_point(p)));
    }

    #[test]
    fn different_ids_sample_differently() {
        let r = region(&[0.0, 0.0], &[1.0, 1.0]);
        let a = UncertainObject::uniform(1, r.clone(), 50);
        let b = UncertainObject::uniform(2, r, 50);
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn gaussian_samples_cluster_near_center() {
        let r = region(&[0.0, 0.0], &[10.0, 10.0]);
        let o = UncertainObject {
            id: 3,
            region: r.clone(),
            pdf: Pdf::Gaussian {
                sigma: 0.5,
                n: 500,
                seed: 99,
            },
        };
        let samples = o.samples();
        assert!(samples.iter().all(|p| r.contains_point(p)));
        let c = r.center();
        let mean_dist: f64 = samples.iter().map(|p| p.dist(&c)).sum::<f64>() / samples.len() as f64;
        // sigma=0.5 ⇒ expected 2-D distance ≈ sigma·sqrt(π/2) ≈ 0.63
        assert!(mean_dist < 1.5, "mean distance {mean_dist}");
    }

    #[test]
    fn gaussian_tiny_region_terminates() {
        let r = region(&[5.0, 5.0], &[5.0, 5.0]); // degenerate point region
        let o = UncertainObject {
            id: 4,
            region: r.clone(),
            pdf: Pdf::Gaussian {
                sigma: 3.0,
                n: 32,
                seed: 1,
            },
        };
        let s = o.samples();
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|p| r.contains_point(p)));
    }

    #[test]
    fn explicit_pdf_roundtrip() {
        let pts = vec![Point::new(vec![1.0, 2.0]), Point::new(vec![3.0, 4.0])];
        let o = UncertainObject {
            id: 11,
            region: region(&[0.0, 0.0], &[5.0, 5.0]),
            pdf: Pdf::Explicit(Arc::new(pts.clone())),
        };
        assert_eq!(o.samples(), pts);
        assert_eq!(o.pdf.n_samples(), 2);
    }

    #[test]
    fn encode_decode_roundtrip_all_pdfs() {
        let objs = vec![
            UncertainObject::uniform(1, region(&[0.0, 1.0], &[2.0, 3.0]), 64),
            UncertainObject {
                id: 2,
                region: region(&[5.0, 5.0], &[6.0, 7.0]),
                pdf: Pdf::Gaussian {
                    sigma: 0.25,
                    n: 16,
                    seed: 5,
                },
            },
            UncertainObject {
                id: 3,
                region: region(&[0.0, 0.0], &[1.0, 1.0]),
                pdf: Pdf::Explicit(Arc::new(vec![
                    Point::new(vec![0.5, 0.5]),
                    Point::new(vec![0.25, 0.75]),
                ])),
            },
        ];
        for o in objs {
            let buf = o.encode();
            let back = UncertainObject::decode(&buf);
            assert_eq!(back, o);
        }
    }

    #[test]
    fn dists_sq_into_matches_materialised_samples_bitwise() {
        let objs = vec![
            UncertainObject::uniform(1, region(&[0.0, 1.0], &[2.0, 3.0]), 64),
            UncertainObject::uniform(2, region(&[5.0, 5.0], &[5.0, 7.0]), 16), // degenerate dim
            UncertainObject {
                id: 3,
                region: region(&[5.0, 5.0], &[6.0, 7.0]),
                pdf: Pdf::Gaussian {
                    sigma: 0.25,
                    n: 32,
                    seed: 5,
                },
            },
            UncertainObject {
                id: 4,
                region: region(&[0.0, 0.0], &[1.0, 1.0]),
                pdf: Pdf::Explicit(Arc::new(vec![
                    Point::new(vec![0.5, 0.5]),
                    Point::new(vec![0.25, 0.75]),
                ])),
            },
        ];
        let q = Point::new(vec![1.5, 2.5]);
        let mut scratch = SampleScratch::default();
        for o in &objs {
            let want: Vec<u64> = o
                .samples()
                .iter()
                .map(|s| s.dist_sq(&q).to_bits())
                .collect();
            let mut got = Vec::new();
            o.dists_sq_into(&q, &mut scratch, &mut got);
            assert_eq!(
                got.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                want,
                "object {}",
                o.id
            );
            // the zero-copy encoded view agrees too
            let buf = o.encode();
            let view = EncodedObject::parse(&buf).unwrap();
            assert_eq!(view.id(), o.id);
            assert_eq!(view.dim(), 2);
            assert_eq!(view.n_samples(), o.pdf.n_samples());
            let mut via_view = Vec::new();
            view.dists_sq_into(&q, &mut scratch, &mut via_view);
            assert_eq!(
                via_view.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                want,
                "encoded view of object {}",
                o.id
            );
        }
    }

    #[test]
    fn encoded_object_reports_corruption() {
        let o = UncertainObject::uniform(9, region(&[0.0, 0.0], &[1.0, 1.0]), 8);
        let buf = o.encode();
        assert!(EncodedObject::parse(&buf).is_ok());
        assert!(matches!(
            EncodedObject::parse(&buf[..buf.len() - 1]),
            Err(pv_storage::codec::DecodeError::Truncated { .. })
        ));
        let mut bad = buf.clone();
        bad[42] = 0xEE;
        bad[43] = 0xEE;
        assert!(matches!(
            EncodedObject::parse(&bad),
            Err(pv_storage::codec::DecodeError::UnknownTag { .. })
        ));
    }

    #[test]
    fn try_decode_surfaces_corruption() {
        use pv_storage::codec::DecodeError;
        let o = UncertainObject::uniform(9, region(&[0.0, 0.0], &[1.0, 1.0]), 8);
        let mut buf = o.encode();
        // id(8) + dim(2) + 4 corners(32) puts the pdf tag at offset 42.
        buf[42] = 0xEE;
        buf[43] = 0xEE;
        assert_eq!(
            UncertainObject::try_decode(&buf),
            Err(DecodeError::UnknownTag {
                context: "pdf descriptor",
                tag: 0xEEEE,
            })
        );
        let good = o.encode();
        assert!(matches!(
            UncertainObject::try_decode(&good[..good.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        assert_eq!(UncertainObject::try_decode(&good), Ok(o));
    }

    #[test]
    fn db_rejects_out_of_domain_objects() {
        let domain = region(&[0.0, 0.0], &[10.0, 10.0]);
        let bad = UncertainObject::uniform(1, region(&[9.0, 9.0], &[11.0, 11.0]), 8);
        let result = std::panic::catch_unwind(|| {
            UncertainDb::new(domain.clone(), vec![bad.clone()]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn db_rejects_duplicate_ids() {
        let domain = region(&[0.0, 0.0], &[10.0, 10.0]);
        let a = UncertainObject::uniform(1, region(&[1.0, 1.0], &[2.0, 2.0]), 8);
        let b = UncertainObject::uniform(1, region(&[3.0, 3.0], &[4.0, 4.0]), 8);
        let result = std::panic::catch_unwind(|| {
            UncertainDb::new(domain.clone(), vec![a.clone(), b.clone()]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn db_lookup() {
        let domain = region(&[0.0, 0.0], &[10.0, 10.0]);
        let a = UncertainObject::uniform(5, region(&[1.0, 1.0], &[2.0, 2.0]), 8);
        let db = UncertainDb::new(domain, vec![a.clone()]);
        assert_eq!(db.get(5), Some(&a));
        assert_eq!(db.get(6), None);
        assert_eq!(db.len(), 1);
        assert_eq!(db.dim(), 2);
    }
}
