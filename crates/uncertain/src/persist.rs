//! Binary dataset persistence.
//!
//! Reproducible experiments need datasets that can be generated once and
//! shared; this module serialises an [`UncertainDb`] to a compact binary
//! file (magic + version + domain + length-prefixed object records reusing
//! [`UncertainObject::encode`]) and reads it back. This persists the raw
//! *data*; for persisting a *built index* (so a restart skips SE entirely)
//! see the snapshot support in `pv-core::snapshot`.
//!
//! ```
//! use pv_geom::HyperRect;
//! use pv_uncertain::{persist, UncertainDb, UncertainObject};
//!
//! let domain = HyperRect::cube(2, 0.0, 100.0);
//! let objects = vec![
//!     UncertainObject::uniform(1, HyperRect::new(vec![5.0, 5.0], vec![8.0, 9.0]), 32),
//!     UncertainObject::uniform(2, HyperRect::new(vec![40.0, 60.0], vec![42.0, 61.0]), 32),
//! ];
//! let db = UncertainDb::new(domain, objects);
//!
//! let bytes = persist::to_bytes(&db);
//! let back = persist::from_bytes(&bytes).unwrap();
//! assert_eq!(back.objects, db.objects);
//!
//! // Corruption is reported as an error, never a panic.
//! assert!(persist::from_bytes(&bytes[..bytes.len() / 2]).is_err());
//! ```

use crate::{UncertainDb, UncertainObject};
use pv_geom::HyperRect;
use pv_storage::codec;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PVUDB\0\0\x01";

/// Serialises a database into a byte vector.
pub fn to_bytes(db: &UncertainDb) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    codec::put_u16_len(&mut out, db.dim());
    for &x in db.domain.lo() {
        codec::put_f64(&mut out, x);
    }
    for &x in db.domain.hi() {
        codec::put_f64(&mut out, x);
    }
    codec::put_u64(&mut out, db.len() as u64);
    for o in &db.objects {
        codec::put_bytes(&mut out, &o.encode());
    }
    out
}

/// Deserialises a database from bytes produced by [`to_bytes`].
///
/// # Errors
/// Returns `InvalidData` on a bad magic number or truncated payload.
pub fn from_bytes(buf: &[u8]) -> io::Result<UncertainDb> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a PV uncertain-database file",
        ));
    }
    let body = &buf[MAGIC.len()..];
    let parse = || -> Option<UncertainDb> {
        let mut r = codec::Reader::new(body);
        if r.remaining() < 2 {
            return None;
        }
        let dim = r.u16() as usize;
        if dim == 0 || dim > 64 || r.remaining() < dim * 16 + 8 {
            return None;
        }
        let lo: Vec<f64> = (0..dim).map(|_| r.f64()).collect();
        let hi: Vec<f64> = (0..dim).map(|_| r.f64()).collect();
        let domain = HyperRect::new(lo, hi);
        let n = r.u64() as usize;
        let mut objects = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            if r.remaining() < 4 {
                return None;
            }
            let len = r.u32() as usize;
            if r.remaining() < len {
                return None;
            }
            let rec = r.take(len);
            objects.push(UncertainObject::decode(&rec));
        }
        Some(UncertainDb::new(domain, objects))
    };
    parse().ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated database file"))
}

/// Writes a database to a file.
pub fn save(db: &UncertainDb, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(db))?;
    f.flush()
}

/// Reads a database from a file.
pub fn load(path: impl AsRef<Path>) -> io::Result<UncertainDb> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pdf;
    use pv_geom::Point;
    use std::sync::Arc;

    fn sample_db() -> UncertainDb {
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let objects = vec![
            UncertainObject::uniform(1, HyperRect::new(vec![1.0, 2.0], vec![3.0, 4.0]), 16),
            UncertainObject {
                id: 2,
                region: HyperRect::new(vec![10.0, 10.0], vec![12.0, 12.0]),
                pdf: Pdf::Gaussian {
                    sigma: 0.5,
                    n: 8,
                    seed: 9,
                },
            },
            UncertainObject {
                id: 3,
                region: HyperRect::new(vec![50.0, 50.0], vec![51.0, 51.0]),
                pdf: Pdf::Explicit(Arc::new(vec![Point::new(vec![50.5, 50.5])])),
            },
        ];
        UncertainDb::new(domain, objects)
    }

    #[test]
    fn byte_roundtrip() {
        let db = sample_db();
        let bytes = to_bytes(&db);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.domain, db.domain);
        assert_eq!(back.objects, db.objects);
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let path = std::env::temp_dir().join("pv_persist_test.pvdb");
        save(&db, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.objects, db.objects);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_bytes(b"definitely not a database").is_err());
        assert!(from_bytes(b"").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let db = sample_db();
        let bytes = to_bytes(&db);
        for cut in [MAGIC.len() + 1, bytes.len() / 2, bytes.len() - 3] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn empty_db_roundtrip() {
        let db = UncertainDb::new(HyperRect::cube(3, 0.0, 10.0), vec![]);
        let back = from_bytes(&to_bytes(&db)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.dim(), 3);
    }
}
