//! Property-based tests: the R*-tree must agree with a linear scan under
//! arbitrary interleavings of inserts, deletes and queries.

use proptest::prelude::*;
use pv_geom::{min_dist_sq, HyperRect, Point};
use pv_rtree::{Entry, RTree, RTreeParams};

#[derive(Debug, Clone)]
enum Op {
    Insert { lo: (f64, f64), ext: (f64, f64) },
    RemoveNth(usize),
    Range { lo: (f64, f64), ext: (f64, f64) },
    Knn { q: (f64, f64), k: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => ((0.0f64..500.0, 0.0f64..500.0), (0.1f64..50.0, 0.1f64..50.0))
            .prop_map(|(lo, ext)| Op::Insert { lo, ext }),
        1 => (0usize..64).prop_map(Op::RemoveNth),
        2 => ((0.0f64..500.0, 0.0f64..500.0), (1.0f64..200.0, 1.0f64..200.0))
            .prop_map(|(lo, ext)| Op::Range { lo, ext }),
        2 => ((0.0f64..500.0, 0.0f64..500.0), 1usize..10)
            .prop_map(|(q, k)| Op::Knn { q, k }),
    ]
}

fn rect(lo: (f64, f64), ext: (f64, f64)) -> HyperRect {
    HyperRect::new(vec![lo.0, lo.1], vec![lo.0 + ext.0, lo.1 + ext.1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_linear_scan(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut tree = RTree::new(2, RTreeParams::with_fanout(5));
        let mut shadow: Vec<Entry> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert { lo, ext } => {
                    let r = rect(lo, ext);
                    tree.insert(r.clone(), next_id);
                    shadow.push(Entry { rect: r, id: next_id });
                    next_id += 1;
                }
                Op::RemoveNth(n) => {
                    if !shadow.is_empty() {
                        let victim = shadow.remove(n % shadow.len());
                        prop_assert!(tree.remove(&victim.rect, victim.id));
                    }
                }
                Op::Range { lo, ext } => {
                    let r = rect(lo, ext);
                    let mut got: Vec<u64> =
                        tree.range_search(&r).iter().map(|e| e.id).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = shadow
                        .iter()
                        .filter(|e| e.rect.intersects(&r))
                        .map(|e| e.id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Knn { q, k } => {
                    let qp = Point::new(vec![q.0, q.1]);
                    let got = tree.knn(&qp, k);
                    // compare the distance sequence with brute force
                    let mut want: Vec<f64> = shadow
                        .iter()
                        .map(|e| min_dist_sq(&e.rect, &qp).sqrt())
                        .collect();
                    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    for (g, w) in got.iter().zip(want.iter()) {
                        prop_assert!((g.dist - w).abs() < 1e-9,
                            "knn dist {} vs brute {}", g.dist, w);
                    }
                    prop_assert_eq!(got.len(), k.min(shadow.len()));
                }
            }
            tree.check_invariants();
            prop_assert_eq!(tree.len(), shadow.len());
        }
    }

    #[test]
    fn bulk_load_equals_incremental(seeds in prop::collection::vec(
        ((0.0f64..500.0, 0.0f64..500.0), (0.1f64..30.0, 0.1f64..30.0)), 1..150))
    {
        let entries: Vec<Entry> = seeds
            .iter()
            .enumerate()
            .map(|(i, (lo, ext))| Entry { rect: rect(*lo, *ext), id: i as u64 })
            .collect();
        let bulk = RTree::bulk_load(2, RTreeParams::with_fanout(6), entries.clone());
        bulk.check_invariants();
        let mut incr = RTree::new(2, RTreeParams::with_fanout(6));
        for e in &entries {
            incr.insert(e.rect.clone(), e.id);
        }
        let probe = HyperRect::new(vec![100.0, 100.0], vec![400.0, 400.0]);
        let mut a: Vec<u64> = bulk.range_search(&probe).iter().map(|e| e.id).collect();
        let mut b: Vec<u64> = incr.range_search(&probe).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
