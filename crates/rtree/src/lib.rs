//! # pv-rtree — an R*-tree for multi-dimensional rectangles
//!
//! A from-scratch implementation of the R*-tree (Beckmann et al., SIGMOD
//! 1990 — reference \[42\] of the PV-index paper), which the paper uses:
//!
//! * as the **baseline** for PNNQ Step 1 (branch-and-prune object retrieval,
//!   \[8\]),
//! * as the substrate for `chooseCSet`'s nearest-neighbor searches during
//!   PV-index construction (both FS and IS run (incremental) NN queries), and
//! * as the bootstrap index from which UV- and PV-indexes are built (§VII-A).
//!
//! Features: insertion with R\*-split and forced reinsertion, deletion with
//! tree condensation, STR bulk loading, rectangle range queries, point
//! stabbing queries, and best-first *distance browsing* (Hjaltason & Samet,
//! TODS 1999 — reference \[39\]) exposed as a lazy iterator, which is exactly
//! the "examine the nearest neighbor of o one at a time, using the algorithm
//! in \[39\]" primitive required by the paper's Incremental Selection.
//!
//! The tree is an in-memory arena (nodes are `u32` indices into a `Vec`),
//! but node visits are counted per level so experiments can charge leaf-node
//! visits as disk I/O with the same accounting the paper uses (non-leaf
//! nodes live in main memory, leaves on disk).

//! ```
//! use pv_rtree::{Entry, RTree, RTreeParams};
//! use pv_geom::{HyperRect, Point};
//!
//! let entries: Vec<Entry> = (0..100)
//!     .map(|i| Entry {
//!         rect: HyperRect::new(vec![i as f64, 0.0], vec![i as f64 + 0.5, 1.0]),
//!         id: i,
//!     })
//!     .collect();
//! let tree = RTree::bulk_load(2, RTreeParams::with_fanout(16), entries);
//! let nn = tree.knn(&Point::new(vec![42.3, 0.5]), 1);
//! assert_eq!(nn[0].id, 42);
//! ```

#![deny(missing_docs)]

mod node;
mod query;
mod split;

pub use node::{Entry, RTree, RTreeParams, RTreeStats};
pub use query::{Neighbor, NnIter};

#[cfg(test)]
mod tests;
