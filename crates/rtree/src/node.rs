//! R*-tree node arena, insertion, deletion and bulk loading.

use crate::split;
use pv_geom::{HyperRect, OrderedF64};
use std::sync::atomic::{AtomicU64, Ordering};

/// A leaf entry: a rectangle with an opaque 64-bit payload (object id).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Bounding rectangle of the indexed object.
    pub rect: HyperRect,
    /// Caller-defined identifier.
    pub id: u64,
}

/// Tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct RTreeParams {
    /// Maximum entries per node (the paper uses a fanout of 100).
    pub max_entries: usize,
    /// Minimum entries per node (R*: 40% of max).
    pub min_entries: usize,
    /// Fraction of entries removed during forced reinsertion (R*: 30%).
    pub reinsert_fraction: f64,
}

impl Default for RTreeParams {
    fn default() -> Self {
        Self::with_fanout(100)
    }
}

impl RTreeParams {
    /// Standard R* parameterisation for a given fanout.
    pub fn with_fanout(max_entries: usize) -> Self {
        assert!(max_entries >= 4);
        Self {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
            reinsert_fraction: 0.3,
        }
    }
}

/// Access counters, split per level class so experiments can charge leaf
/// visits as disk I/O (§VII-A stores non-leaf nodes in main memory).
///
/// Counters are atomic so a built tree can serve concurrent read-only
/// queries (the parallel UBR-construction phase of the PV-index shares one
/// tree across worker threads).
#[derive(Debug, Default)]
pub struct RTreeStats {
    /// Leaf nodes visited by queries.
    pub leaf_visits: AtomicU64,
    /// Internal nodes visited by queries.
    pub internal_visits: AtomicU64,
    /// Node splits performed.
    pub splits: AtomicU64,
    /// Forced reinsertions performed.
    pub reinserts: AtomicU64,
}

impl RTreeStats {
    /// Resets the query counters (leaf/internal visits) only.
    pub fn reset_visits(&self) {
        self.leaf_visits.store(0, Ordering::Relaxed);
        self.internal_visits.store(0, Ordering::Relaxed);
    }
}

pub(crate) type NodeId = u32;
pub(crate) const INVALID: NodeId = u32::MAX;

#[derive(Debug, Clone)]
pub(crate) struct ChildRef {
    pub rect: HyperRect,
    pub node: NodeId,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Leaf(Vec<Entry>),
    Internal(Vec<ChildRef>),
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub kind: NodeKind,
    /// Height above the leaves: 0 for leaf nodes.
    pub level: u32,
    pub parent: NodeId,
}

impl Node {
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Internal(v) => v.len(),
        }
    }

    pub fn mbr(&self) -> Option<HyperRect> {
        match &self.kind {
            NodeKind::Leaf(v) => {
                let mut it = v.iter();
                let first = it.next()?.rect.clone();
                Some(it.fold(first, |acc, e| acc.union(&e.rect)))
            }
            NodeKind::Internal(v) => {
                let mut it = v.iter();
                let first = it.next()?.rect.clone();
                Some(it.fold(first, |acc, c| acc.union(&c.rect)))
            }
        }
    }
}

/// An R*-tree over axis-parallel rectangles with `u64` payloads.
///
/// `Clone` is a deep structural copy in O(nodes) — no rebuild, no
/// re-splitting — so a cloned tree is bit-for-bit the same shape as the
/// original. The copy-on-write `fork` of the R-tree baseline engine relies
/// on this being much cheaper than a fresh bulk load.
pub struct RTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) params: RTreeParams,
    pub(crate) dim: usize,
    pub(crate) len: usize,
    pub(crate) free: Vec<NodeId>,
    /// Per-insertion flag set of levels that already did forced reinsert.
    pub(crate) reinserted_levels: Vec<bool>,
    /// Query/maintenance statistics.
    pub stats: RTreeStats,
}

impl std::fmt::Debug for RTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("dim", &self.dim)
            .field("len", &self.len)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl Clone for RTree {
    /// Deep-copies the arena; the clone starts with fresh (zeroed)
    /// statistics, since `RTreeStats` counters describe one handle's query
    /// traffic, not tree shape.
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            root: self.root,
            params: self.params,
            dim: self.dim,
            len: self.len,
            free: self.free.clone(),
            reinserted_levels: self.reinserted_levels.clone(),
            stats: RTreeStats::default(),
        }
    }
}

impl RTree {
    /// Creates an empty tree for `dim`-dimensional rectangles.
    pub fn new(dim: usize, params: RTreeParams) -> Self {
        let root_node = Node {
            kind: NodeKind::Leaf(Vec::new()),
            level: 0,
            parent: INVALID,
        };
        Self {
            nodes: vec![root_node],
            root: 0,
            params,
            dim,
            len: 0,
            free: Vec::new(),
            reinserted_levels: Vec::new(),
            stats: RTreeStats::default(),
        }
    }

    /// Creates an empty tree with default parameters (fanout 100).
    pub fn with_default_params(dim: usize) -> Self {
        Self::new(dim, RTreeParams::default())
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed rectangles.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.nodes[self.root as usize].level as usize + 1
    }

    /// Bounding rectangle of the whole tree, `None` when empty.
    pub fn mbr(&self) -> Option<HyperRect> {
        self.nodes[self.root as usize].mbr()
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    pub(crate) fn alloc_node(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            let id = self.nodes.len() as NodeId;
            self.nodes.push(node);
            id
        }
    }

    /// Inserts one entry.
    pub fn insert(&mut self, rect: HyperRect, id: u64) {
        assert_eq!(rect.dim(), self.dim, "dimension mismatch");
        let height = self.nodes[self.root as usize].level as usize + 1;
        self.reinserted_levels = vec![false; height];
        self.insert_entry(Entry { rect, id }, 0);
        self.len += 1;
    }

    /// Inserts an entry at the given level (0 = leaf). Shared by the public
    /// insert, forced reinsertion, and delete's orphan reinsertion.
    pub(crate) fn insert_entry(&mut self, entry: Entry, level: u32) {
        debug_assert_eq!(level, 0, "entries live at leaf level");
        let _ = level;
        let leaf = self.choose_subtree(&entry.rect, 0);
        match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(v) => v.push(entry),
            NodeKind::Internal(_) => unreachable!("choose_subtree(0) returns a leaf"),
        }
        self.adjust_rects_upward(leaf);
        if self.node(leaf).len() > self.params.max_entries {
            self.handle_overflow(leaf);
        }
    }

    /// Re-inserts a whole subtree (used by delete's condensation).
    pub(crate) fn insert_subtree(&mut self, rect: HyperRect, node: NodeId, level: u32) {
        let target = self.choose_subtree(&rect, level + 1);
        self.node_mut(node).parent = target;
        match &mut self.node_mut(target).kind {
            NodeKind::Internal(v) => v.push(ChildRef { rect, node }),
            NodeKind::Leaf(_) => unreachable!("subtree target must be internal"),
        }
        self.adjust_rects_upward(target);
        if self.node(target).len() > self.params.max_entries {
            self.handle_overflow(target);
        }
    }

    /// R* `ChooseSubtree`: descends from the root to a node at `target_level`.
    fn choose_subtree(&mut self, rect: &HyperRect, target_level: u32) -> NodeId {
        let mut cur = self.root;
        loop {
            let node = self.node(cur);
            if node.level == target_level {
                return cur;
            }
            let children = match &node.kind {
                NodeKind::Internal(v) => v,
                NodeKind::Leaf(_) => return cur,
            };
            // At the level right above the leaves, minimise overlap
            // enlargement; higher up, minimise area enlargement (R* policy).
            let best = if node.level == 1 {
                self.pick_min_overlap_child(children, rect)
            } else {
                Self::pick_min_area_child(children, rect)
            };
            cur = children[best].node;
        }
    }

    fn pick_min_area_child(children: &[ChildRef], rect: &HyperRect) -> usize {
        let mut best = 0usize;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, c) in children.iter().enumerate() {
            let area = c.rect.volume();
            let enl = c.rect.union(rect).volume() - area;
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    fn pick_min_overlap_child(&self, children: &[ChildRef], rect: &HyperRect) -> usize {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, c) in children.iter().enumerate() {
            let enlarged = c.rect.union(rect);
            let mut overlap_delta = 0.0;
            for (j, other) in children.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_delta +=
                    enlarged.overlap_volume(&other.rect) - c.rect.overlap_volume(&other.rect);
            }
            let area = c.rect.volume();
            let enl = enlarged.volume() - area;
            let key = (overlap_delta, enl, area);
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        best
    }

    /// Recomputes bounding rectangles from `from` up to the root.
    pub(crate) fn adjust_rects_upward(&mut self, from: NodeId) {
        let mut cur = from;
        while self.node(cur).parent != INVALID {
            let parent = self.node(cur).parent;
            let mbr = self.node(cur).mbr().expect("non-empty node");
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal(v) => {
                    let slot = v
                        .iter_mut()
                        .find(|c| c.node == cur)
                        .expect("child registered in parent");
                    slot.rect = mbr;
                }
                NodeKind::Leaf(_) => unreachable!("parent is internal"),
            }
            cur = parent;
        }
    }

    /// R* overflow treatment: forced reinsert once per level per insertion,
    /// then split.
    fn handle_overflow(&mut self, node_id: NodeId) {
        let level = self.node(node_id).level as usize;
        let is_root = node_id == self.root;
        let do_reinsert =
            !is_root && level < self.reinserted_levels.len() && !self.reinserted_levels[level];
        if do_reinsert {
            self.reinserted_levels[level] = true;
            self.forced_reinsert(node_id);
        } else {
            self.split_node(node_id);
        }
    }

    /// Removes the `reinsert_fraction` entries farthest from the node centre
    /// and re-inserts them.
    fn forced_reinsert(&mut self, node_id: NodeId) {
        self.stats
            .reinserts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let count =
            ((self.node(node_id).len() as f64) * self.params.reinsert_fraction).ceil() as usize;
        let count = count.max(1);
        let center = self
            .node(node_id)
            .mbr()
            .expect("overflowing node is non-empty")
            .center();
        match &mut self.nodes[node_id as usize].kind {
            NodeKind::Leaf(entries) => {
                // sort by distance of entry-centre to node-centre, descending
                entries.sort_by_key(|e| {
                    std::cmp::Reverse(OrderedF64(e.rect.center().dist_sq(&center)))
                });
                let removed: Vec<Entry> = entries.drain(..count).collect();
                self.adjust_rects_upward(node_id);
                // far-reinsert: farthest first (classic R* policy)
                for e in removed {
                    self.insert_entry(e, 0);
                }
            }
            NodeKind::Internal(children) => {
                children.sort_by_key(|c| {
                    std::cmp::Reverse(OrderedF64(c.rect.center().dist_sq(&center)))
                });
                let removed: Vec<ChildRef> = children.drain(..count).collect();
                let level = self.node(node_id).level;
                self.adjust_rects_upward(node_id);
                for c in removed {
                    self.insert_subtree(c.rect, c.node, level - 1);
                }
            }
        }
    }

    /// Splits an overflowing node with the R* topological split, growing the
    /// tree when the root splits.
    pub(crate) fn split_node(&mut self, node_id: NodeId) {
        self.stats
            .splits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let min = self.params.min_entries;
        let new_kind = match &mut self.nodes[node_id as usize].kind {
            NodeKind::Leaf(entries) => {
                let spilled = split::rstar_split(entries, min, |e| &e.rect);
                NodeKind::Leaf(spilled)
            }
            NodeKind::Internal(children) => {
                let spilled = split::rstar_split(children, min, |c| &c.rect);
                NodeKind::Internal(spilled)
            }
        };
        let level = self.node(node_id).level;
        let parent = self.node(node_id).parent;
        let sibling = self.alloc_node(Node {
            kind: new_kind,
            level,
            parent: INVALID,
        });
        // Reparent grandchildren of the new internal sibling.
        if let NodeKind::Internal(children) = &self.node(sibling).kind {
            let moved: Vec<NodeId> = children.iter().map(|c| c.node).collect();
            for m in moved {
                self.node_mut(m).parent = sibling;
            }
        }
        let sib_rect = self.node(sibling).mbr().expect("sibling non-empty");
        if parent == INVALID {
            // Root split: create a new root.
            let old_rect = self.node(node_id).mbr().expect("old root non-empty");
            let new_root = self.alloc_node(Node {
                kind: NodeKind::Internal(vec![
                    ChildRef {
                        rect: old_rect,
                        node: node_id,
                    },
                    ChildRef {
                        rect: sib_rect,
                        node: sibling,
                    },
                ]),
                level: level + 1,
                parent: INVALID,
            });
            self.node_mut(node_id).parent = new_root;
            self.node_mut(sibling).parent = new_root;
            self.root = new_root;
            // A new level exists; extend the reinsert bookkeeping.
            self.reinserted_levels.push(true);
        } else {
            self.node_mut(sibling).parent = parent;
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal(v) => v.push(ChildRef {
                    rect: sib_rect,
                    node: sibling,
                }),
                NodeKind::Leaf(_) => unreachable!(),
            }
            self.adjust_rects_upward(node_id);
            self.adjust_rects_upward(sibling);
            if self.node(parent).len() > self.params.max_entries {
                self.handle_overflow(parent);
            }
        }
    }

    /// Deletes the entry with the given `id` whose rectangle equals `rect`.
    /// Returns true if an entry was removed.
    pub fn remove(&mut self, rect: &HyperRect, id: u64) -> bool {
        let Some(leaf) = self.find_leaf(self.root, rect, id) else {
            return false;
        };
        match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(v) => {
                let pos = v
                    .iter()
                    .position(|e| e.id == id && &e.rect == rect)
                    .expect("find_leaf located the entry");
                v.swap_remove(pos);
            }
            NodeKind::Internal(_) => unreachable!(),
        }
        self.len -= 1;
        self.condense(leaf);
        true
    }

    fn find_leaf(&self, node_id: NodeId, rect: &HyperRect, id: u64) -> Option<NodeId> {
        match &self.node(node_id).kind {
            NodeKind::Leaf(v) => v
                .iter()
                .any(|e| e.id == id && &e.rect == rect)
                .then_some(node_id),
            NodeKind::Internal(children) => children
                .iter()
                .filter(|c| c.rect.contains_rect(rect))
                .find_map(|c| self.find_leaf(c.node, rect, id)),
        }
    }

    /// Condenses the tree after a deletion: underfull nodes on the path to
    /// the root are dissolved and their contents re-inserted.
    fn condense(&mut self, leaf: NodeId) {
        let mut orphans_entries: Vec<Entry> = Vec::new();
        let mut orphan_subtrees: Vec<(HyperRect, NodeId, u32)> = Vec::new();
        let mut cur = leaf;
        while cur != self.root {
            let parent = self.node(cur).parent;
            if self.node(cur).len() < self.params.min_entries {
                // Unlink from parent and queue contents for reinsertion.
                match &mut self.node_mut(parent).kind {
                    NodeKind::Internal(v) => {
                        let pos = v.iter().position(|c| c.node == cur).expect("linked child");
                        v.swap_remove(pos);
                    }
                    NodeKind::Leaf(_) => unreachable!(),
                }
                let level = self.nodes[cur as usize].level;
                match &mut self.nodes[cur as usize].kind {
                    NodeKind::Leaf(v) => orphans_entries.append(v),
                    NodeKind::Internal(v) => {
                        for c in v.drain(..) {
                            orphan_subtrees.push((c.rect, c.node, level - 1));
                        }
                    }
                }
                self.free.push(cur);
            } else {
                self.adjust_rects_upward(cur);
            }
            cur = parent;
        }
        // Shrink the root if it became a trivial internal node.
        loop {
            let root = self.root;
            let replace = match &self.node(root).kind {
                NodeKind::Internal(v) if v.len() == 1 => Some(v[0].node),
                _ => None,
            };
            match replace {
                Some(only) => {
                    self.node_mut(only).parent = INVALID;
                    self.free.push(root);
                    self.root = only;
                }
                None => break,
            }
        }
        let height = self.nodes[self.root as usize].level as usize + 1;
        self.reinserted_levels = vec![true; height]; // no forced reinsert during condensation
        for (rect, node, level) in orphan_subtrees {
            self.insert_subtree(rect, node, level);
        }
        for e in orphans_entries {
            self.insert_entry(e, 0);
        }
    }

    /// STR (Sort-Tile-Recursive) bulk load. Far faster than repeated inserts
    /// and produces well-packed leaves; used to bootstrap experiments.
    pub fn bulk_load(dim: usize, params: RTreeParams, mut entries: Vec<Entry>) -> Self {
        if entries.is_empty() {
            return Self::new(dim, params);
        }
        let cap = params.max_entries;
        // Build leaf level.
        let mut tree = Self::new(dim, params);
        str_sort(&mut entries, dim, cap, 0);
        let mut level_nodes: Vec<NodeId> = entries
            .chunks(cap)
            .map(|chunk| {
                tree.alloc_node(Node {
                    kind: NodeKind::Leaf(chunk.to_vec()),
                    level: 0,
                    parent: INVALID,
                })
            })
            .collect();
        tree.len = entries.len();
        let mut level = 0u32;
        while level_nodes.len() > 1 {
            level += 1;
            let mut refs: Vec<ChildRef> = level_nodes
                .iter()
                .map(|&n| ChildRef {
                    rect: tree.node(n).mbr().expect("bulk nodes non-empty"),
                    node: n,
                })
                .collect();
            str_sort(&mut refs, dim, cap, 0);
            level_nodes = refs
                .chunks(cap)
                .map(|chunk| {
                    let id = tree.alloc_node(Node {
                        kind: NodeKind::Internal(chunk.to_vec()),
                        level,
                        parent: INVALID,
                    });
                    for c in chunk {
                        tree.node_mut(c.node).parent = id;
                    }
                    id
                })
                .collect();
        }
        // The placeholder root created by `new` is replaced.
        tree.free.push(tree.root);
        tree.root = level_nodes[0];
        tree.node_mut(level_nodes[0]).parent = INVALID;
        tree
    }

    /// Iterates over all entries (test / debugging helper).
    pub fn iter_entries(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.node(n).kind {
                NodeKind::Leaf(v) => out.extend(v.iter().cloned()),
                NodeKind::Internal(v) => stack.extend(v.iter().map(|c| c.node)),
            }
        }
        out
    }

    /// Validates structural invariants; used by tests.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        self.check_node(self.root, None);
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.node(n).kind {
                NodeKind::Leaf(v) => seen += v.len(),
                NodeKind::Internal(v) => stack.extend(v.iter().map(|c| c.node)),
            }
        }
        assert_eq!(seen, self.len, "entry count mismatch");
    }

    fn check_node(&self, id: NodeId, expected_rect: Option<&HyperRect>) {
        let node = self.node(id);
        if id != self.root {
            assert!(
                node.len() >= 1,
                "non-root node {id} is empty (level {})",
                node.level
            );
        }
        assert!(node.len() <= self.params.max_entries + 1);
        if let Some(r) = expected_rect {
            let mbr = node.mbr().expect("non-empty");
            assert!(
                r.contains_rect(&mbr) && mbr.contains_rect(r),
                "stored child rect differs from recomputed MBR"
            );
        }
        if let NodeKind::Internal(children) = &node.kind {
            for c in children {
                assert_eq!(self.node(c.node).parent, id, "broken parent link");
                assert_eq!(self.node(c.node).level + 1, node.level, "level mismatch");
                self.check_node(c.node, Some(&c.rect));
            }
        }
    }
}

/// Recursive STR tiling sort: sorts items by centre coordinate of dimension
/// `axis`, then partitions into vertical "slabs" that are recursively sorted
/// on the remaining axes.
fn str_sort<T>(items: &mut [T], dim: usize, cap: usize, axis: usize)
where
    T: HasRect,
{
    if axis >= dim || items.len() <= cap {
        return;
    }
    items.sort_by_key(|it| OrderedF64(it.rect_ref().center()[axis]));
    let leaves = (items.len() as f64 / cap as f64).ceil();
    let slabs = leaves.powf(1.0 / (dim - axis) as f64).ceil() as usize;
    let slab_len = items.len().div_ceil(slabs.max(1));
    for chunk in items.chunks_mut(slab_len.max(1)) {
        str_sort(chunk, dim, cap, axis + 1);
    }
}

pub(crate) trait HasRect {
    fn rect_ref(&self) -> &HyperRect;
}

impl HasRect for Entry {
    fn rect_ref(&self) -> &HyperRect {
        &self.rect
    }
}

impl HasRect for ChildRef {
    fn rect_ref(&self) -> &HyperRect {
        &self.rect
    }
}
