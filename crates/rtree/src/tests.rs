//! Unit tests for the R*-tree.

use crate::{Entry, RTree, RTreeParams};
use pv_geom::{min_dist_sq, HyperRect, Point};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn rect(lo: &[f64], hi: &[f64]) -> HyperRect {
    HyperRect::new(lo.to_vec(), hi.to_vec())
}

fn random_rects(n: usize, dim: usize, seed: u64) -> Vec<Entry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1000.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.1..20.0)).collect();
            Entry {
                rect: HyperRect::new(lo, hi),
                id: i as u64,
            }
        })
        .collect()
}

/// Linear-scan range search used as ground truth.
fn brute_range(entries: &[Entry], range: &HyperRect) -> Vec<u64> {
    let mut ids: Vec<u64> = entries
        .iter()
        .filter(|e| e.rect.intersects(range))
        .map(|e| e.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn empty_tree_behaviour() {
    let tree = RTree::with_default_params(2);
    assert!(tree.is_empty());
    assert!(tree.mbr().is_none());
    assert_eq!(
        tree.range_search(&rect(&[0.0, 0.0], &[10.0, 10.0])).len(),
        0
    );
    assert_eq!(tree.nn_iter(&Point::new(vec![0.0, 0.0])).count(), 0);
}

#[test]
fn insert_and_range_small() {
    let mut tree = RTree::new(2, RTreeParams::with_fanout(4));
    let entries = random_rects(50, 2, 7);
    for e in &entries {
        tree.insert(e.rect.clone(), e.id);
        tree.check_invariants();
    }
    assert_eq!(tree.len(), 50);
    let range = rect(&[200.0, 200.0], &[600.0, 600.0]);
    let mut got: Vec<u64> = tree.range_search(&range).iter().map(|e| e.id).collect();
    got.sort_unstable();
    assert_eq!(got, brute_range(&entries, &range));
}

#[test]
fn insert_large_matches_bruteforce_many_ranges() {
    let mut tree = RTree::new(3, RTreeParams::with_fanout(8));
    let entries = random_rects(800, 3, 11);
    for e in &entries {
        tree.insert(e.rect.clone(), e.id);
    }
    tree.check_invariants();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..25 {
        let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..900.0)).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(10.0..300.0)).collect();
        let range = HyperRect::new(lo, hi);
        let mut got: Vec<u64> = tree.range_search(&range).iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got, brute_range(&entries, &range));
    }
}

#[test]
fn bulk_load_matches_bruteforce() {
    let entries = random_rects(1000, 2, 13);
    let tree = RTree::bulk_load(2, RTreeParams::with_fanout(16), entries.clone());
    tree.check_invariants();
    assert_eq!(tree.len(), 1000);
    let range = rect(&[100.0, 100.0], &[400.0, 900.0]);
    let mut got: Vec<u64> = tree.range_search(&range).iter().map(|e| e.id).collect();
    got.sort_unstable();
    assert_eq!(got, brute_range(&entries, &range));
}

#[test]
fn bulk_load_is_packed() {
    let entries = random_rects(1024, 2, 17);
    let tree = RTree::bulk_load(2, RTreeParams::with_fanout(16), entries);
    // ~1024/16 = 64 leaves; a packed tree of fanout 16 has height 3
    assert!(tree.height() <= 3, "height {}", tree.height());
}

#[test]
fn nn_iter_is_sorted_and_complete() {
    let entries = random_rects(500, 2, 23);
    let tree = RTree::bulk_load(2, RTreeParams::with_fanout(8), entries.clone());
    let q = Point::new(vec![500.0, 500.0]);
    let result: Vec<_> = tree.nn_iter(&q).collect();
    assert_eq!(result.len(), 500);
    for w in result.windows(2) {
        assert!(w[0].dist <= w[1].dist + 1e-12);
    }
    // first neighbor matches brute force
    let brute_best = entries
        .iter()
        .map(|e| min_dist_sq(&e.rect, &q).sqrt())
        .fold(f64::INFINITY, f64::min);
    assert!((result[0].dist - brute_best).abs() < 1e-9);
}

#[test]
fn knn_prefix_of_full_browse() {
    let entries = random_rects(300, 3, 29);
    let tree = RTree::bulk_load(3, RTreeParams::with_fanout(8), entries);
    let q = Point::new(vec![100.0, 800.0, 50.0]);
    let k10 = tree.knn(&q, 10);
    let full: Vec<_> = tree.nn_iter(&q).take(10).collect();
    assert_eq!(k10.len(), 10);
    for (a, b) in k10.iter().zip(full.iter()) {
        assert_eq!(a.dist, b.dist);
    }
}

#[test]
fn lazy_browsing_visits_fewer_leaves() {
    let entries = random_rects(2000, 2, 31);
    let tree = RTree::bulk_load(2, RTreeParams::with_fanout(16), entries);
    let q = Point::new(vec![500.0, 500.0]);
    tree.stats.reset_visits();
    let _ = tree.knn(&q, 5);
    let partial = tree
        .stats
        .leaf_visits
        .load(std::sync::atomic::Ordering::Relaxed);
    tree.stats.reset_visits();
    let _: Vec<_> = tree.nn_iter(&q).collect();
    let full = tree
        .stats
        .leaf_visits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        partial < full / 4,
        "5-NN visited {partial} leaves vs {full} for a full scan"
    );
}

#[test]
fn remove_entries_and_requery() {
    let mut tree = RTree::new(2, RTreeParams::with_fanout(6));
    let entries = random_rects(300, 2, 37);
    for e in &entries {
        tree.insert(e.rect.clone(), e.id);
    }
    // remove every third entry
    let mut remaining = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        if i % 3 == 0 {
            assert!(tree.remove(&e.rect, e.id), "entry {i} should be removable");
        } else {
            remaining.push(e.clone());
        }
    }
    tree.check_invariants();
    assert_eq!(tree.len(), remaining.len());
    let range = rect(&[0.0, 0.0], &[1000.0, 1000.0]);
    let mut got: Vec<u64> = tree.range_search(&range).iter().map(|e| e.id).collect();
    got.sort_unstable();
    assert_eq!(got, brute_range(&remaining, &range));
}

#[test]
fn remove_missing_returns_false() {
    let mut tree = RTree::with_default_params(2);
    tree.insert(rect(&[0.0, 0.0], &[1.0, 1.0]), 1);
    assert!(!tree.remove(&rect(&[5.0, 5.0], &[6.0, 6.0]), 1));
    assert!(!tree.remove(&rect(&[0.0, 0.0], &[1.0, 1.0]), 2));
    assert_eq!(tree.len(), 1);
}

#[test]
fn remove_all_leaves_empty_tree() {
    let mut tree = RTree::new(2, RTreeParams::with_fanout(4));
    let entries = random_rects(100, 2, 41);
    for e in &entries {
        tree.insert(e.rect.clone(), e.id);
    }
    for e in &entries {
        assert!(tree.remove(&e.rect, e.id));
    }
    assert!(tree.is_empty());
    tree.check_invariants();
    // tree remains usable
    tree.insert(rect(&[1.0, 1.0], &[2.0, 2.0]), 777);
    assert_eq!(tree.len(), 1);
}

#[test]
fn duplicate_rects_distinct_ids() {
    let mut tree = RTree::new(2, RTreeParams::with_fanout(4));
    let r = rect(&[10.0, 10.0], &[20.0, 20.0]);
    for id in 0..20 {
        tree.insert(r.clone(), id);
    }
    assert_eq!(tree.len(), 20);
    assert_eq!(tree.stab(&Point::new(vec![15.0, 15.0])).len(), 20);
    assert!(tree.remove(&r, 7));
    assert_eq!(tree.len(), 19);
    let ids: Vec<u64> = tree
        .stab(&Point::new(vec![15.0, 15.0]))
        .iter()
        .map(|e| e.id)
        .collect();
    assert!(!ids.contains(&7));
}

#[test]
fn stab_query() {
    let mut tree = RTree::with_default_params(2);
    tree.insert(rect(&[0.0, 0.0], &[10.0, 10.0]), 1);
    tree.insert(rect(&[5.0, 5.0], &[15.0, 15.0]), 2);
    tree.insert(rect(&[20.0, 20.0], &[30.0, 30.0]), 3);
    let hits: Vec<u64> = tree
        .stab(&Point::new(vec![7.0, 7.0]))
        .iter()
        .map(|e| e.id)
        .collect();
    assert_eq!(hits.len(), 2);
    assert!(hits.contains(&1) && hits.contains(&2));
}

#[test]
fn high_dimensional_round_trip() {
    // d = 5, the paper's maximum.
    let entries = random_rects(400, 5, 43);
    let mut tree = RTree::new(5, RTreeParams::with_fanout(10));
    for e in &entries {
        tree.insert(e.rect.clone(), e.id);
    }
    tree.check_invariants();
    let q = Point::new(vec![500.0; 5]);
    let nn: Vec<_> = tree.nn_iter(&q).take(3).collect();
    assert_eq!(nn.len(), 3);
    let brute_best = entries
        .iter()
        .map(|e| min_dist_sq(&e.rect, &q).sqrt())
        .fold(f64::INFINITY, f64::min);
    assert!((nn[0].dist - brute_best).abs() < 1e-9);
}
