//! The R* topological split.
//!
//! Given an overflowing set of `M+1` items, the R* split (Beckmann et al.)
//! chooses a split *axis* by minimising the total margin over all candidate
//! distributions, then chooses the *distribution* along that axis minimising
//! overlap (ties: combined area). The chosen tail is drained out of the input
//! vector and returned for placement in the new sibling node.

use crate::node::HasRect;
use pv_geom::{HyperRect, OrderedF64};

fn mbr_of<T: HasRect>(items: &[T]) -> HyperRect {
    let mut it = items.iter();
    let first = it.next().expect("non-empty").rect_ref().clone();
    it.fold(first, |acc, x| acc.union(x.rect_ref()))
}

/// Performs the R* split in place: `items` keeps the first group, the second
/// group is returned.
pub(crate) fn rstar_split<T, F>(items: &mut Vec<T>, min_entries: usize, rect_of: F) -> Vec<T>
where
    T: HasRect + Clone,
    F: Fn(&T) -> &HyperRect,
{
    let total = items.len();
    debug_assert!(total > 2 * min_entries.saturating_sub(1));
    let dim = rect_of(&items[0]).dim();
    let k_max = total - 2 * min_entries + 1; // number of candidate distributions per sort

    // 1. Choose the split axis: minimise the margin sum over both sortings
    //    (by lower then by upper boundary) and all legal distributions.
    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dim {
        let mut margin_sum = 0.0;
        for sort_by_upper in [false, true] {
            sort_items(items, axis, sort_by_upper);
            for k in 0..k_max {
                let split_at = min_entries + k;
                margin_sum +=
                    mbr_of(&items[..split_at]).margin() + mbr_of(&items[split_at..]).margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // 2. Along the best axis, choose the distribution with minimal overlap
    //    (ties broken by total area), over both sortings.
    let mut best: Option<(f64, f64, bool, usize)> = None;
    for sort_by_upper in [false, true] {
        sort_items(items, best_axis, sort_by_upper);
        for k in 0..k_max {
            let split_at = min_entries + k;
            let a = mbr_of(&items[..split_at]);
            let b = mbr_of(&items[split_at..]);
            let overlap = a.overlap_volume(&b);
            let area = a.volume() + b.volume();
            let cand = (overlap, area, sort_by_upper, split_at);
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some(cand);
            }
        }
    }
    let (_, _, sort_by_upper, split_at) = best.expect("at least one distribution");
    sort_items(items, best_axis, sort_by_upper);
    items.split_off(split_at)
}

fn sort_items<T: HasRect>(items: &mut [T], axis: usize, by_upper: bool) {
    if by_upper {
        items.sort_by_key(|it| {
            let r = it.rect_ref();
            (OrderedF64(r.hi()[axis]), OrderedF64(r.lo()[axis]))
        });
    } else {
        items.sort_by_key(|it| {
            let r = it.rect_ref();
            (OrderedF64(r.lo()[axis]), OrderedF64(r.hi()[axis]))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;

    fn entry(lo: &[f64], hi: &[f64], id: u64) -> Entry {
        Entry {
            rect: HyperRect::new(lo.to_vec(), hi.to_vec()),
            id,
        }
    }

    #[test]
    fn split_respects_min_entries() {
        let mut items: Vec<Entry> = (0..11)
            .map(|i| entry(&[i as f64, 0.0], &[i as f64 + 0.5, 1.0], i))
            .collect();
        let second = rstar_split(&mut items, 4, |e| &e.rect);
        assert!(items.len() >= 4);
        assert!(second.len() >= 4);
        assert_eq!(items.len() + second.len(), 11);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters along x must be split apart.
        let mut items: Vec<Entry> = Vec::new();
        for i in 0..5 {
            items.push(entry(
                &[i as f64 * 0.1, 0.0],
                &[i as f64 * 0.1 + 0.05, 1.0],
                i,
            ));
        }
        for i in 0..6 {
            let x = 100.0 + i as f64 * 0.1;
            items.push(entry(&[x, 0.0], &[x + 0.05, 1.0], 100 + i));
        }
        let second = rstar_split(&mut items, 4, |e| &e.rect);
        let a = mbr_of(&items);
        let b = mbr_of(&second);
        assert_eq!(a.overlap_volume(&b), 0.0, "clusters should not overlap");
    }

    #[test]
    fn split_ids_are_preserved() {
        let mut items: Vec<Entry> = (0..9)
            .map(|i| {
                entry(
                    &[(i % 3) as f64, (i / 3) as f64],
                    &[(i % 3) as f64 + 0.9, (i / 3) as f64 + 0.9],
                    i,
                )
            })
            .collect();
        let second = rstar_split(&mut items, 3, |e| &e.rect);
        let mut ids: Vec<u64> = items.iter().chain(second.iter()).map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }
}
