//! Queries: range search, point stabbing, and best-first distance browsing.

use crate::node::{NodeId, NodeKind, RTree};
use pv_geom::{min_dist_sq, HyperRect, OrderedF64, Point};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An object produced by [`RTree::nn_iter`], in ascending order of the
/// minimum distance between the query point and the entry rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// Minimum distance (not squared) from the query point to the rectangle.
    pub dist: f64,
    /// Entry rectangle.
    pub rect: HyperRect,
    /// Entry payload.
    pub id: u64,
}

enum HeapItem {
    Node(NodeId),
    /// A leaf entry, referenced by (leaf node, slot) — the `Neighbor` (and
    /// its rectangle clone) is only materialised if the entry is actually
    /// yielded, which matters to partial consumers like the IS candidate
    /// selection that browse far fewer entries than the frontier holds.
    Entry {
        node: NodeId,
        slot: u32,
        dist_sq: f64,
    },
}

/// Lazy best-first nearest-neighbor iterator (distance browsing, Hjaltason &
/// Samet \[39\]). Node visits are charged to the tree's statistics as they
/// happen, so partial consumption is billed fairly — exactly what the IS
/// candidate-set selection of the paper relies on.
pub struct NnIter<'a> {
    tree: &'a RTree,
    heap: BinaryHeap<(Reverse<OrderedF64>, usize)>,
    items: Vec<HeapItem>,
    query: Point,
}

impl std::fmt::Debug for NnIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NnIter")
            .field("frontier", &self.heap.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Iterator for NnIter<'a> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        // The heap is keyed on *squared* distance (with the insertion index
        // as tie-break): squaring is strictly monotone on non-negative
        // distances, so the pop order is identical to the sqrt'd form and
        // the root is only taken once per yielded entry.
        while let Some((Reverse(OrderedF64(_d)), idx)) = self.heap.pop() {
            match std::mem::replace(&mut self.items[idx], HeapItem::Node(u32::MAX)) {
                HeapItem::Entry {
                    node,
                    slot,
                    dist_sq,
                } => {
                    let NodeKind::Leaf(entries) = &self.tree.nodes[node as usize].kind else {
                        unreachable!("Entry items always reference leaves");
                    };
                    let e = &entries[slot as usize];
                    return Some(Neighbor {
                        dist: dist_sq.sqrt(),
                        rect: e.rect.clone(),
                        id: e.id,
                    });
                }
                HeapItem::Node(node_id) => {
                    let node = &self.tree.nodes[node_id as usize];
                    match &node.kind {
                        NodeKind::Leaf(entries) => {
                            self.tree
                                .stats
                                .leaf_visits
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            for (slot, e) in entries.iter().enumerate() {
                                let d = min_dist_sq(&e.rect, &self.query);
                                let idx = self.items.len();
                                self.items.push(HeapItem::Entry {
                                    node: node_id,
                                    slot: slot as u32,
                                    dist_sq: d,
                                });
                                self.heap.push((Reverse(OrderedF64(d)), idx));
                            }
                        }
                        NodeKind::Internal(children) => {
                            self.tree
                                .stats
                                .internal_visits
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            for c in children {
                                let d = min_dist_sq(&c.rect, &self.query);
                                let idx = self.items.len();
                                self.items.push(HeapItem::Node(c.node));
                                self.heap.push((Reverse(OrderedF64(d)), idx));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

impl RTree {
    /// All entries whose rectangles intersect `range`.
    pub fn range_search(&self, range: &HyperRect) -> Vec<crate::Entry> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    self.stats
                        .leaf_visits
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    out.extend(entries.iter().filter(|e| e.rect.intersects(range)).cloned());
                }
                NodeKind::Internal(children) => {
                    self.stats
                        .internal_visits
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    stack.extend(
                        children
                            .iter()
                            .filter(|c| c.rect.intersects(range))
                            .map(|c| c.node),
                    );
                }
            }
        }
        out
    }

    /// All entries whose rectangles contain the point `p`.
    pub fn stab(&self, p: &Point) -> Vec<crate::Entry> {
        self.range_search(&HyperRect::from_point(p))
    }

    /// Best-first distance browsing from point `q`: yields entries in
    /// ascending order of `distmin(rect, q)`, lazily.
    pub fn nn_iter(&self, q: &Point) -> NnIter<'_> {
        let mut it = NnIter {
            tree: self,
            heap: BinaryHeap::new(),
            items: Vec::new(),
            query: q.clone(),
        };
        if !self.is_empty() {
            it.items.push(HeapItem::Node(self.root));
            it.heap.push((Reverse(OrderedF64(0.0)), 0));
        }
        it
    }

    /// The `k` nearest entries to `q` by minimum rectangle distance.
    pub fn knn(&self, q: &Point, k: usize) -> Vec<Neighbor> {
        self.nn_iter(q).take(k).collect()
    }
}
