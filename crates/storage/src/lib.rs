//! # pv-storage — a simulated paged disk with honest I/O accounting
//!
//! The ICDE 2013 PV-index paper measures its indexes on a machine with 4 KiB
//! disk pages and a 5 MB main-memory budget for non-leaf index nodes
//! (§VII-A). Figures 9(c) and 9(g) report *I/O* directly. To reproduce those
//! experiments on a modern laptop we model the disk explicitly instead of
//! relying on a real device:
//!
//! * [`MemPager`] is an in-memory array of fixed-size pages with read / write
//!   / allocation counters ([`IoStats`]) and an optional per-access latency
//!   model ([`LatencyModel`]) for wall-clock realism experiments;
//! * [`FilePager`] implements the same [`Pager`] trait against a real file —
//!   checksummed superblock, on-disk free list, allocation map — so paged
//!   structures survive a process restart;
//! * [`PageList`] implements the paper's leaf-node layout: a linked list of
//!   pages holding variable-size records, with new pages attached at the
//!   *head* of the list (§VI-A, construction step 3);
//! * [`BufferPool`] is an optional LRU read cache used in ablation studies,
//!   stackable on either pager;
//! * [`codec`] provides the little-endian record encoding shared by the
//!   octree leaves and the extendible hash table, and surfaces corruption
//!   as [`codec::DecodeError`] values instead of panics;
//! * [`snapshot`] provides the versioned, checksummed envelope every index
//!   snapshot file in the workspace is wrapped in;
//! * [`fsio`] is the injectable filesystem surface ([`fsio::Fs`] /
//!   [`fsio::StdFs`]) the durability layer performs its file I/O through,
//!   with bounded [`fsio::RetryPolicy`] handling for transient faults;
//! * [`wal`] is the length-prefixed, checksummed write-ahead commit log
//!   behind `pv-core`'s `DurableDb`, with torn-tail repair and typed
//!   corruption reporting on replay;
//! * [`fault`] injects deterministic failures — torn writes, short reads,
//!   full disks, bit flips — behind the same [`fsio::Fs`]/[`Pager`] traits
//!   ([`fault::FaultFs`], [`fault::FaultPager`]), driven by seeded,
//!   replayable [`fault::FaultPlan`]s.
//!
//! Every index structure in the workspace performs its "disk" accesses
//! through this crate, so a unit of I/O means the same thing for the R-tree
//! baseline, the PV-index and the UV-index.
//!
//! ```
//! use pv_storage::{BufferPool, MemPager, PageList, Pager};
//!
//! // A 4 KiB-page simulated disk behind a tiny LRU cache.
//! let pool = BufferPool::new(MemPager::default_pager(), 4);
//! let mut leaf = PageList::new();
//! leaf.append(&pool, b"record one");
//! leaf.append(&pool, b"record two");
//! assert_eq!(leaf.read_all(&pool).len(), 2);
//! pool.flush(); // write-back cache: dirty pages reach the disk on flush
//! assert!(pool.inner().stats().snapshot().writes > 0);
//! ```

#![deny(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod fault;
pub mod filepager;
pub mod fsio;
pub mod pagelist;
pub mod pager;
pub mod snapshot;
pub mod wal;

pub use buffer::BufferPool;
pub use fault::{FaultFs, FaultKind, FaultPager, FaultPlan, ScheduledFault};
pub use filepager::FilePager;
pub use fsio::{Fs, RetryPolicy, StdFs};
pub use pagelist::{PageList, PageListStats};
pub use pager::{IoStats, LatencyModel, MemPager, PageId, Pager, DEFAULT_PAGE_SIZE};
pub use snapshot::fnv1a64;
pub use wal::{TornTail, Wal, WalError, WalRecord, WalReplay};
