//! # pv-storage — a simulated paged disk with honest I/O accounting
//!
//! The ICDE 2013 PV-index paper measures its indexes on a machine with 4 KiB
//! disk pages and a 5 MB main-memory budget for non-leaf index nodes
//! (§VII-A). Figures 9(c) and 9(g) report *I/O* directly. To reproduce those
//! experiments on a modern laptop we model the disk explicitly instead of
//! relying on a real device:
//!
//! * [`MemPager`] is an in-memory array of fixed-size pages with read / write
//!   / allocation counters ([`IoStats`]) and an optional per-access latency
//!   model ([`LatencyModel`]) for wall-clock realism experiments;
//! * [`PageList`] implements the paper's leaf-node layout: a linked list of
//!   pages holding variable-size records, with new pages attached at the
//!   *head* of the list (§VI-A, construction step 3);
//! * [`BufferPool`] is an optional LRU read cache used in ablation studies;
//! * [`codec`] provides the little-endian record encoding shared by the
//!   octree leaves and the extendible hash table.
//!
//! Every index structure in the workspace performs its "disk" accesses
//! through this crate, so a unit of I/O means the same thing for the R-tree
//! baseline, the PV-index and the UV-index.

#![deny(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod pagelist;
pub mod pager;

pub use buffer::BufferPool;
pub use pagelist::{PageList, PageListStats};
pub use pager::{IoStats, LatencyModel, MemPager, PageId, Pager, DEFAULT_PAGE_SIZE};
