//! Little-endian record encoding helpers.
//!
//! All on-page records in the workspace (octree leaf entries, hash-table
//! values, secondary-index payloads) are encoded with these helpers so that
//! page space accounting is exact and platform-independent.

/// Error produced when decoding an on-page record fails.
///
/// Records written by this workspace always decode cleanly; these errors
/// surface page corruption (or version skew) to the caller instead of
/// panicking inside the codec layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the record was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A discriminant field held a value no known record version writes.
    UnknownTag {
        /// What was being decoded (e.g. `"secondary record"`).
        context: &'static str,
        /// The offending tag value.
        tag: u16,
    },
    /// A file/blob did not start with the expected magic bytes — it is not
    /// the kind of artifact the caller tried to open.
    BadMagic {
        /// What was being opened (e.g. `"PV-index snapshot"`).
        context: &'static str,
    },
    /// The artifact's format version is newer than this build understands.
    UnsupportedVersion {
        /// What was being opened.
        context: &'static str,
        /// Version found in the file.
        found: u16,
        /// Highest version this build can decode.
        supported: u16,
    },
    /// The artifact's checksum did not match its contents (bit rot, a torn
    /// write, or deliberate tampering).
    ChecksumMismatch {
        /// What was being verified.
        context: &'static str,
    },
    /// A structural field held a value no writer produces (a zero
    /// dimensionality, an absurd directory size, a dangling reference, …).
    Invalid {
        /// The field that was implausible (e.g. `"octree snapshot child index"`).
        context: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => write!(
                f,
                "record truncated: needed {needed} more bytes, {remaining} remaining"
            ),
            DecodeError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag}")
            }
            DecodeError::BadMagic { context } => {
                write!(f, "not a {context}: bad magic bytes")
            }
            DecodeError::UnsupportedVersion {
                context,
                found,
                supported,
            } => write!(
                f,
                "{context} version {found} is newer than supported version {supported}"
            ),
            DecodeError::ChecksumMismatch { context } => {
                write!(f, "{context} checksum mismatch: content is corrupted")
            }
            DecodeError::Invalid { context } => {
                write!(f, "implausible {context}: no known writer produces it")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialises a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Serialises a `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises an `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a `usize` count as a `u32` on-page prefix, checked.
///
/// # Panics
/// If `v` exceeds `u32::MAX`. A count that large means the caller's record
/// layout is already broken — truncating it silently (what a bare `as u32`
/// would do) corrupts the page in a way only decode-time checksums might
/// catch, so the encoder fails loudly instead.
pub fn put_u32_len(out: &mut Vec<u8>, v: usize) {
    let v = u32::try_from(v).expect("count exceeds the u32 on-page prefix");
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a `usize` count as a `u16` on-page prefix, checked.
///
/// # Panics
/// If `v` exceeds `u16::MAX` — same rationale as [`put_u32_len`].
pub fn put_u16_len(out: &mut Vec<u8>, v: usize) {
    let v = u16::try_from(v).expect("count exceeds the u16 on-page prefix");
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a length-prefixed byte string (u32 length).
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32_len(out, v.len());
    out.extend_from_slice(v);
}

/// Serialises a slice of f64 with a u16 length prefix.
pub fn put_f64_slice(out: &mut Vec<u8>, v: &[f64]) {
    put_u16_len(out, v.len());
    for &x in v {
        put_f64(out, x);
    }
}

/// Cursor-style decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl std::fmt::Debug for Reader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reader")
            .field("remaining", &self.buf.len())
            .finish()
    }
}

impl<'a> Reader<'a> {
    /// Wraps a slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes and returns the next `n` bytes.
    fn split(&mut self, n: usize) -> &'a [u8] {
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        head
    }

    /// Checked variant of [`Reader::split`].
    fn try_split(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        Ok(self.split(n))
    }

    /// Reads a `u8`, or reports truncation.
    pub fn try_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.try_split(1)?[0])
    }

    /// Reads a `u64`, or reports truncation.
    pub fn try_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.try_split(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`, or reports truncation.
    pub fn try_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.try_split(4)?.try_into().unwrap()))
    }

    /// Reads a `u16`, or reports truncation.
    pub fn try_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.try_split(2)?.try_into().unwrap()))
    }

    /// Reads an `f64`, or reports truncation.
    pub fn try_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.try_split(8)?.try_into().unwrap()))
    }

    /// Takes exactly `n` raw bytes, or reports truncation.
    pub fn try_take(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        Ok(self.try_split(n)?.to_vec())
    }

    /// Borrows the next `n` raw bytes without copying, or reports
    /// truncation. Used by zero-copy record views on the query hot path.
    pub fn try_borrow(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.try_split(n)
    }

    /// Reads a length-prefixed byte string (the counterpart of
    /// [`put_bytes`]), or reports truncation.
    pub fn try_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.try_u32()? as usize;
        self.try_take(n)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.split(8).try_into().unwrap())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.split(4).try_into().unwrap())
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.split(2).try_into().unwrap())
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.split(8).try_into().unwrap())
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Vec<u8> {
        let n = self.u32() as usize;
        self.split(n).to_vec()
    }

    /// Reads a u16-length-prefixed f64 slice.
    pub fn f64_slice(&mut self) -> Vec<f64> {
        let n = self.u16() as usize;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Takes exactly `n` raw bytes.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain (check [`Reader::remaining`] first
    /// when parsing untrusted input).
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        self.split(n).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut out = Vec::new();
        put_u64(&mut out, 0xDEAD_BEEF_CAFE_F00D);
        put_u32(&mut out, 77);
        put_u16(&mut out, 513);
        put_f64(&mut out, -1234.5);
        let mut r = Reader::new(&out);
        assert_eq!(r.u64(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.u32(), 77);
        assert_eq!(r.u16(), 513);
        assert_eq!(r.f64(), -1234.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_composites() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello pages");
        put_f64_slice(&mut out, &[1.0, 2.5, -3.0]);
        let mut r = Reader::new(&out);
        assert_eq!(r.bytes(), b"hello pages");
        assert_eq!(r.f64_slice(), vec![1.0, 2.5, -3.0]);
    }

    #[test]
    fn try_readers_report_truncation() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        let mut r = Reader::new(&out);
        assert_eq!(r.try_u32(), Ok(7));
        assert_eq!(
            r.try_u64(),
            Err(DecodeError::Truncated {
                needed: 8,
                remaining: 0
            })
        );
        let mut r = Reader::new(&out[..2]);
        assert_eq!(
            r.try_u32(),
            Err(DecodeError::Truncated {
                needed: 4,
                remaining: 2
            })
        );
        // a failed try leaves the cursor untouched
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.try_u16(), Ok(7));
    }

    #[test]
    fn decode_error_displays() {
        let e = DecodeError::UnknownTag {
            context: "secondary record",
            tag: 9,
        };
        assert_eq!(e.to_string(), "unknown secondary record tag 9");
        let t = DecodeError::Truncated {
            needed: 8,
            remaining: 3,
        };
        assert!(t.to_string().contains("8"));
    }

    #[test]
    fn empty_composites() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"");
        put_f64_slice(&mut out, &[]);
        let mut r = Reader::new(&out);
        assert!(r.bytes().is_empty());
        assert!(r.f64_slice().is_empty());
    }
}
