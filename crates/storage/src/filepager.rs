//! A pager backed by a real file — persistent disk pages for warm restarts.
//!
//! [`MemPager`](crate::MemPager) models the paper's disk for experiments
//! whose lifetime is one process. The [`FilePager`] implements the same
//! [`Pager`] trait against an actual file so that paged structures (octree
//! leaves, hash buckets, page lists) survive a restart:
//!
//! ```text
//! offset 0:                    superblock (one page)
//! offset (1 + i) * page_size:  data page PageId(i)
//! ```
//!
//! * the **superblock** holds magic, format version, page geometry, the
//!   free-list head and a checksum; [`FilePager::open`] refuses files whose
//!   superblock is corrupt or from a newer format version;
//! * **free pages** form an on-disk linked list (the first 8 bytes of a
//!   freed page point at the next free page), so allocation and free are
//!   O(1) and the free set is recovered on reopen;
//! * an in-memory **page allocation map** (one bit per page, rebuilt from
//!   the free list at `open`) gives the same use-after-free / double-free
//!   detection as the `MemPager`;
//! * all traffic is metered through the shared [`IoStats`], and the pager
//!   composes with [`BufferPool`](crate::BufferPool) like any other
//!   [`Pager`].
//!
//! Durability: the superblock is rewritten by [`FilePager::sync`] and on
//! drop; call `sync` explicitly at checkpoints that must survive a crash.
//!
//! ```
//! use pv_storage::{FilePager, PageList, Pager};
//!
//! let path = std::env::temp_dir().join("pv_filepager_doc.pages");
//! # let _ = std::fs::remove_file(&path);
//! let pager = FilePager::create(&path, 256).unwrap();
//! let mut list = PageList::new();
//! list.append(&pager, b"survives a restart");
//! let head = list.head();
//! pager.sync().unwrap();
//! drop(pager);
//!
//! let reopened = FilePager::open(&path).unwrap();
//! let list = PageList::from_head(head);
//! assert_eq!(list.read_all(&reopened), vec![b"survives a restart".to_vec()]);
//! # drop(reopened);
//! # std::fs::remove_file(&path).unwrap();
//! ```

use crate::codec::DecodeError;
use crate::pager::{IoStats, PageId, Pager};
use crate::fnv1a64;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: [u8; 8] = *b"PVPAGES\x01";
const VERSION: u16 = 1;
/// magic + version + page_size(u32) + n_pages(u64) + free_head(u64) + live(u64)
const SB_BODY: usize = 8 + 2 + 4 + 8 + 8 + 8;
/// Smallest page that can hold the superblock plus its checksum.
const MIN_PAGE: usize = SB_BODY + 8;

struct FileState {
    file: File,
    /// Total data pages ever allocated (file length = (1 + n_pages) pages).
    n_pages: u64,
    /// Head of the on-disk free list.
    free_head: PageId,
    /// Allocation map: `allocated[i]` is true while `PageId(i)` is live.
    allocated: Vec<bool>,
}

struct FilePagerInner {
    page_size: usize,
    stats: IoStats,
    state: Mutex<FileState>,
}

/// A [`Pager`] whose pages live in a real file.
///
/// Cloning yields a handle to the *same* file and counters, so multiple
/// index structures can share one device exactly like with
/// [`MemPager`](crate::MemPager).
#[derive(Clone)]
pub struct FilePager {
    inner: Arc<FilePagerInner>,
}

impl std::fmt::Debug for FilePager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilePager")
            .field("page_size", &self.inner.page_size)
            .field("live_pages", &self.live_pages())
            .finish()
    }
}

impl FilePager {
    /// Creates a fresh page file at `path` (truncating any existing file)
    /// with the given page size.
    ///
    /// # Errors
    /// Propagates I/O errors; rejects page sizes too small for the
    /// superblock.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        if page_size < MIN_PAGE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page size {page_size} cannot hold the superblock ({MIN_PAGE} bytes)"),
            ));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let pager = Self {
            inner: Arc::new(FilePagerInner {
                page_size,
                stats: IoStats::default(),
                state: Mutex::new(FileState {
                    file,
                    n_pages: 0,
                    free_head: PageId::NULL,
                    allocated: Vec::new(),
                }),
            }),
        };
        pager.sync()?;
        Ok(pager)
    }

    /// Opens an existing page file, validating its superblock and rebuilding
    /// the allocation map by walking the free list.
    ///
    /// # Errors
    /// I/O errors pass through; a corrupt, truncated or newer-versioned
    /// superblock yields an [`io::ErrorKind::InvalidData`] error wrapping the
    /// precise [`DecodeError`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let invalid = |e: DecodeError| io::Error::new(io::ErrorKind::InvalidData, e);
        const CONTEXT: &str = "page file superblock";
        if file_len < MIN_PAGE as u64 {
            return Err(invalid(DecodeError::Truncated {
                needed: MIN_PAGE,
                remaining: file_len as usize,
            }));
        }
        let mut sb = vec![0u8; SB_BODY + 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut sb)?;
        if sb[0..8] != MAGIC {
            return Err(invalid(DecodeError::BadMagic { context: CONTEXT }));
        }
        let stored_sum = u64::from_le_bytes(sb[SB_BODY..].try_into().unwrap());
        if fnv1a64(&sb[..SB_BODY]) != stored_sum {
            return Err(invalid(DecodeError::ChecksumMismatch { context: CONTEXT }));
        }
        let version = u16::from_le_bytes([sb[8], sb[9]]);
        if version == 0 || version > VERSION {
            return Err(invalid(DecodeError::UnsupportedVersion {
                context: CONTEXT,
                found: version,
                supported: VERSION,
            }));
        }
        let page_size = u32::from_le_bytes(sb[10..14].try_into().unwrap()) as usize;
        let n_pages = u64::from_le_bytes(sb[14..22].try_into().unwrap());
        let free_head = PageId(u64::from_le_bytes(sb[22..30].try_into().unwrap()));
        let live = u64::from_le_bytes(sb[30..38].try_into().unwrap());
        if page_size < MIN_PAGE || file_len < (1 + n_pages) * page_size as u64 {
            return Err(invalid(DecodeError::ChecksumMismatch { context: CONTEXT }));
        }

        // Rebuild the allocation map: everything is live except the pages
        // reachable from the free list.
        let mut allocated = vec![true; n_pages as usize];
        let mut free_count = 0u64;
        let mut cur = free_head;
        let mut next_buf = [0u8; 8];
        while !cur.is_null() {
            if cur.0 >= n_pages || !allocated[cur.0 as usize] {
                // Out-of-range or cyclic free list: the superblock lied.
                return Err(invalid(DecodeError::ChecksumMismatch { context: CONTEXT }));
            }
            allocated[cur.0 as usize] = false;
            free_count += 1;
            file.seek(SeekFrom::Start((1 + cur.0) * page_size as u64))?;
            file.read_exact(&mut next_buf)?;
            cur = PageId(u64::from_le_bytes(next_buf));
        }
        if n_pages - free_count != live {
            return Err(invalid(DecodeError::ChecksumMismatch { context: CONTEXT }));
        }
        Ok(Self {
            inner: Arc::new(FilePagerInner {
                page_size,
                stats: IoStats::default(),
                state: Mutex::new(FileState {
                    file,
                    n_pages,
                    free_head,
                    allocated,
                }),
            }),
        })
    }

    /// Writes the superblock and flushes the file to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        let mut st = self.inner.state.lock();
        let sb = superblock_bytes(self.inner.page_size, &st);
        st.file.seek(SeekFrom::Start(0))?;
        st.file.write_all(&sb)?;
        st.file.sync_all()
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.inner
            .state
            .lock()
            .allocated
            .iter()
            .filter(|&&a| a)
            .count()
    }

    /// Bytes the page file occupies on disk (superblock included).
    pub fn disk_bytes(&self) -> usize {
        (1 + self.inner.state.lock().n_pages as usize) * self.inner.page_size
    }

    fn offset(&self, id: PageId) -> u64 {
        (1 + id.0) * self.inner.page_size as u64
    }

    fn check_live(st: &FileState, id: PageId, op: &str) {
        let live = st.allocated.get(id.0 as usize).copied().unwrap_or(false);
        assert!(live, "{op} of unallocated page {id:?}");
    }

    // Fallible cores of the `Pager` ops. The `Pager` trait is infallible by
    // contract (a page file that stops accepting reads/writes mid-operation
    // cannot be recovered from at this layer), so the trait methods translate
    // an `Err` into a panic at the boundary — but all actual I/O lives here,
    // in `io::Result` land, where `?` composes and tests can exercise it.

    fn try_alloc(&self, st: &mut FileState) -> io::Result<PageId> {
        let zeros = vec![0u8; self.inner.page_size];
        let id = if st.free_head.is_null() {
            let id = PageId(st.n_pages);
            st.n_pages += 1;
            st.allocated.push(true);
            id
        } else {
            let id = st.free_head;
            let off = self.offset(id);
            let mut next_buf = [0u8; 8];
            st.file.seek(SeekFrom::Start(off))?;
            st.file.read_exact(&mut next_buf)?;
            st.free_head = PageId(u64::from_le_bytes(next_buf));
            st.allocated[id.0 as usize] = true;
            id
        };
        let off = self.offset(id);
        st.file.seek(SeekFrom::Start(off))?;
        st.file.write_all(&zeros)?;
        Ok(id)
    }

    fn try_read(&self, st: &mut FileState, id: PageId) -> io::Result<Vec<u8>> {
        let off = self.offset(id);
        let mut buf = vec![0u8; self.inner.page_size];
        st.file.seek(SeekFrom::Start(off))?;
        st.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn try_write(&self, st: &mut FileState, id: PageId, data: &[u8]) -> io::Result<()> {
        let off = self.offset(id);
        st.file.seek(SeekFrom::Start(off))?;
        st.file.write_all(data)
    }

    fn try_free(&self, st: &mut FileState, id: PageId) -> io::Result<()> {
        // Chain into the free list: the page's first 8 bytes now hold the
        // previous head; the rest of the page is left as-is (alloc zeroes).
        let head = st.free_head.0.to_le_bytes();
        let off = self.offset(id);
        st.file.seek(SeekFrom::Start(off))?;
        st.file.write_all(&head)?;
        st.free_head = id;
        Ok(())
    }
}

impl Pager for FilePager {
    fn page_size(&self) -> usize {
        self.inner.page_size
    }

    fn alloc(&self) -> PageId {
        self.inner
            .stats
            .allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        self.try_alloc(&mut st)
            .unwrap_or_else(|e| panic!("page file alloc failed: {e}"))
    }

    fn read(&self, id: PageId) -> Vec<u8> {
        self.inner
            .stats
            .reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        Self::check_live(&st, id, "read");
        self.try_read(&mut st, id)
            .unwrap_or_else(|e| panic!("page file read of {id:?} failed: {e}"))
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.inner.page_size, "partial page write");
        self.inner
            .stats
            .writes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        Self::check_live(&st, id, "write");
        self.try_write(&mut st, id, data)
            .unwrap_or_else(|e| panic!("page file write of {id:?} failed: {e}"));
    }

    fn free(&self, id: PageId) {
        self.inner
            .stats
            .frees
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        let live = st.allocated.get(id.0 as usize).copied().unwrap_or(false);
        assert!(live, "double free of page {id:?}");
        st.allocated[id.0 as usize] = false;
        self.try_free(&mut st, id)
            .unwrap_or_else(|e| panic!("page file free of {id:?} failed: {e}"));
    }

    fn stats(&self) -> &IoStats {
        &self.inner.stats
    }
}

/// Encodes the full superblock page — the single source of truth shared by
/// [`FilePager::sync`] and the drop-time best-effort write.
fn superblock_bytes(page_size: usize, st: &FileState) -> Vec<u8> {
    let live = st.allocated.iter().filter(|&&a| a).count() as u64;
    let mut sb = Vec::with_capacity(page_size);
    sb.extend_from_slice(&MAGIC);
    sb.extend_from_slice(&VERSION.to_le_bytes());
    sb.extend_from_slice(&(page_size as u32).to_le_bytes());
    sb.extend_from_slice(&st.n_pages.to_le_bytes());
    sb.extend_from_slice(&st.free_head.0.to_le_bytes());
    sb.extend_from_slice(&live.to_le_bytes());
    let sum = fnv1a64(&sb);
    sb.extend_from_slice(&sum.to_le_bytes());
    sb.resize(page_size, 0);
    sb
}

impl Drop for FilePagerInner {
    fn drop(&mut self) {
        // Best-effort superblock write so a clean drop reopens consistently;
        // callers needing crash durability use `sync` explicitly.
        let page_size = self.page_size;
        let st = self.state.get_mut();
        let sb = superblock_bytes(page_size, st);
        let _ = st
            .file
            .seek(SeekFrom::Start(0))
            .and_then(|_| st.file.write_all(&sb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("pv_filepager_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = temp("roundtrip");
        let head;
        {
            let pager = FilePager::create(&path, 128).unwrap();
            let a = pager.alloc();
            let b = pager.alloc();
            let mut buf = vec![0u8; 128];
            buf[0] = 0xAA;
            pager.write(a, &buf);
            buf[0] = 0xBB;
            pager.write(b, &buf);
            pager.free(a);
            head = b;
            pager.sync().unwrap();
            assert_eq!(pager.live_pages(), 1);
        }
        let pager = FilePager::open(&path).unwrap();
        assert_eq!(pager.page_size(), 128);
        assert_eq!(pager.live_pages(), 1);
        assert_eq!(pager.read(head)[0], 0xBB);
        // the freed page is recycled before the file grows
        let c = pager.alloc();
        assert_eq!(c, PageId(0));
        assert!(pager.read(c).iter().all(|&x| x == 0), "recycled page dirty");
        drop(pager);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_stats_are_counted() {
        let path = temp("stats");
        let pager = FilePager::create(&path, 128).unwrap();
        let id = pager.alloc();
        pager.write(id, &[7u8; 128]);
        pager.read(id);
        let snap = pager.stats().snapshot();
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.reads, 1);
        drop(pager);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let path = temp("doublefree");
        let pager = FilePager::create(&path, 128).unwrap();
        let id = pager.alloc();
        pager.free(id);
        pager.free(id);
    }

    #[test]
    #[should_panic(expected = "read of unallocated page")]
    fn read_after_free_panics() {
        let path = temp("uaf");
        let pager = FilePager::create(&path, 128).unwrap();
        let id = pager.alloc();
        pager.free(id);
        pager.read(id);
    }

    #[test]
    fn corrupted_superblock_is_rejected() {
        let path = temp("corrupt");
        {
            let pager = FilePager::create(&path, 128).unwrap();
            let id = pager.alloc();
            pager.write(id, &[1u8; 128]);
            pager.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01; // flip a bit inside the superblock body
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = temp("truncated");
        {
            let pager = FilePager::create(&path, 128).unwrap();
            for _ in 0..4 {
                pager.alloc();
            }
            pager.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(FilePager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let path = temp("magic");
        std::fs::write(&path, vec![0x42u8; 4096]).unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn composes_with_buffer_pool_and_page_list() {
        use crate::{BufferPool, PageList};
        let path = temp("compose");
        let head;
        {
            let pool = BufferPool::new(FilePager::create(&path, 256).unwrap(), 8);
            let mut list = PageList::new();
            for i in 0..20u8 {
                list.append(&pool, &[i; 16]);
            }
            head = list.head();
            pool.flush();
            pool.inner().sync().unwrap();
        }
        let pager = FilePager::open(&path).unwrap();
        let list = PageList::from_head(head);
        let records = list.read_all(&pager);
        assert_eq!(records.len(), 20);
        // new pages chain at the head, so order is page-reversed; compare sets
        let mut firsts: Vec<u8> = records.iter().map(|r| r[0]).collect();
        firsts.sort_unstable();
        assert_eq!(firsts, (0..20u8).collect::<Vec<_>>());
        drop(pager);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clones_share_the_file() {
        let path = temp("clones");
        let pager = FilePager::create(&path, 128).unwrap();
        let other = pager.clone();
        let id = pager.alloc();
        other.write(id, &[9u8; 128]);
        assert_eq!(pager.read(id)[0], 9);
        assert_eq!(pager.stats().snapshot().writes, 1);
        drop(other);
        drop(pager);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tiny_page_size_is_rejected() {
        let path = temp("tiny");
        assert!(FilePager::create(&path, 16).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
