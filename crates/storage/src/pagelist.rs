//! Chained page lists: the on-disk layout of octree leaf nodes.
//!
//! §VI-A of the paper stores each primary-index leaf as "a linked list of
//! disk pages", with new pages attached to the *head* of the list when the
//! first page overflows and no main memory is left for a node split.
//!
//! Page layout:
//!
//! ```text
//! [ next_page: u64 | used: u16 | record*, ... ]     record = len: u16 | bytes
//! ```
//!
//! Records never span pages; a record larger than the page payload capacity
//! is rejected (callers split their payloads, e.g. via overflow chains in
//! `pv-exthash`).

use crate::pager::{PageId, Pager};

const HDR: usize = 8 + 2; // next pointer + used counter
const REC_HDR: usize = 2; // per-record length prefix

/// Aggregate information about a [`PageList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageListStats {
    /// Number of pages in the chain.
    pub pages: usize,
    /// Number of records stored.
    pub records: usize,
    /// Payload bytes in use (excluding headers).
    pub used_bytes: usize,
}

/// A linked list of disk pages holding variable-size records.
///
/// The list itself is a tiny in-memory handle (head page id); all record data
/// lives on the simulated disk and every operation reports its page accesses
/// through the pager's [`crate::IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageList {
    head: PageId,
}

impl Default for PageList {
    fn default() -> Self {
        Self::new()
    }
}

impl PageList {
    /// Creates an empty list (no pages allocated yet).
    pub fn new() -> Self {
        Self { head: PageId::NULL }
    }

    /// Restores a handle from a stored head page id.
    pub fn from_head(head: PageId) -> Self {
        Self { head }
    }

    /// Head page id (NULL when empty); persisted by the octree.
    pub fn head(&self) -> PageId {
        self.head
    }

    /// True if no page has been allocated.
    pub fn is_empty(&self) -> bool {
        self.head.is_null()
    }

    /// Maximum record payload a single page can hold.
    pub fn max_record_len(pager: &dyn Pager) -> usize {
        pager.page_size() - HDR - REC_HDR
    }

    /// Payload capacity of one page (page size minus the chain header); a
    /// record occupies [`PageList::RECORD_OVERHEAD`]` + len` of it. Exposed
    /// so bulk loaders can predict `append`'s first-fit grouping without
    /// touching pages.
    pub fn page_payload(pager: &dyn Pager) -> usize {
        pager.page_size() - HDR
    }

    /// Framing bytes each record adds on top of its payload length.
    pub const RECORD_OVERHEAD: usize = REC_HDR;

    /// Appends a record.
    ///
    /// Follows the paper's policy: try the head page; if it cannot fit the
    /// record, allocate a new page and attach it at the head of the chain.
    /// Returns `true` if a new page was allocated.
    pub fn append(&mut self, pager: &dyn Pager, record: &[u8]) -> bool {
        assert!(
            record.len() <= Self::max_record_len(pager),
            "record of {} bytes exceeds page capacity {}",
            record.len(),
            Self::max_record_len(pager)
        );
        if !self.head.is_null() {
            let mut page = pager.read(self.head);
            let used = u16::from_le_bytes([page[8], page[9]]) as usize;
            let free = pager.page_size() - HDR - used;
            if REC_HDR + record.len() <= free {
                let off = HDR + used;
                page[off..off + 2].copy_from_slice(&(record.len() as u16).to_le_bytes());
                page[off + 2..off + 2 + record.len()].copy_from_slice(record);
                let new_used = (used + REC_HDR + record.len()) as u16;
                page[8..10].copy_from_slice(&new_used.to_le_bytes());
                pager.write(self.head, &page);
                return false;
            }
        }
        // Allocate a fresh head page.
        let id = pager.alloc();
        let mut page = vec![0u8; pager.page_size()];
        page[0..8].copy_from_slice(&self.head.0.to_le_bytes());
        let used = (REC_HDR + record.len()) as u16;
        page[8..10].copy_from_slice(&used.to_le_bytes());
        page[HDR..HDR + 2].copy_from_slice(&(record.len() as u16).to_le_bytes());
        page[HDR + 2..HDR + 2 + record.len()].copy_from_slice(record);
        pager.write(id, &page);
        self.head = id;
        true
    }

    /// Builds a fresh chain holding `records` (in append order) with a
    /// single write per page.
    ///
    /// The layout is byte-identical to `append`ing the same records one at a
    /// time to an empty list: identical first-fit grouping, identical page
    /// headers, identical newest-page-at-head chaining, and pages allocated
    /// in the same (chronological) order. The difference is purely the write
    /// pattern — O(pages) writes instead of O(records) read-modify-write
    /// cycles — which is what the octree bulk loader leans on.
    pub fn build_from_records<'a>(
        pager: &dyn Pager,
        records: impl IntoIterator<Item = &'a [u8]>,
    ) -> Self {
        let page_size = pager.page_size();
        let mut cur = PageId::NULL;
        let mut page = vec![0u8; page_size];
        let mut used = 0usize;
        for record in records {
            assert!(
                record.len() <= Self::max_record_len(pager),
                "record of {} bytes exceeds page capacity {}",
                record.len(),
                Self::max_record_len(pager)
            );
            if cur.is_null() || REC_HDR + record.len() > page_size - HDR - used {
                if !cur.is_null() {
                    pager.write(cur, &page);
                }
                let prev = cur;
                cur = pager.alloc();
                page.iter_mut().for_each(|b| *b = 0);
                page[0..8].copy_from_slice(&prev.0.to_le_bytes());
                used = 0;
            }
            let off = HDR + used;
            page[off..off + 2].copy_from_slice(&(record.len() as u16).to_le_bytes());
            page[off + 2..off + 2 + record.len()].copy_from_slice(record);
            used += REC_HDR + record.len();
            page[8..10].copy_from_slice(&(used as u16).to_le_bytes());
        }
        if !cur.is_null() {
            pager.write(cur, &page);
        }
        Self { head: cur }
    }

    /// Reads every record in the chain (head page first). Each page in the
    /// chain costs one read.
    pub fn read_all(&self, pager: &dyn Pager) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while !cur.is_null() {
            let page = pager.read(cur);
            let next = PageId(u64::from_le_bytes(page[0..8].try_into().unwrap()));
            let used = u16::from_le_bytes([page[8], page[9]]) as usize;
            let mut off = HDR;
            while off < HDR + used {
                let len = u16::from_le_bytes([page[off], page[off + 1]]) as usize;
                out.push(page[off + 2..off + 2 + len].to_vec());
                off += REC_HDR + len;
            }
            cur = next;
        }
        out
    }

    /// Visits every record in the chain (head page first) without allocating:
    /// pages are read into `page_buf` (reused between pages and calls) and
    /// each record is handed to `sink` as a borrowed slice. Same traversal
    /// order and I/O charging as [`PageList::read_all`].
    pub fn for_each_record(
        &self,
        pager: &dyn Pager,
        page_buf: &mut Vec<u8>,
        mut sink: impl FnMut(&[u8]),
    ) {
        let mut cur = self.head;
        while !cur.is_null() {
            pager.read_into(cur, page_buf);
            let page = &page_buf[..];
            let next = PageId(u64::from_le_bytes(page[0..8].try_into().unwrap()));
            let used = u16::from_le_bytes([page[8], page[9]]) as usize;
            let mut off = HDR;
            while off < HDR + used {
                let len = u16::from_le_bytes([page[off], page[off + 1]]) as usize;
                sink(&page[off + 2..off + 2 + len]);
                off += REC_HDR + len;
            }
            cur = next;
        }
    }

    /// Rewrites the list keeping only records for which `keep` returns true.
    /// Returns the number of records removed. Pages made empty are freed.
    pub fn retain(&mut self, pager: &dyn Pager, mut keep: impl FnMut(&[u8]) -> bool) -> usize {
        let records = self.read_all(pager);
        let (kept, dropped): (Vec<_>, Vec<_>) = records.into_iter().partition(|r| keep(r));
        if dropped.is_empty() {
            return 0;
        }
        self.clear(pager);
        for r in &kept {
            self.append(pager, r);
        }
        dropped.len()
    }

    /// Frees every page of the chain.
    pub fn clear(&mut self, pager: &dyn Pager) {
        let mut cur = self.head;
        while !cur.is_null() {
            let page = pager.read(cur);
            let next = PageId(u64::from_le_bytes(page[0..8].try_into().unwrap()));
            pager.free(cur);
            cur = next;
        }
        self.head = PageId::NULL;
    }

    /// Chain statistics (costs one read per page).
    pub fn stats(&self, pager: &dyn Pager) -> PageListStats {
        let mut st = PageListStats::default();
        let mut cur = self.head;
        while !cur.is_null() {
            let page = pager.read(cur);
            let next = PageId(u64::from_le_bytes(page[0..8].try_into().unwrap()));
            let used = u16::from_le_bytes([page[8], page[9]]) as usize;
            st.pages += 1;
            st.used_bytes += used;
            let mut off = HDR;
            while off < HDR + used {
                let len = u16::from_le_bytes([page[off], page[off + 1]]) as usize;
                st.records += 1;
                off += REC_HDR + len;
            }
            cur = next;
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    #[test]
    fn append_and_read_single_page() {
        let pager = MemPager::new(128);
        let mut list = PageList::new();
        assert!(list.is_empty());
        assert!(list.append(&pager, b"alpha")); // first append allocates
        assert!(!list.append(&pager, b"beta")); // fits in the same page
        assert_eq!(
            list.read_all(&pager),
            vec![b"alpha".to_vec(), b"beta".to_vec()]
        );
        assert_eq!(list.stats(&pager).pages, 1);
        assert_eq!(list.stats(&pager).records, 2);
    }

    #[test]
    fn for_each_record_matches_read_all() {
        let pager = MemPager::new(64);
        let mut list = PageList::new();
        for i in 0..12u8 {
            list.append(&pager, &[i; 17]);
        }
        let mut streamed: Vec<Vec<u8>> = Vec::new();
        let mut buf = Vec::new();
        list.for_each_record(&pager, &mut buf, |rec| streamed.push(rec.to_vec()));
        assert_eq!(streamed, list.read_all(&pager));
    }

    #[test]
    fn build_from_records_matches_append_bytes() {
        // Same records through `append` and `build_from_records` on twin
        // pagers: the resulting disk images must be byte-identical.
        for (page_size, lens) in [
            (64usize, vec![17usize; 12]),
            (128, vec![5, 40, 40, 40, 3, 90, 1]),
            (128, vec![]),
            (256, vec![100; 7]),
        ] {
            let by_append = MemPager::new(page_size);
            let bulk = MemPager::new(page_size);
            let records: Vec<Vec<u8>> = lens
                .iter()
                .enumerate()
                .map(|(i, &l)| vec![i as u8 + 1; l])
                .collect();
            let mut a = PageList::new();
            for r in &records {
                a.append(&by_append, r);
            }
            let b = PageList::build_from_records(&bulk, records.iter().map(Vec::as_slice));
            assert_eq!(a.head(), b.head(), "page_size {page_size}");
            assert_eq!(by_append.image(), bulk.image(), "page_size {page_size}");
            assert_eq!(b.read_all(&bulk), a.read_all(&by_append));
        }
    }

    #[test]
    fn build_from_records_write_count_is_pages() {
        let pager = MemPager::new(64);
        let records: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i; 17]).collect();
        let w0 = pager.stats().snapshot().writes;
        let list = PageList::build_from_records(&pager, records.iter().map(Vec::as_slice));
        let writes = pager.stats().snapshot().writes - w0;
        assert_eq!(writes, list.stats(&pager).pages as u64);
    }

    #[test]
    fn overflow_chains_new_head() {
        let pager = MemPager::new(64); // tiny pages: payload = 64-10-2 = 52
        let mut list = PageList::new();
        let rec = vec![7u8; 30];
        list.append(&pager, &rec);
        let grew = list.append(&pager, &rec); // 2nd record of 32 bytes won't fit
        assert!(grew, "expected a second page");
        assert_eq!(list.stats(&pager).pages, 2);
        // newest record is on the head page, so it comes back first
        assert_eq!(list.read_all(&pager).len(), 2);
    }

    #[test]
    fn retain_filters_and_compacts() {
        let pager = MemPager::new(64);
        let mut list = PageList::new();
        for i in 0..10u8 {
            list.append(&pager, &[i; 20]);
        }
        let removed = list.retain(&pager, |r| r[0] % 2 == 0);
        assert_eq!(removed, 5);
        let rest = list.read_all(&pager);
        assert_eq!(rest.len(), 5);
        assert!(rest.iter().all(|r| r[0] % 2 == 0));
    }

    #[test]
    fn retain_noop_costs_no_rewrite() {
        let pager = MemPager::new(128);
        let mut list = PageList::new();
        list.append(&pager, b"stay");
        let w0 = pager.stats().snapshot().writes;
        assert_eq!(list.retain(&pager, |_| true), 0);
        assert_eq!(pager.stats().snapshot().writes, w0);
    }

    #[test]
    fn clear_frees_all_pages() {
        let pager = MemPager::new(64);
        let mut list = PageList::new();
        for i in 0..10u8 {
            list.append(&pager, &[i; 20]);
        }
        let pages = list.stats(&pager).pages as u64;
        assert!(pages > 1);
        list.clear(&pager);
        assert!(list.is_empty());
        assert_eq!(pager.stats().snapshot().frees, pages);
        assert_eq!(pager.live_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_record_panics() {
        let pager = MemPager::new(64);
        let mut list = PageList::new();
        list.append(&pager, &[0u8; 60]);
    }

    #[test]
    fn persists_via_head_id() {
        let pager = MemPager::new(128);
        let mut list = PageList::new();
        list.append(&pager, b"persisted");
        let head = list.head();
        let restored = PageList::from_head(head);
        assert_eq!(restored.read_all(&pager), vec![b"persisted".to_vec()]);
    }
}
