//! Versioned, checksummed container framing for on-disk snapshots.
//!
//! Every persistent artifact in the workspace (PV-index snapshots, UV-index
//! snapshots, R-tree baseline snapshots) shares one outer envelope so that
//! corruption, version skew and "wrong file" mistakes are all caught before
//! a single payload byte is interpreted:
//!
//! ```text
//! [ magic: "PVSN" | kind: 4 bytes | version: u16 | payload … | fnv1a64(everything before): u64 ]
//! ```
//!
//! * `kind` distinguishes artifact families (e.g. `b"PVIX"` for PV-index
//!   snapshots) so loading a UV-index file as a PV-index fails cleanly;
//! * `version` lets future PRs evolve payload layouts while still rejecting
//!   files from the future with a precise error;
//! * the trailing [`fnv1a64`] checksum covers the entire envelope, so any
//!   bit flip or truncation surfaces as a [`DecodeError`] instead of a
//!   panic deep inside a payload decoder.
//!
//! ```
//! use pv_storage::snapshot::{open_snapshot, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new(*b"DEMO", 1);
//! pv_storage::codec::put_u64(w.buf(), 42);
//! let bytes = w.finish();
//!
//! let (mut r, version) = open_snapshot(&bytes, *b"DEMO", "demo snapshot", 1).unwrap();
//! assert_eq!(version, 1);
//! assert_eq!(r.try_u64(), Ok(42));
//!
//! // A flipped bit is rejected, never mis-decoded.
//! let mut bad = bytes.clone();
//! bad[12] ^= 0x40;
//! assert!(open_snapshot(&bad, *b"DEMO", "demo snapshot", 1).is_err());
//! ```

use crate::codec::{self, DecodeError};

/// Leading bytes shared by every snapshot envelope.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PVSN";

const HEADER_LEN: usize = 4 + 4 + 2; // magic + kind + version
const CHECKSUM_LEN: usize = 8;

/// 64-bit FNV-1a over a byte slice — the workspace's integrity checksum.
///
/// The single definition for the whole suite (re-exported as
/// [`crate::fnv1a64`]); the WAL, superblock, and snapshot envelopes all hash
/// through here so their checksums stay interchangeable.
///
/// Not cryptographic; it exists to catch accidental corruption (truncation,
/// bit rot, torn writes), which is the failure model of the snapshot files.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds a snapshot envelope: header first, payload via [`SnapshotWriter::buf`],
/// checksum appended by [`SnapshotWriter::finish`].
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter")
            .field("bytes", &self.buf.len())
            .finish()
    }
}

impl SnapshotWriter {
    /// Starts an envelope of the given artifact `kind` and format `version`.
    pub fn new(kind: [u8; 4], version: u16) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&kind);
        codec::put_u16(&mut buf, version);
        Self { buf }
    }

    /// The growing payload buffer; append with the [`codec`] helpers.
    pub fn buf(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Seals the envelope: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        codec::put_u64(&mut self.buf, sum);
        self.buf
    }
}

/// Validates a snapshot envelope and returns a [`codec::Reader`] positioned
/// at the payload, plus the file's format version.
///
/// # Errors
/// [`DecodeError::Truncated`] if the buffer is shorter than an empty
/// envelope, [`DecodeError::BadMagic`] on wrong magic or `kind`,
/// [`DecodeError::UnsupportedVersion`] when the file is newer than
/// `supported_version`, and [`DecodeError::ChecksumMismatch`] when the
/// trailing checksum does not match the content.
pub fn open_snapshot<'a>(
    buf: &'a [u8],
    kind: [u8; 4],
    context: &'static str,
    supported_version: u16,
) -> Result<(codec::Reader<'a>, u16), DecodeError> {
    if buf.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(DecodeError::Truncated {
            needed: HEADER_LEN + CHECKSUM_LEN,
            remaining: buf.len(),
        });
    }
    if buf[0..4] != SNAPSHOT_MAGIC || buf[4..8] != kind {
        return Err(DecodeError::BadMagic { context });
    }
    let body_end = buf.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(buf[body_end..].try_into().unwrap());
    if fnv1a64(&buf[..body_end]) != stored {
        return Err(DecodeError::ChecksumMismatch { context });
    }
    let version = u16::from_le_bytes([buf[8], buf[9]]);
    if version == 0 || version > supported_version {
        return Err(DecodeError::UnsupportedVersion {
            context,
            found: version,
            supported: supported_version,
        });
    }
    Ok((codec::Reader::new(&buf[HEADER_LEN..body_end]), version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(version: u16) -> Vec<u8> {
        let mut w = SnapshotWriter::new(*b"TEST", version);
        codec::put_u32(w.buf(), 0xDEAD_BEEF);
        codec::put_bytes(w.buf(), b"payload");
        w.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = demo(3);
        let (mut r, version) = open_snapshot(&bytes, *b"TEST", "test snapshot", 3).unwrap();
        assert_eq!(version, 3);
        assert_eq!(r.try_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.bytes(), b"payload");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn older_versions_still_open() {
        let bytes = demo(2);
        let (_, version) = open_snapshot(&bytes, *b"TEST", "test snapshot", 5).unwrap();
        assert_eq!(version, 2);
    }

    #[test]
    fn newer_versions_are_rejected() {
        let bytes = demo(7);
        let err = open_snapshot(&bytes, *b"TEST", "test snapshot", 3)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnsupportedVersion {
                context: "test snapshot",
                found: 7,
                supported: 3,
            }
        );
    }

    #[test]
    fn wrong_kind_is_bad_magic() {
        let bytes = demo(1);
        assert!(matches!(
            open_snapshot(&bytes, *b"ELSE", "test snapshot", 1),
            Err(DecodeError::BadMagic { .. })
        ));
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        assert!(matches!(
            open_snapshot(&garbled, *b"TEST", "test snapshot", 1),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = demo(1);
        for byte in 10..bytes.len() {
            for bit in 0..8u8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open_snapshot(&bad, *b"TEST", "test snapshot", 1).is_err(),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn truncation_is_caught() {
        let bytes = demo(1);
        for cut in 0..bytes.len() {
            assert!(
                open_snapshot(&bytes[..cut], *b"TEST", "test snapshot", 1).is_err(),
                "cut at {cut} went unnoticed"
            );
        }
    }

    #[test]
    fn fnv_is_stable() {
        // The checksum is part of the on-disk format: pin its value.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
