//! A length-prefixed, checksummed write-ahead commit log.
//!
//! The WAL makes `Db` commits durable: before a successor snapshot is
//! published, the batch of operations that produced it is appended here and
//! (per the caller's sync policy) fsynced. After a crash, recovery loads
//! the last rotated snapshot and replays the log's surviving suffix — see
//! `pv-core`'s `DurableDb` for the commit/recovery protocol and
//! ARCHITECTURE.md §3d for the on-disk format rationale.
//!
//! # On-disk format
//!
//! ```text
//! file   := "PVWL" version:u16 record*
//! record := header body body_fnv:u64
//! header := body_len:u32 kind:u8 pad:[0u8;3] version:u64 header_fnv:u64
//! ```
//!
//! All integers little-endian ([`crate::codec`]); both checksums are
//! [`fnv1a64`]. `header_fnv` covers the 16 bytes
//! before it, `body_fnv` covers the body. `kind` is 1 for a commit record
//! (body = the engine-level operation batch, opaque to this layer) or 2 for
//! an **fsync-point marker** (empty body, version = the commit version the
//! following `fsync` made durable).
//!
//! # Torn tail vs. corruption
//!
//! Appends are strictly sequential, so a crash mid-append always leaves a
//! *prefix* of the record at end-of-file — never valid bytes after garbage.
//! Replay exploits that to classify damage:
//!
//! | observation at offset `o`                         | verdict    |
//! |---------------------------------------------------|------------|
//! | 0 bytes remain                                    | clean end  |
//! | < 24 bytes remain (incomplete header)             | torn tail  |
//! | header checksum valid, body extends past EOF      | torn tail  |
//! | header checksum/kind/pad invalid                  | corruption |
//! | full record present, body checksum mismatch       | corruption |
//! | commit version not strictly increasing            | corruption |
//!
//! A torn tail is the expected signature of a crash: replay truncates it
//! away and reports how much was dropped. Corruption *before* intact
//! records means the log was damaged at rest (bit rot, tampering) — that is
//! never silently skipped; [`WalError::Corrupt`] reports the offset and the
//! last version that survives.

use crate::codec::{self, DecodeError};
use crate::fsio::{Fs, RetryPolicy};
use crate::fnv1a64;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"PVWL";
/// Current WAL format version.
pub const WAL_VERSION: u16 = 1;
/// File-header length: magic + format version.
pub const WAL_HEADER_LEN: u64 = 6;
/// Record-header length: body_len + kind + pad + version + header checksum.
const REC_HEADER_LEN: usize = 24;
/// Trailing body-checksum length.
const REC_TRAILER_LEN: usize = 8;
/// Upper bound on a single record body, enforced both at
/// [`Wal::append_commit`] (typed [`WalError::TooLarge`]) and at replay
/// (anything larger on disk is corruption — the whole object catalog of
/// the largest preset encodes far below this).
pub const MAX_BODY_LEN: u32 = 1 << 30;

const KIND_COMMIT: u8 = 1;
const KIND_SYNC_MARKER: u8 = 2;

/// A write-ahead-log failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file is not a WAL at all (bad magic, unsupported format
    /// version, or shorter than the file header).
    NotALog(DecodeError),
    /// The log is damaged *before* its tail: an intact-length record failed
    /// its checksum, a header is structurally invalid, or versions regress.
    /// Unlike a torn tail this is never repaired automatically.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: u64,
        /// Last commit version that replays intact (0 when none does).
        last_durable_version: u64,
        /// What exactly failed to decode.
        source: DecodeError,
    },
    /// A commit body handed to [`Wal::append_commit`] exceeds
    /// [`MAX_BODY_LEN`]. Appending it would produce a log the next replay
    /// rejects as corrupt (and past `u32::MAX` a wrapped length prefix),
    /// so it is refused before a byte is written.
    TooLarge {
        /// The offending body length.
        len: usize,
        /// The format's per-record limit ([`MAX_BODY_LEN`]).
        max: u32,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O failed: {e}"),
            WalError::NotALog(e) => write!(f, "not a WAL file: {e}"),
            WalError::Corrupt {
                offset,
                last_durable_version,
                ..
            } => write!(
                f,
                "WAL corrupt at byte {offset}; last durable version is {last_durable_version}"
            ),
            WalError::TooLarge { len, max } => write!(
                f,
                "WAL record body of {len} bytes exceeds the {max}-byte format limit"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::NotALog(e) => Some(e),
            WalError::Corrupt { source, .. } => Some(source),
            WalError::TooLarge { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One surviving commit record, yielded by replay in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The commit version this record produced.
    pub version: u64,
    /// The engine-level operation batch (opaque to the WAL).
    pub body: Vec<u8>,
}

/// A crash signature found (and repaired) at the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Offset the incomplete record started at (the log's new length).
    pub offset: u64,
    /// Bytes of incomplete record dropped by the repair truncation.
    pub dropped: u64,
}

/// Everything replay learned from an existing log.
#[derive(Debug)]
pub struct WalReplay {
    /// Surviving commit records in append order.
    pub records: Vec<WalRecord>,
    /// A torn tail, if one was found and truncated away.
    pub torn_tail: Option<TornTail>,
    /// Highest version covered by an fsync-point marker (0 when the log
    /// has none): commits at or below this were acknowledged *and* synced.
    pub synced_version: u64,
}

/// A restore point captured by [`Wal::mark`] before a speculative append,
/// consumed by [`Wal::rollback_to`].
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    len: u64,
    commits: u64,
    last_version: u64,
}

/// An append-only commit log over an injectable [`Fs`].
///
/// One `Wal` instance is owned by the single writer; it tracks the file's
/// logical length so a failed append can be rolled back by truncation
/// (leaving no partial record for the next replay to trip over while the
/// process is still alive).
#[derive(Debug)]
pub struct Wal {
    fs: Arc<dyn Fs>,
    path: PathBuf,
    retry: RetryPolicy,
    /// Logical end of the log: every byte below this is a whole record.
    len: u64,
    /// Commit records appended since creation or the last [`Wal::reset`].
    commits: u64,
    /// Version of the newest commit record in the log (0 when none).
    last_version: u64,
    /// Version covered by the newest fsync-point marker.
    synced_version: u64,
}

fn encode_record(kind: u8, version: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER_LEN + body.len() + REC_TRAILER_LEN);
    codec::put_u32(&mut out, body.len() as u32);
    codec::put_u8(&mut out, kind);
    out.extend_from_slice(&[0, 0, 0]);
    codec::put_u64(&mut out, version);
    let h = fnv1a64(&out[..16]);
    codec::put_u64(&mut out, h);
    out.extend_from_slice(body);
    codec::put_u64(&mut out, fnv1a64(body));
    out
}

impl Wal {
    /// Creates a fresh, empty log at `path` (replacing any existing file)
    /// and makes its header durable.
    pub fn create(fs: Arc<dyn Fs>, path: &Path, retry: RetryPolicy) -> Result<Self, WalError> {
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        codec::put_u16(&mut header, WAL_VERSION);
        fs.write(path, &header)?;
        fs.sync(path)?;
        if let Some(dir) = path.parent() {
            fs.sync_dir(dir)?;
        }
        Ok(Self {
            fs,
            path: path.to_path_buf(),
            retry,
            len: WAL_HEADER_LEN,
            commits: 0,
            last_version: 0,
            synced_version: 0,
        })
    }

    /// Opens an existing log, classifying any damage per the
    /// [module docs](self): a torn tail is truncated away and reported in
    /// the replay, mid-log corruption fails with [`WalError::Corrupt`].
    pub fn open(
        fs: Arc<dyn Fs>,
        path: &Path,
        retry: RetryPolicy,
    ) -> Result<(Self, WalReplay), WalError> {
        let data = fs.read(path)?;
        if data.len() < WAL_HEADER_LEN as usize {
            return Err(WalError::NotALog(DecodeError::Truncated {
                needed: WAL_HEADER_LEN as usize,
                remaining: data.len(),
            }));
        }
        if data[..4] != WAL_MAGIC {
            return Err(WalError::NotALog(DecodeError::BadMagic {
                context: "write-ahead log",
            }));
        }
        let format = u16::from_le_bytes([data[4], data[5]]);
        if format > WAL_VERSION {
            return Err(WalError::NotALog(DecodeError::UnsupportedVersion {
                context: "write-ahead log",
                found: format,
                supported: WAL_VERSION,
            }));
        }

        let mut records = Vec::new();
        let mut synced_version = 0u64;
        let mut last_version = 0u64;
        let mut o = WAL_HEADER_LEN as usize;
        let mut torn_tail = None;
        let corrupt = |o: usize, last: u64, source: DecodeError| WalError::Corrupt {
            offset: o as u64,
            last_durable_version: last,
            source,
        };
        while o < data.len() {
            let rem = data.len() - o;
            if rem < REC_HEADER_LEN {
                torn_tail = Some((o, rem));
                break;
            }
            let header = &data[o..o + REC_HEADER_LEN];
            let stored_h = u64::from_le_bytes(header[16..24].try_into().unwrap());
            if fnv1a64(&header[..16]) != stored_h {
                return Err(corrupt(
                    o,
                    last_version,
                    DecodeError::ChecksumMismatch {
                        context: "WAL record header",
                    },
                ));
            }
            let body_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let kind = header[4];
            if header[5..8] != [0, 0, 0] {
                return Err(corrupt(
                    o,
                    last_version,
                    DecodeError::Invalid {
                        context: "WAL record header padding",
                    },
                ));
            }
            if body_len > MAX_BODY_LEN {
                return Err(corrupt(
                    o,
                    last_version,
                    DecodeError::Invalid {
                        context: "WAL record body length",
                    },
                ));
            }
            let version = u64::from_le_bytes(header[8..16].try_into().unwrap());
            let need = REC_HEADER_LEN + body_len as usize + REC_TRAILER_LEN;
            if rem < need {
                // Valid header, incomplete body: the record was being
                // appended when the crash hit.
                torn_tail = Some((o, rem));
                break;
            }
            let body = &data[o + REC_HEADER_LEN..o + REC_HEADER_LEN + body_len as usize];
            let stored_b = u64::from_le_bytes(
                data[o + need - REC_TRAILER_LEN..o + need]
                    .try_into()
                    .unwrap(),
            );
            if fnv1a64(body) != stored_b {
                return Err(corrupt(
                    o,
                    last_version,
                    DecodeError::ChecksumMismatch {
                        context: "WAL record body",
                    },
                ));
            }
            match kind {
                KIND_COMMIT => {
                    if version <= last_version {
                        return Err(corrupt(
                            o,
                            last_version,
                            DecodeError::Invalid {
                                context: "WAL commit version (not strictly increasing)",
                            },
                        ));
                    }
                    last_version = version;
                    records.push(WalRecord {
                        version,
                        body: body.to_vec(),
                    });
                }
                KIND_SYNC_MARKER => {
                    if body_len != 0 || version < synced_version {
                        return Err(corrupt(
                            o,
                            last_version,
                            DecodeError::Invalid {
                                context: "WAL sync marker",
                            },
                        ));
                    }
                    synced_version = version;
                }
                t => {
                    return Err(corrupt(
                        o,
                        last_version,
                        DecodeError::UnknownTag {
                            context: "WAL record kind",
                            tag: t.into(),
                        },
                    ))
                }
            }
            o += need;
        }

        let torn_tail = match torn_tail {
            Some((at, dropped)) => {
                fs.truncate(path, at as u64)?;
                fs.sync(path)?;
                Some(TornTail {
                    offset: at as u64,
                    dropped: dropped as u64,
                })
            }
            None => None,
        };
        let len = torn_tail.map_or(data.len() as u64, |t| t.offset);
        Ok((
            Self {
                fs,
                path: path.to_path_buf(),
                retry,
                len,
                commits: records.len() as u64,
                last_version,
                synced_version,
            },
            WalReplay {
                records,
                torn_tail,
                synced_version,
            },
        ))
    }

    /// Appends one commit record. `version` must exceed every version
    /// already in the log. On failure the partial append is truncated away
    /// before returning, so the in-memory and on-disk states agree; if even
    /// that truncation fails, the error is returned and the log must be
    /// considered poisoned (reopen to recover).
    pub fn append_commit(&mut self, version: u64, body: &[u8]) -> Result<(), WalError> {
        assert!(
            version > self.last_version,
            "WAL versions must be strictly increasing: {} after {}",
            version,
            self.last_version
        );
        if body.len() > MAX_BODY_LEN as usize {
            return Err(WalError::TooLarge {
                len: body.len(),
                max: MAX_BODY_LEN,
            });
        }
        self.append_record(&encode_record(KIND_COMMIT, version, body))?;
        self.last_version = version;
        self.commits += 1;
        Ok(())
    }

    /// Appends an fsync-point marker for everything in the log and forces
    /// it all to stable storage. After `Ok`, every commit appended so far
    /// is durable ([`Wal::synced_version`] advances to the newest one).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.append_record(&encode_record(KIND_SYNC_MARKER, self.last_version, &[]))?;
        let fs = &self.fs;
        let path = &self.path;
        self.retry.run(|| fs.sync(path))?;
        self.synced_version = self.last_version;
        Ok(())
    }

    /// One retried, self-repairing append: each attempt first restores the
    /// file to the last known-good length (dropping any partial bytes a
    /// previous attempt left), then appends the whole record.
    fn append_record(&mut self, record: &[u8]) -> Result<(), WalError> {
        let fs = &self.fs;
        let path = &self.path;
        let good = self.len;
        let result = self.retry.run(|| {
            let cur = fs.len(path)?;
            if cur != good {
                fs.truncate(path, good)?;
            }
            fs.append(path, record)?;
            Ok(())
        });
        match result {
            Ok(()) => {
                self.len += record.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Best-effort rollback of a partial write. If this fails
                // too, the torn bytes stay until the next append attempt
                // (which re-truncates to `good` first) or until replay
                // repairs the tail after a crash.
                if let Ok(cur) = fs.len(path) {
                    if cur != good {
                        let _ = fs.truncate(path, good);
                    }
                }
                Err(WalError::Io(e))
            }
        }
    }

    /// Captures the log's current logical state as a restore point for
    /// [`Wal::rollback_to`].
    pub fn mark(&self) -> WalMark {
        WalMark {
            len: self.len,
            commits: self.commits,
            last_version: self.last_version,
        }
    }

    /// Rolls the log back to `mark`, discarding every record appended
    /// after it and making the truncation durable — the undo path for a
    /// commit whose fsync (or fsync-marker append) failed after its record
    /// was already fully appended. After `Ok`, no replay can ever see the
    /// discarded records and the version bookkeeping is back at the mark,
    /// so the next commit may reuse the rolled-back version. On `Err` the
    /// discarded bytes may still reach a future replay: the caller must
    /// treat the log as poisoned and refuse further writes.
    pub fn rollback_to(&mut self, mark: WalMark) -> Result<(), WalError> {
        debug_assert!(mark.len <= self.len, "a mark never points past the log");
        let fs = &self.fs;
        let path = &self.path;
        self.retry.run(|| {
            if fs.len(path)? != mark.len {
                fs.truncate(path, mark.len)?;
            }
            // The fsync is what makes the rollback stick: without it a
            // crash could resurrect a complete-on-disk record whose
            // commit was acknowledged as failed.
            fs.sync(path)
        })?;
        self.len = mark.len;
        self.commits = mark.commits;
        self.last_version = mark.last_version;
        Ok(())
    }

    /// Empties the log back to its file header (called after a snapshot
    /// rotation made everything in it redundant). Version bookkeeping is
    /// kept: future appends must still exceed the pre-reset versions.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.fs.truncate(&self.path, WAL_HEADER_LEN)?;
        self.fs.sync(&self.path)?;
        self.len = WAL_HEADER_LEN;
        self.commits = 0;
        self.synced_version = self.last_version;
        Ok(())
    }

    /// Current log length in bytes (file header included).
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// Commit records appended since creation or the last reset.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Version of the newest commit record (0 when the log is empty).
    pub fn last_version(&self) -> u64 {
        self.last_version
    }

    /// Highest version guaranteed durable by an fsync-point marker.
    pub fn synced_version(&self) -> u64 {
        self.synced_version
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsio::StdFs;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pv_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("wal")
    }

    fn fs() -> Arc<dyn Fs> {
        Arc::new(StdFs)
    }

    #[test]
    fn roundtrip_and_sync_markers() {
        let path = tmp("rt");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        wal.append_commit(1, b"first").unwrap();
        wal.append_commit(2, b"second").unwrap();
        wal.sync().unwrap();
        wal.append_commit(3, b"third (unsynced)").unwrap();
        assert_eq!(wal.commits(), 3);
        assert_eq!(wal.synced_version(), 2);

        let (reopened, replay) = Wal::open(fs(), &path, RetryPolicy::none()).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0].body, b"first");
        assert_eq!(replay.records[2].version, 3);
        assert_eq!(replay.synced_version, 2, "marker covers versions 1-2");
        assert!(replay.torn_tail.is_none());
        assert_eq!(reopened.last_version(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let path = tmp("torn");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        wal.append_commit(1, b"kept").unwrap();
        wal.sync().unwrap();
        let good = wal.bytes();
        wal.append_commit(2, b"this record will be cut mid-body")
            .unwrap();
        // Crash simulation: keep the valid header plus part of the body.
        StdFs.truncate(&path, good + 30).unwrap();

        let (reopened, replay) = Wal::open(fs(), &path, RetryPolicy::none()).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].version, 1);
        let tail = replay.torn_tail.expect("tail must be reported");
        assert_eq!(tail.offset, good);
        assert_eq!(tail.dropped, 30);
        assert_eq!(reopened.bytes(), good, "tail truncated away");
        // And the repaired log replays cleanly.
        let (_, replay2) = Wal::open(fs(), &path, RetryPolicy::none()).unwrap();
        assert!(replay2.torn_tail.is_none());
        assert_eq!(replay2.records.len(), 1);
    }

    #[test]
    fn mid_log_bit_flip_is_corruption_not_torn_tail() {
        let path = tmp("flip");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        wal.append_commit(1, b"aaaa").unwrap();
        let second_at = wal.bytes();
        wal.append_commit(2, b"bbbb").unwrap();
        wal.append_commit(3, b"cccc").unwrap();
        // Flip one bit inside record 2's body.
        let mut data = std::fs::read(&path).unwrap();
        let idx = second_at as usize + REC_HEADER_LEN + 1;
        data[idx] ^= 0x10;
        std::fs::write(&path, &data).unwrap();

        match Wal::open(fs(), &path, RetryPolicy::none()) {
            Err(WalError::Corrupt {
                offset,
                last_durable_version,
                source: DecodeError::ChecksumMismatch { .. },
            }) => {
                assert_eq!(offset, second_at);
                assert_eq!(last_durable_version, 1);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn non_wal_files_are_rejected() {
        let path = tmp("notalog");
        StdFs.write(&path, b"PVIXsomething else").unwrap();
        assert!(matches!(
            Wal::open(fs(), &path, RetryPolicy::none()),
            Err(WalError::NotALog(DecodeError::BadMagic { .. }))
        ));
        StdFs.write(&path, b"PV").unwrap();
        assert!(matches!(
            Wal::open(fs(), &path, RetryPolicy::none()),
            Err(WalError::NotALog(DecodeError::Truncated { .. }))
        ));
    }

    #[test]
    fn reset_empties_but_keeps_version_floor() {
        let path = tmp("reset");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        wal.append_commit(1, b"x").unwrap();
        wal.append_commit(2, b"y").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), WAL_HEADER_LEN);
        assert_eq!(wal.commits(), 0);
        wal.append_commit(3, b"z").unwrap();
        let (_, replay) = Wal::open(fs(), &path, RetryPolicy::none()).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].version, 3);
    }

    #[test]
    fn oversized_bodies_are_refused_at_append_time() {
        let path = tmp("toolarge");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        let before = wal.bytes();
        // Zeroed and never touched: the length check fires before any
        // encoding, so the lazy allocation stays cheap.
        let body = vec![0u8; MAX_BODY_LEN as usize + 1];
        match wal.append_commit(1, &body) {
            Err(WalError::TooLarge { len, max }) => {
                assert_eq!(len, MAX_BODY_LEN as usize + 1);
                assert_eq!(max, MAX_BODY_LEN);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(wal.bytes(), before, "nothing was appended");
        assert_eq!(wal.last_version(), 0);
        // The log still works for sane bodies.
        wal.append_commit(1, b"fine").unwrap();
        let (_, replay) = Wal::open(fs(), &path, RetryPolicy::none()).unwrap();
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn rollback_to_discards_appended_records_durably() {
        let path = tmp("rollback");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        wal.append_commit(1, b"kept").unwrap();
        wal.sync().unwrap();
        let mark = wal.mark();
        let before = wal.bytes();
        wal.append_commit(2, b"speculative").unwrap();
        assert!(wal.bytes() > before);

        wal.rollback_to(mark).unwrap();
        assert_eq!(wal.bytes(), before);
        assert_eq!(wal.last_version(), 1);
        assert_eq!(wal.commits(), 1);
        assert_eq!(StdFs.len(&path).unwrap(), before, "truncated on disk");

        // The rolled-back version is reusable, and replay never sees the
        // discarded record.
        wal.append_commit(2, b"retried").unwrap();
        let (_, replay) = Wal::open(fs(), &path, RetryPolicy::none()).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].body, b"retried");
        assert!(replay.torn_tail.is_none());
    }

    #[test]
    fn every_prefix_cut_is_torn_tail_or_shorter_valid_log() {
        // The WAL-level half of the crash-consistency story: cutting the
        // log at *any* byte ≥ the file header yields either a clean shorter
        // log or a reported torn tail — never a corruption verdict and
        // never a record that was not fully appended.
        let path = tmp("prefixes");
        let mut wal = Wal::create(fs(), &path, RetryPolicy::none()).unwrap();
        let mut commit_ends = Vec::new();
        let mut record_ends = vec![wal.bytes()];
        for v in 1..=4u64 {
            wal.append_commit(v, format!("body for version {v}").as_bytes())
                .unwrap();
            commit_ends.push(wal.bytes());
            record_ends.push(wal.bytes());
            wal.sync().unwrap();
            record_ends.push(wal.bytes());
        }
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_HEADER_LEN..=full.len() as u64 {
            StdFs.write(&path, &full[..cut as usize]).unwrap();
            let (_, replay) = Wal::open(fs(), &path, RetryPolicy::none())
                .unwrap_or_else(|e| panic!("cut at {cut}: {e:?}"));
            // Records survive exactly up to the last commit end ≤ cut.
            let expect = commit_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(replay.records.len(), expect, "cut at {cut}");
            assert_eq!(replay.torn_tail.is_some(), !record_ends.contains(&cut));
        }
    }
}
