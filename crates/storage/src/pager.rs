//! The pager: fixed-size pages on a simulated disk.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default page size, matching the paper's 4 KiB disk pages (§VII-A).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used on disk to encode "no page" (e.g. end of a page list).
    pub const NULL: PageId = PageId(u64::MAX);

    /// True if this is the [`PageId::NULL`] sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

/// Monotonic counters describing traffic to the simulated disk.
///
/// All counters are atomic so that read-only query workloads can run from
/// multiple threads; snapshots are taken with [`IoStats::snapshot`].
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the simulated disk.
    pub reads: AtomicU64,
    /// Pages written to the simulated disk.
    pub writes: AtomicU64,
    /// Pages allocated.
    pub allocs: AtomicU64,
    /// Pages freed.
    pub frees: AtomicU64,
}

/// A point-in-time copy of [`IoStats`], supporting deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads at snapshot time.
    pub reads: u64,
    /// Page writes at snapshot time.
    pub writes: u64,
    /// Pages allocated at snapshot time.
    pub allocs: u64,
    /// Pages freed at snapshot time.
    pub frees: u64,
}

impl IoSnapshot {
    /// Component-wise difference (`self - earlier`).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
        }
    }

    /// Total page accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl IoStats {
    /// Takes a consistent-enough snapshot for benchmarking purposes.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

/// Optional synthetic latency charged per page access, to let wall-clock
/// benchmarks reflect a disk-bound regime like the paper's 2013 testbed.
///
/// With [`LatencyModel::None`] (the default) accesses cost only the in-memory
/// copy; experiments then report I/O *counts*, which is what Figs. 9(c)/9(g)
/// plot anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LatencyModel {
    /// No artificial latency.
    #[default]
    None,
    /// Spin for roughly this many nanoseconds per page access.
    PerAccessNanos(u64),
}

impl LatencyModel {
    #[inline]
    fn charge(&self) {
        if let LatencyModel::PerAccessNanos(ns) = *self {
            let start = std::time::Instant::now();
            while (std::time::Instant::now() - start).as_nanos() < ns as u128 {
                std::hint::spin_loop();
            }
        }
    }
}

/// Abstract page store. [`MemPager`] is the only production implementation;
/// the trait exists so tests can interpose failure-injection wrappers.
pub trait Pager {
    /// Page size in bytes; every page has exactly this size.
    fn page_size(&self) -> usize;
    /// Allocates a zeroed page.
    fn alloc(&self) -> PageId;
    /// Reads a full page into a fresh buffer.
    fn read(&self, id: PageId) -> Vec<u8>;
    /// Reads a full page into `buf` (cleared first), reusing its capacity.
    ///
    /// The default forwards to [`Pager::read`]; implementations on the query
    /// hot path ([`MemPager`]) override it to copy without allocating, which
    /// is what makes steady-state batch queries allocation-free.
    fn read_into(&self, id: PageId, buf: &mut Vec<u8>) {
        *buf = self.read(id);
    }
    /// Overwrites a full page. `data.len()` must equal `page_size()`.
    fn write(&self, id: PageId, data: &[u8]);
    /// Releases a page for reuse.
    fn free(&self, id: PageId);
    /// Shared I/O statistics.
    fn stats(&self) -> &IoStats;
}

/// An in-memory simulated disk.
///
/// Cloning a `MemPager` is cheap and yields a handle to the *same* disk
/// (pages and counters are shared), which lets multiple index structures
/// (octree + hash table) live on one "device" as in the paper's setup.
#[derive(Clone)]
pub struct MemPager {
    inner: Arc<PagerInner>,
}

struct PagerInner {
    page_size: usize,
    latency: LatencyModel,
    stats: IoStats,
    state: Mutex<PagerState>,
}

#[derive(Default)]
struct PagerState {
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
}

impl MemPager {
    /// Creates a pager with the given page size and no latency model.
    pub fn new(page_size: usize) -> Self {
        Self::with_latency(page_size, LatencyModel::None)
    }

    /// Creates a pager with the default 4 KiB pages.
    pub fn default_pager() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }

    /// Creates a pager with an explicit latency model.
    pub fn with_latency(page_size: usize, latency: LatencyModel) -> Self {
        assert!(page_size >= 64, "page size unreasonably small");
        Self {
            inner: Arc::new(PagerInner {
                page_size,
                latency,
                stats: IoStats::default(),
                state: Mutex::new(PagerState::default()),
            }),
        }
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        let st = self.inner.state.lock();
        st.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Copies the full disk image — one entry per page slot, `None` for
    /// freed slots — for snapshot serialisation. Charges no I/O (snapshots
    /// are a device-level dump, not page traffic).
    pub fn image(&self) -> Vec<Option<Vec<u8>>> {
        let st = self.inner.state.lock();
        st.pages
            .iter()
            .map(|slot| slot.as_ref().map(|p| p.to_vec()))
            .collect()
    }

    /// Reconstructs a pager from an image captured by [`MemPager::image`].
    /// Page ids are preserved exactly; freed slots rejoin the free list (in
    /// descending order, so the lowest id is recycled first). Counters start
    /// at zero.
    ///
    /// # Panics
    /// If any live page's length differs from `page_size`.
    pub fn from_image(page_size: usize, image: Vec<Option<Vec<u8>>>) -> Self {
        let pager = Self::new(page_size);
        {
            let mut st = pager.inner.state.lock();
            st.free_list = (0..image.len())
                .rev()
                .filter(|&i| image[i].is_none())
                .map(|i| PageId(i as u64))
                .collect();
            st.pages = image
                .into_iter()
                .map(|slot| {
                    slot.map(|p| {
                        assert_eq!(p.len(), page_size, "image page has the wrong size");
                        p.into_boxed_slice()
                    })
                })
                .collect();
        }
        pager
    }

    /// Total bytes currently occupied on the simulated disk.
    pub fn disk_bytes(&self) -> usize {
        self.live_pages() * self.inner.page_size
    }
}

impl Pager for MemPager {
    fn page_size(&self) -> usize {
        self.inner.page_size
    }

    fn alloc(&self) -> PageId {
        self.inner.stats.allocs.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        if let Some(id) = st.free_list.pop() {
            st.pages[id.0 as usize] = Some(vec![0u8; self.inner.page_size].into_boxed_slice());
            return id;
        }
        let id = PageId(st.pages.len() as u64);
        st.pages
            .push(Some(vec![0u8; self.inner.page_size].into_boxed_slice()));
        id
    }

    fn read(&self, id: PageId) -> Vec<u8> {
        self.inner.latency.charge();
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        let st = self.inner.state.lock();
        st.pages
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id:?}"))
            .to_vec()
    }

    fn read_into(&self, id: PageId, buf: &mut Vec<u8>) {
        self.inner.latency.charge();
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        let st = self.inner.state.lock();
        let page = st
            .pages
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id:?}"));
        buf.clear();
        buf.extend_from_slice(page);
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.inner.page_size, "partial page write");
        self.inner.latency.charge();
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        let slot = st
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("write of unallocated page {id:?}"));
        match slot {
            Some(p) => p.copy_from_slice(data),
            None => panic!("write of freed page {id:?}"),
        }
    }

    fn free(&self, id: PageId) {
        self.inner.stats.frees.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        let slot = st
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of unallocated page {id:?}"));
        assert!(slot.is_some(), "double free of page {id:?}");
        *slot = None;
        st.free_list.push(id);
    }

    fn stats(&self) -> &IoStats {
        &self.inner.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let pager = MemPager::new(128);
        let id = pager.alloc();
        let mut buf = vec![0u8; 128];
        buf[0] = 0xAB;
        buf[127] = 0xCD;
        pager.write(id, &buf);
        assert_eq!(pager.read(id), buf);
        let snap = pager.stats().snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.allocs, 1);
    }

    #[test]
    fn freed_pages_are_reused() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.free(a);
        let b = pager.alloc();
        assert_eq!(a, b, "free list should recycle the page id");
        assert_eq!(pager.live_pages(), 1);
    }

    #[test]
    fn fresh_pages_are_zeroed_even_after_reuse() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.write(a, &[0xFFu8; 128]);
        pager.free(a);
        let b = pager.alloc();
        assert!(pager.read(b).iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.free(a);
        pager.free(a);
    }

    #[test]
    #[should_panic(expected = "partial page write")]
    fn short_write_panics() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.write(a, &[0u8; 64]);
    }

    #[test]
    fn clones_share_the_disk() {
        let pager = MemPager::new(128);
        let other = pager.clone();
        let id = pager.alloc();
        let mut buf = vec![0u8; 128];
        buf[5] = 42;
        other.write(id, &buf);
        assert_eq!(pager.read(id)[5], 42);
        assert_eq!(pager.stats().snapshot().writes, 1);
    }

    #[test]
    fn snapshot_delta() {
        let pager = MemPager::new(128);
        let id = pager.alloc();
        pager.write(id, &[0u8; 128]);
        let s0 = pager.stats().snapshot();
        pager.read(id);
        pager.read(id);
        let s1 = pager.stats().snapshot();
        let d = s1.since(&s0);
        assert_eq!(d.reads, 2);
        assert_eq!(d.writes, 0);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn null_page_id() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
    }

    #[test]
    fn image_roundtrip_preserves_pages_and_free_slots() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        let b = pager.alloc();
        let c = pager.alloc();
        pager.write(a, &[1u8; 128]);
        pager.write(c, &[3u8; 128]);
        pager.free(b);
        let restored = MemPager::from_image(128, pager.image());
        assert_eq!(restored.read(a), vec![1u8; 128]);
        assert_eq!(restored.read(c), vec![3u8; 128]);
        assert_eq!(restored.live_pages(), 2);
        // the freed slot is recycled before the array grows
        assert_eq!(restored.alloc(), b);
        assert_eq!(restored.alloc(), PageId(3));
    }
}
