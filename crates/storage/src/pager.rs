//! The pager: fixed-size pages on a simulated disk.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default page size, matching the paper's 4 KiB disk pages (§VII-A).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used on disk to encode "no page" (e.g. end of a page list).
    pub const NULL: PageId = PageId(u64::MAX);

    /// True if this is the [`PageId::NULL`] sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

/// Monotonic counters describing traffic to the simulated disk.
///
/// All counters are atomic so that read-only query workloads can run from
/// multiple threads; snapshots are taken with [`IoStats::snapshot`].
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the simulated disk.
    pub reads: AtomicU64,
    /// Pages written to the simulated disk.
    pub writes: AtomicU64,
    /// Pages allocated.
    pub allocs: AtomicU64,
    /// Pages freed.
    pub frees: AtomicU64,
}

/// A point-in-time copy of [`IoStats`], supporting deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads at snapshot time.
    pub reads: u64,
    /// Page writes at snapshot time.
    pub writes: u64,
    /// Pages allocated at snapshot time.
    pub allocs: u64,
    /// Pages freed at snapshot time.
    pub frees: u64,
}

impl IoSnapshot {
    /// Component-wise difference (`self - earlier`).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
        }
    }

    /// Total page accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl IoStats {
    /// Takes a consistent-enough snapshot for benchmarking purposes.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

/// Optional synthetic latency charged per page access, to let wall-clock
/// benchmarks reflect a disk-bound regime like the paper's 2013 testbed.
///
/// With [`LatencyModel::None`] (the default) accesses cost only the in-memory
/// copy; experiments then report I/O *counts*, which is what Figs. 9(c)/9(g)
/// plot anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LatencyModel {
    /// No artificial latency.
    #[default]
    None,
    /// Spin for roughly this many nanoseconds per page access.
    PerAccessNanos(u64),
}

impl LatencyModel {
    #[inline]
    fn charge(&self) {
        if let LatencyModel::PerAccessNanos(ns) = *self {
            let start = std::time::Instant::now();
            while (std::time::Instant::now() - start).as_nanos() < ns as u128 {
                std::hint::spin_loop();
            }
        }
    }
}

/// Abstract page store. [`MemPager`] is the only production implementation;
/// the trait exists so tests can interpose failure-injection wrappers.
pub trait Pager {
    /// Page size in bytes; every page has exactly this size.
    fn page_size(&self) -> usize;
    /// Allocates a zeroed page.
    fn alloc(&self) -> PageId;
    /// Reads a full page into a fresh buffer.
    fn read(&self, id: PageId) -> Vec<u8>;
    /// Reads a full page into `buf` (cleared first), reusing its capacity.
    ///
    /// The default forwards to [`Pager::read`]; implementations on the query
    /// hot path ([`MemPager`]) override it to copy without allocating, which
    /// is what makes steady-state batch queries allocation-free.
    fn read_into(&self, id: PageId, buf: &mut Vec<u8>) {
        *buf = self.read(id);
    }
    /// Overwrites a full page. `data.len()` must equal `page_size()`.
    fn write(&self, id: PageId, data: &[u8]);
    /// Releases a page for reuse.
    fn free(&self, id: PageId);
    /// Shared I/O statistics.
    fn stats(&self) -> &IoStats;
}

/// An in-memory simulated disk.
///
/// Cloning a `MemPager` is cheap and yields a handle to the *same* disk
/// (pages and counters are shared), which lets multiple index structures
/// (octree + hash table) live on one "device" as in the paper's setup.
///
/// [`MemPager::fork`] instead yields an *independent* disk whose pages are
/// structurally shared with the original: each page is an `Arc<[u8]>`, the
/// fork clones only the page-pointer table, and the first write to a shared
/// page in either handle copies that one page (copy-on-write). This is what
/// makes incremental `Db::commit` cheap — a commit touching k objects copies
/// O(k·log n) pages instead of the whole device.
#[derive(Clone)]
pub struct MemPager {
    inner: Arc<PagerInner>,
}

impl std::fmt::Debug for MemPager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemPager")
            .field("page_size", &self.inner.page_size)
            .finish_non_exhaustive()
    }
}

struct PagerInner {
    page_size: usize,
    latency: LatencyModel,
    stats: IoStats,
    /// Pages physically duplicated because a write hit a page whose bytes
    /// are still shared with a forked pager. See [`MemPager::cow_copies`].
    cow_copies: AtomicU64,
    state: Mutex<PagerState>,
}

#[derive(Default)]
struct PagerState {
    pages: Vec<Option<Arc<[u8]>>>,
    free_list: Vec<PageId>,
}

impl MemPager {
    /// Creates a pager with the given page size and no latency model.
    pub fn new(page_size: usize) -> Self {
        Self::with_latency(page_size, LatencyModel::None)
    }

    /// Creates a pager with the default 4 KiB pages.
    pub fn default_pager() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }

    /// Creates a pager with an explicit latency model.
    pub fn with_latency(page_size: usize, latency: LatencyModel) -> Self {
        assert!(page_size >= 64, "page size unreasonably small");
        Self {
            inner: Arc::new(PagerInner {
                page_size,
                latency,
                stats: IoStats::default(),
                cow_copies: AtomicU64::new(0),
                state: Mutex::new(PagerState::default()),
            }),
        }
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        let st = self.inner.state.lock();
        st.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Forks the disk: the new pager sees exactly the same page contents,
    /// but the two devices evolve independently from here on. Only the
    /// page-pointer table and free list are copied — page *bytes* stay
    /// shared until one side overwrites them (each such overwrite bumps
    /// [`MemPager::cow_copies`] on the writing side).
    ///
    /// The fork starts with zeroed I/O counters and a zeroed copy counter.
    pub fn fork(&self) -> Self {
        let st = self.inner.state.lock();
        Self {
            inner: Arc::new(PagerInner {
                page_size: self.inner.page_size,
                latency: self.inner.latency,
                stats: IoStats::default(),
                cow_copies: AtomicU64::new(0),
                state: Mutex::new(PagerState {
                    pages: st.pages.clone(),
                    free_list: st.free_list.clone(),
                }),
            }),
        }
    }

    /// Pages physically copied by this handle because a write landed on a
    /// page whose bytes were still shared with a fork. Monotonic; starts at
    /// zero on construction and on every [`MemPager::fork`].
    ///
    /// This is the structural-sharing witness used by the COW test harness:
    /// after a fork, `cow_copies()` bounds how much of the device a writer
    /// actually duplicated.
    pub fn cow_copies(&self) -> u64 {
        self.inner.cow_copies.load(Ordering::Relaxed)
    }

    /// Number of live pages whose bytes are still shared with at least one
    /// other pager (fork) or an outstanding snapshot handle.
    pub fn shared_pages(&self) -> usize {
        let st = self.inner.state.lock();
        st.pages
            .iter()
            .filter(|p| p.as_ref().is_some_and(|a| Arc::strong_count(a) > 1))
            .count()
    }

    /// Copies the full disk image — one entry per page slot, `None` for
    /// freed slots — for snapshot serialisation. Charges no I/O (snapshots
    /// are a device-level dump, not page traffic).
    pub fn image(&self) -> Vec<Option<Vec<u8>>> {
        let st = self.inner.state.lock();
        st.pages
            .iter()
            .map(|slot| slot.as_ref().map(|p| p.to_vec()))
            .collect()
    }

    /// Reconstructs a pager from an image captured by [`MemPager::image`].
    /// Page ids are preserved exactly; freed slots rejoin the free list (in
    /// descending order, so the lowest id is recycled first). Counters start
    /// at zero.
    ///
    /// # Panics
    /// If any live page's length differs from `page_size`.
    pub fn from_image(page_size: usize, image: Vec<Option<Vec<u8>>>) -> Self {
        let pager = Self::new(page_size);
        {
            let mut st = pager.inner.state.lock();
            st.free_list = (0..image.len())
                .rev()
                .filter(|&i| image[i].is_none())
                .map(|i| PageId(i as u64))
                .collect();
            st.pages = image
                .into_iter()
                .map(|slot| {
                    slot.map(|p| {
                        assert_eq!(p.len(), page_size, "image page has the wrong size");
                        Arc::from(p.into_boxed_slice())
                    })
                })
                .collect();
        }
        pager
    }

    /// Total bytes currently occupied on the simulated disk.
    pub fn disk_bytes(&self) -> usize {
        self.live_pages() * self.inner.page_size
    }
}

impl Pager for MemPager {
    fn page_size(&self) -> usize {
        self.inner.page_size
    }

    fn alloc(&self) -> PageId {
        self.inner.stats.allocs.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        let zeroed: Arc<[u8]> = vec![0u8; self.inner.page_size].into();
        if let Some(id) = st.free_list.pop() {
            st.pages[id.0 as usize] = Some(zeroed);
            return id;
        }
        let id = PageId(st.pages.len() as u64);
        st.pages.push(Some(zeroed));
        id
    }

    fn read(&self, id: PageId) -> Vec<u8> {
        self.inner.latency.charge();
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        let st = self.inner.state.lock();
        st.pages
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id:?}"))
            .to_vec()
    }

    fn read_into(&self, id: PageId, buf: &mut Vec<u8>) {
        self.inner.latency.charge();
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        let st = self.inner.state.lock();
        let page = st
            .pages
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id:?}"));
        buf.clear();
        buf.extend_from_slice(page);
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.inner.page_size, "partial page write");
        self.inner.latency.charge();
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        let slot = st
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("write of unallocated page {id:?}"));
        match slot {
            // pv-lint: allow(cow-discipline, reason = "this is THE designated dirty-copy helper: MemPager::write owns the get_mut fast path / Arc::from copy slow path that every other page mutation in the workspace must route through")
            Some(p) => match Arc::get_mut(p) {
                // Uniquely owned: overwrite in place.
                Some(bytes) => bytes.copy_from_slice(data),
                // Shared with a fork or snapshot: copy-on-write. The write
                // covers the whole page, so "copying" is materialising a
                // private page from `data`; the shared original stays
                // untouched for every other holder.
                None => {
                    self.inner.cow_copies.fetch_add(1, Ordering::Relaxed);
                    *p = Arc::from(data);
                }
            },
            None => panic!("write of freed page {id:?}"),
        }
    }

    fn free(&self, id: PageId) {
        self.inner.stats.frees.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        let slot = st
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of unallocated page {id:?}"));
        assert!(slot.is_some(), "double free of page {id:?}");
        *slot = None;
        st.free_list.push(id);
    }

    fn stats(&self) -> &IoStats {
        &self.inner.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let pager = MemPager::new(128);
        let id = pager.alloc();
        let mut buf = vec![0u8; 128];
        buf[0] = 0xAB;
        buf[127] = 0xCD;
        pager.write(id, &buf);
        assert_eq!(pager.read(id), buf);
        let snap = pager.stats().snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.allocs, 1);
    }

    #[test]
    fn freed_pages_are_reused() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.free(a);
        let b = pager.alloc();
        assert_eq!(a, b, "free list should recycle the page id");
        assert_eq!(pager.live_pages(), 1);
    }

    #[test]
    fn fresh_pages_are_zeroed_even_after_reuse() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.write(a, &[0xFFu8; 128]);
        pager.free(a);
        let b = pager.alloc();
        assert!(pager.read(b).iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.free(a);
        pager.free(a);
    }

    #[test]
    #[should_panic(expected = "partial page write")]
    fn short_write_panics() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        pager.write(a, &[0u8; 64]);
    }

    #[test]
    fn clones_share_the_disk() {
        let pager = MemPager::new(128);
        let other = pager.clone();
        let id = pager.alloc();
        let mut buf = vec![0u8; 128];
        buf[5] = 42;
        other.write(id, &buf);
        assert_eq!(pager.read(id)[5], 42);
        assert_eq!(pager.stats().snapshot().writes, 1);
    }

    #[test]
    fn snapshot_delta() {
        let pager = MemPager::new(128);
        let id = pager.alloc();
        pager.write(id, &[0u8; 128]);
        let s0 = pager.stats().snapshot();
        pager.read(id);
        pager.read(id);
        let s1 = pager.stats().snapshot();
        let d = s1.since(&s0);
        assert_eq!(d.reads, 2);
        assert_eq!(d.writes, 0);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn null_page_id() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
    }

    #[test]
    fn image_roundtrip_preserves_pages_and_free_slots() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        let b = pager.alloc();
        let c = pager.alloc();
        pager.write(a, &[1u8; 128]);
        pager.write(c, &[3u8; 128]);
        pager.free(b);
        let restored = MemPager::from_image(128, pager.image());
        assert_eq!(restored.read(a), vec![1u8; 128]);
        assert_eq!(restored.read(c), vec![3u8; 128]);
        assert_eq!(restored.live_pages(), 2);
        // the freed slot is recycled before the array grows
        assert_eq!(restored.alloc(), b);
        assert_eq!(restored.alloc(), PageId(3));
    }

    #[test]
    fn fork_sees_the_same_pages_but_diverges_on_write() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        let b = pager.alloc();
        pager.write(a, &[1u8; 128]);
        pager.write(b, &[2u8; 128]);

        let fork = pager.fork();
        assert_eq!(fork.read(a), vec![1u8; 128]);
        assert_eq!(fork.read(b), vec![2u8; 128]);
        assert_eq!(fork.shared_pages(), 2);

        // Writing through the fork leaves the original untouched…
        fork.write(a, &[9u8; 128]);
        assert_eq!(fork.read(a), vec![9u8; 128]);
        assert_eq!(pager.read(a), vec![1u8; 128]);
        // …and through the original leaves the fork untouched.
        pager.write(b, &[7u8; 128]);
        assert_eq!(fork.read(b), vec![2u8; 128]);
    }

    #[test]
    fn cow_copies_counts_only_writes_to_shared_pages() {
        let pager = MemPager::new(128);
        for _ in 0..8 {
            let id = pager.alloc();
            pager.write(id, &[5u8; 128]);
        }
        assert_eq!(pager.cow_copies(), 0, "no fork yet, nothing shared");

        let fork = pager.fork();
        assert_eq!(fork.cow_copies(), 0, "fork starts with a zeroed counter");
        fork.write(PageId(0), &[1u8; 128]);
        fork.write(PageId(1), &[1u8; 128]);
        assert_eq!(fork.cow_copies(), 2);
        // A second write to an already-private page copies nothing.
        fork.write(PageId(0), &[2u8; 128]);
        assert_eq!(fork.cow_copies(), 2);
        // The other 6 pages stay physically shared.
        assert_eq!(fork.shared_pages(), 6);
        assert_eq!(pager.cow_copies(), 0, "the parent never wrote");
    }

    #[test]
    fn fork_alloc_and_free_are_independent() {
        let pager = MemPager::new(128);
        let a = pager.alloc();
        let fork = pager.fork();

        // Freeing in the fork must not free the parent's page.
        fork.free(a);
        assert_eq!(pager.read(a), vec![0u8; 128]);
        assert_eq!(fork.live_pages(), 0);
        assert_eq!(pager.live_pages(), 1);

        // Both sides may now allocate the "same" id in their own space.
        let fa = fork.alloc();
        let pa = pager.alloc();
        fork.write(fa, &[3u8; 128]);
        pager.write(pa, &[4u8; 128]);
        assert_eq!(fork.read(fa), vec![3u8; 128]);
        assert_eq!(pager.read(pa), vec![4u8; 128]);
    }

    #[test]
    fn image_is_identical_across_fork_history() {
        // Canonical serialisation must not depend on sharing: a fork that
        // never wrote produces a byte-identical image.
        let pager = MemPager::new(128);
        for i in 0..5u8 {
            let id = pager.alloc();
            pager.write(id, &[i; 128]);
        }
        pager.free(PageId(2));
        let fork = pager.fork();
        assert_eq!(pager.image(), fork.image());
    }
}
