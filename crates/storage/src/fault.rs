//! Deterministic fault injection for the durability layer.
//!
//! Crash-consistency claims are only as good as the failures they were
//! tested against, and real disks fail in undramatic, hard-to-reproduce
//! ways: a write that persists only its first k bytes, a read interrupted
//! by a signal, a full volume, a flipped bit. This module makes those
//! failures *scriptable*:
//!
//! * a [`FaultPlan`] is an explicit schedule of `(operation index, fault)`
//!   pairs — built by hand for targeted tests, or seeded via
//!   [`FaultPlan::seeded`] for randomized sweeps that replay exactly from
//!   `(seed, op count)`;
//! * [`FaultFs`] wraps any [`Fs`] and fires the plan on the matching
//!   operation (the WAL and snapshot-rotation paths run entirely through
//!   `Fs`, so every durable byte is interceptable);
//! * [`FaultPager`] wraps any [`Pager`] the same way for paged structures.
//!
//! Faults come in two severities. *Transient* faults ([`FaultKind::FailOnce`],
//! [`FaultKind::ShortRead`]) return an [`io::ErrorKind::Interrupted`]-class
//! error exactly once; the [`RetryPolicy`](crate::fsio::RetryPolicy) in the
//! durable path is expected to absorb them. *Persistent* faults
//! ([`FaultKind::TornWrite`], [`FaultKind::NoSpace`], [`FaultKind::BitFlip`])
//! model real damage: a torn write leaves a prefix of the data on disk and
//! fails, a full disk fails without side effects, a bit flip silently
//! corrupts what a read returns.

use crate::fsio::Fs;
use crate::pager::{IoStats, PageId, Pager};
use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A write/append persists only its first `keep` payload bytes, then
    /// fails — the on-disk signature of a crash or power cut mid-write.
    /// Persistent: retrying cannot un-tear it (the wrapped path must roll
    /// back or leave the tail for replay to repair).
    TornWrite {
        /// Payload bytes that reach the file before the failure.
        keep: usize,
    },
    /// A read is interrupted before completing. Transient: the next
    /// attempt succeeds, so a bounded retry absorbs it.
    ShortRead,
    /// The volume is full: the operation fails with no side effects.
    /// Persistent — retrying a full disk in a loop helps nobody.
    NoSpace,
    /// A read returns its data with one bit flipped at payload offset
    /// `byte % len` — silent corruption that only checksums can catch.
    BitFlip {
        /// Byte offset (reduced modulo the payload length) to flip.
        byte: usize,
        /// Bit (0–7) within that byte.
        bit: u8,
    },
    /// The operation fails once with a transient error, then the fault is
    /// spent and the retry succeeds.
    FailOnce,
}

impl FaultKind {
    /// True when a bounded retry is expected to absorb this fault.
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::ShortRead | FaultKind::FailOnce)
    }
}

/// A fault armed to fire at one specific operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Zero-based index (per wrapper) of the operation the fault hits.
    pub op: u64,
    /// What happens to that operation.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// The plan is consumed as operations execute: each scheduled fault fires
/// at most once, at exactly its operation index. Two wrappers built from
/// the same plan over the same operation sequence fail identically — the
/// property the crash-consistency proptests lean on.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan that never fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// An explicit schedule.
    pub fn new(faults: Vec<ScheduledFault>) -> Self {
        Self { faults }
    }

    /// One fault at one operation.
    pub fn single(op: u64, kind: FaultKind) -> Self {
        Self {
            faults: vec![ScheduledFault { op, kind }],
        }
    }

    /// A pseudo-random schedule of `count` faults over the first `ops`
    /// operations, fully determined by `seed`. Uses a splitmix64 stream —
    /// no dependency on the workspace's vendored `rand`, so the storage
    /// crate stays dependency-light and the sequence is stable forever.
    pub fn seeded(seed: u64, ops: u64, count: usize) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64 (public-domain constants)
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let op = if ops == 0 { 0 } else { next() % ops };
            let kind = match next() % 5 {
                0 => FaultKind::TornWrite {
                    keep: (next() % 64) as usize,
                },
                1 => FaultKind::ShortRead,
                2 => FaultKind::NoSpace,
                3 => FaultKind::BitFlip {
                    byte: (next() % 4096) as usize,
                    bit: (next() % 8) as u8,
                },
                _ => FaultKind::FailOnce,
            };
            faults.push(ScheduledFault { op, kind });
        }
        Self { faults }
    }

    /// Removes and returns the fault scheduled for operation `op`, if any.
    fn take(&mut self, op: u64) -> Option<FaultKind> {
        let i = self.faults.iter().position(|f| f.op == op)?;
        Some(self.faults.remove(i).kind)
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: u64,
    fired: Vec<(u64, FaultKind)>,
}

impl FaultState {
    /// Advances the operation counter and arms the matching fault, if any.
    fn next_op(&mut self) -> Option<FaultKind> {
        let op = self.ops;
        self.ops += 1;
        let kind = self.plan.take(op)?;
        self.fired.push((op, kind));
        Some(kind)
    }
}

fn transient_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("injected: {what}"))
}

fn no_space_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::WriteZero,
        "injected: no space left on device",
    )
}

fn flip(mut data: Vec<u8>, byte: usize, bit: u8) -> Vec<u8> {
    if !data.is_empty() {
        let i = byte % data.len();
        data[i] ^= 1 << (bit & 7);
    }
    data
}

/// An [`Fs`] wrapper that fires a [`FaultPlan`] on the matching operations.
///
/// Every trait call counts as one operation (in call order), whether or
/// not a fault is scheduled for it; the shared counter is what makes a
/// plan's "operation 7" well-defined. Faults map onto operations by what
/// they can physically affect — a `TornWrite` scheduled on a read fails
/// it transiently instead, keeping seeded plans meaningful on any
/// operation mix.
#[derive(Debug)]
pub struct FaultFs<F: Fs> {
    inner: F,
    state: Mutex<FaultState>,
}

impl<F: Fs> FaultFs<F> {
    /// Wraps `inner`, arming `plan`.
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: Mutex::new(FaultState {
                plan,
                ops: 0,
                fired: Vec::new(),
            }),
        }
    }

    /// The wrapped filesystem.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// The faults that actually fired, as `(operation index, kind)`.
    pub fn fired(&self) -> Vec<(u64, FaultKind)> {
        self.state.lock().fired.clone()
    }

    /// Replaces the armed plan (the operation counter keeps running).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state.lock().plan = plan;
    }

    fn arm(&self) -> Option<FaultKind> {
        self.state.lock().next_op()
    }
}

impl<F: Fs> Fs for FaultFs<F> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.arm() {
            Some(FaultKind::BitFlip { byte, bit }) => Ok(flip(self.inner.read(path)?, byte, bit)),
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => Err(transient_err("short read")),
            Some(FaultKind::TornWrite { .. } | FaultKind::NoSpace) | None => self.inner.read(path),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<u64> {
        match self.arm() {
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(data.len());
                let at = self.inner.append(path, &data[..keep])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "injected: torn append after {keep} of {} bytes at {at}",
                        data.len()
                    ),
                ))
            }
            Some(FaultKind::NoSpace) => Err(no_space_err()),
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("append interrupted"))
            }
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.append(path, &flip(data.to_vec(), byte, bit))
            }
            None => self.inner.append(path, data),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(data.len());
                self.inner.write(path, &data[..keep])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!("injected: torn write after {keep} of {} bytes", data.len()),
                ))
            }
            Some(FaultKind::NoSpace) => Err(no_space_err()),
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("write interrupted"))
            }
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.write(path, &flip(data.to_vec(), byte, bit))
            }
            None => self.inner.write(path, data),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::NoSpace) => Err(no_space_err()),
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("sync interrupted"))
            }
            _ => self.inner.sync(path),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("dir sync interrupted"))
            }
            _ => self.inner.sync_dir(dir),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::NoSpace) => Err(no_space_err()),
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("rename interrupted"))
            }
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("remove interrupted"))
            }
            _ => self.inner.remove(path),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.arm() {
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("list interrupted"))
            }
            _ => self.inner.list(dir),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("truncate interrupted"))
            }
            _ => self.inner.truncate(path, len),
        }
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        match self.arm() {
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("stat interrupted"))
            }
            _ => self.inner.len(path),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.arm() {
            Some(FaultKind::NoSpace) => Err(no_space_err()),
            Some(FaultKind::ShortRead | FaultKind::FailOnce) => {
                Err(transient_err("mkdir interrupted"))
            }
            _ => self.inner.create_dir_all(dir),
        }
    }
}

/// A [`Pager`] wrapper that fires a [`FaultPlan`] on page reads and writes.
///
/// The [`Pager`] trait is infallible by contract (engines treat page I/O
/// failure as a programming error), so injected faults surface as panics
/// for fail-stop faults and as silent corruption for [`FaultKind::BitFlip`]
/// — which is exactly what the snapshot-decode tests want to prove the
/// checksummed envelope catches. Transient faults are absorbed internally
/// (one retry), mirroring the retry policy a real device driver applies
/// below an infallible block interface.
#[derive(Debug)]
pub struct FaultPager<P: Pager> {
    inner: P,
    state: Mutex<FaultState>,
}

impl<P: Pager> FaultPager<P> {
    /// Wraps `inner`, arming `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: Mutex::new(FaultState {
                plan,
                ops: 0,
                fired: Vec::new(),
            }),
        }
    }

    /// The wrapped pager.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// The faults that actually fired, as `(operation index, kind)`.
    pub fn fired(&self) -> Vec<(u64, FaultKind)> {
        self.state.lock().fired.clone()
    }

    fn arm(&self) -> Option<FaultKind> {
        self.state.lock().next_op()
    }
}

impl<P: Pager> Pager for FaultPager<P> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn alloc(&self) -> PageId {
        match self.arm() {
            Some(FaultKind::NoSpace) => panic!("injected: pager allocation hit a full device"),
            _ => self.inner.alloc(),
        }
    }

    fn read(&self, id: PageId) -> Vec<u8> {
        match self.arm() {
            Some(FaultKind::BitFlip { byte, bit }) => flip(self.inner.read(id), byte, bit),
            // Transient: the device retried below the infallible interface.
            _ => self.inner.read(id),
        }
    }

    fn read_into(&self, id: PageId, out: &mut Vec<u8>) {
        match self.arm() {
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.read_into(id, out);
                if !out.is_empty() {
                    let i = byte % out.len();
                    out[i] ^= 1 << (bit & 7);
                }
            }
            _ => self.inner.read_into(id, out),
        }
    }

    fn write(&self, id: PageId, data: &[u8]) {
        match self.arm() {
            Some(FaultKind::TornWrite { keep }) => {
                // A torn page write: the prefix lands, the rest keeps the
                // page's previous contents.
                let keep = keep.min(data.len());
                let mut page = self.inner.read(id);
                page[..keep].copy_from_slice(&data[..keep]);
                self.inner.write(id, &page);
            }
            Some(FaultKind::NoSpace) => panic!("injected: page write hit a full device"),
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.write(id, &flip(data.to_vec(), byte, bit));
            }
            _ => self.inner.write(id, data),
        }
    }

    fn free(&self, id: PageId) {
        self.arm();
        self.inner.free(id);
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsio::{RetryPolicy, StdFs};
    use crate::pager::MemPager;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pv_fault_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("f")
    }

    #[test]
    fn seeded_plans_replay_identically() {
        let a = FaultPlan::seeded(42, 100, 8);
        let b = FaultPlan::seeded(42, 100, 8);
        assert_eq!(a.faults, b.faults);
        let c = FaultPlan::seeded(43, 100, 8);
        assert_ne!(a.faults, c.faults, "different seeds, different plans");
        assert!(a.faults.iter().all(|f| f.op < 100));
    }

    #[test]
    fn torn_write_leaves_exact_prefix() {
        let p = tmp("torn");
        let fs = FaultFs::new(
            StdFs,
            FaultPlan::single(0, FaultKind::TornWrite { keep: 3 }),
        );
        let err = fs.append(&p, b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(StdFs.read(&p).unwrap(), b"abc");
        assert_eq!(fs.fired().len(), 1);
        // The fault is spent: the next append succeeds.
        fs.append(&p, b"XYZ").unwrap();
        assert_eq!(StdFs.read(&p).unwrap(), b"abcXYZ");
    }

    #[test]
    fn transient_faults_are_absorbed_by_retry() {
        let p = tmp("transient");
        let fs = FaultFs::new(
            StdFs,
            FaultPlan::new(vec![
                ScheduledFault {
                    op: 0,
                    kind: FaultKind::FailOnce,
                },
                ScheduledFault {
                    op: 1,
                    kind: FaultKind::ShortRead,
                },
            ]),
        );
        let retry = RetryPolicy {
            max_retries: 2,
            backoff: std::time::Duration::ZERO,
        };
        retry.run(|| fs.append(&p, b"data")).unwrap();
        assert_eq!(retry.run(|| fs.read(&p)).unwrap(), b"data");
        assert_eq!(fs.fired().len(), 2);
    }

    #[test]
    fn no_space_is_persistent() {
        let p = tmp("enospc");
        let fs = FaultFs::new(StdFs, FaultPlan::single(0, FaultKind::NoSpace));
        let err = RetryPolicy::default()
            .run(|| fs.append(&p, b"data"))
            .unwrap_err();
        assert!(err.to_string().contains("no space"));
        assert_eq!(fs.ops(), 1, "persistent errors are not retried");
    }

    #[test]
    fn bit_flip_corrupts_reads_silently() {
        let p = tmp("flip");
        StdFs.write(&p, &[0u8; 8]).unwrap();
        let fs = FaultFs::new(
            StdFs,
            FaultPlan::single(0, FaultKind::BitFlip { byte: 3, bit: 2 }),
        );
        assert_eq!(fs.read(&p).unwrap()[3], 0b100);
        // Spent: clean on the next read.
        assert_eq!(fs.read(&p).unwrap(), [0u8; 8]);
    }

    #[test]
    fn fault_pager_flips_and_tears_pages() {
        let pager = FaultPager::new(
            MemPager::new(64),
            FaultPlan::new(vec![
                ScheduledFault {
                    op: 2, // first read (after alloc + write)
                    kind: FaultKind::BitFlip { byte: 0, bit: 0 },
                },
                ScheduledFault {
                    op: 3, // second write
                    kind: FaultKind::TornWrite { keep: 2 },
                },
            ]),
        );
        let id = pager.alloc();
        pager.write(id, &[7u8; 64]);
        let flipped = pager.read(id);
        assert_eq!(flipped[0], 6, "bit 0 of byte 0 flipped");
        pager.write(id, &[9u8; 64]);
        let after = pager.read(id);
        assert_eq!(&after[..2], &[9, 9], "torn prefix landed");
        assert_eq!(&after[2..], &[7u8; 62][..], "rest kept old contents");
    }
}
