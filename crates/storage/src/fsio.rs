//! A minimal, injectable filesystem surface for the durability layer.
//!
//! The write-ahead log and snapshot rotation in [`crate::wal`] and
//! `pv-core`'s `DurableDb` never touch `std::fs` directly: every file
//! operation goes through the [`Fs`] trait, so the crash-consistency
//! torture tests can swap in [`crate::fault::FaultFs`] and inject torn
//! writes, short reads, and full disks at *exact, reproducible* points.
//! [`StdFs`] is the production implementation — a thin veneer over
//! `std::fs` whose only policy is "`append` and `truncate` are explicit,
//! durability is explicit" (`sync`/`sync_dir` map to `fsync`).
//!
//! The surface is deliberately path-based rather than handle-based: the
//! durable write path is fsync-bound, so the extra `open(2)` per operation
//! is noise, and path-based operations make fault plans trivially
//! serialisable ("the 7th operation fails").
//!
//! [`RetryPolicy`] implements the bounded retry/backoff loop the WAL uses
//! for faults marked *transient* ([`std::io::ErrorKind::Interrupted`],
//! `WouldBlock`, `TimedOut`): real kernels return these for reasons that
//! resolve on retry, and the fault harness's `FailOnce`/`ShortRead` plans
//! model exactly that.

use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The file operations the durability layer is allowed to perform.
///
/// Implementations must be usable from multiple threads (`Send + Sync`);
/// the `Db` writer path serialises operations itself, but recovery and
/// compaction may run on different threads over the program's lifetime.
pub trait Fs: Send + Sync + std::fmt::Debug {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Appends `data` at the end of `path`, creating the file if missing.
    /// Returns the file length *before* the append, so callers can roll a
    /// failed multi-part append back with [`Fs::truncate`].
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<u64>;

    /// Creates (or truncates) `path` with exactly `data` as its contents.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Forces file contents and metadata to stable storage (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Forces the *directory entry* state (renames, creations, removals in
    /// `dir`) to stable storage. On platforms where directories cannot be
    /// opened for sync this is a no-op.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Lists the plain files directly inside `dir` (no recursion), in
    /// unspecified order.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Truncates (or, never for this layer, extends) `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// The current length of the file at `path` in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;

    /// Creates `dir` (and missing parents).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Fs`]: a direct mapping onto `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl Fs for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<u64> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let at = f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        Ok(at)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new().read(true).open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX way
        // to persist renames, and there a real failure (EACCES, EMFILE,
        // EIO) must surface — swallowing it would silently drop the fsync
        // that makes snapshot rotation durable. Only on platforms where
        // directories cannot be opened at all (Windows) is skipping sound:
        // the filesystem journals the rename itself.
        #[cfg(unix)]
        {
            fs::File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// True when `kind` is an error real filesystems resolve on retry.
///
/// `Interrupted` is the classic (`EINTR`); `WouldBlock` and `TimedOut`
/// appear on network filesystems. Everything else — including a full disk —
/// is treated as persistent: retrying `ENOSPC` in a tight loop helps
/// nobody.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded retry with linear backoff for transient I/O faults.
///
/// `run` re-invokes the operation up to `max_retries` extra times when it
/// fails with a [transient](is_transient) kind, sleeping `backoff × attempt`
/// between tries (`backoff` may be zero — the torture tests use that to
/// keep fault sweeps fast). Persistent errors and exhausted budgets are
/// returned to the caller unchanged.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure.
    pub max_retries: u32,
    /// Base sleep between attempts; attempt `i` (1-based) sleeps `i × backoff`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every error is final).
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Runs `op`, retrying transient failures within the policy's budget.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(e.kind()) && attempt < self.max_retries => {
                    attempt += 1;
                    if !self.backoff.is_zero() {
                        std::thread::sleep(self.backoff * attempt);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pv_fsio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn std_fs_roundtrip_append_truncate() {
        let d = tmp_dir("rt");
        let fs = StdFs;
        let p = d.join("log");
        assert_eq!(fs.append(&p, b"abc").unwrap(), 0);
        assert_eq!(fs.append(&p, b"def").unwrap(), 3);
        assert_eq!(fs.read(&p).unwrap(), b"abcdef");
        assert_eq!(fs.len(&p).unwrap(), 6);
        fs.truncate(&p, 4).unwrap();
        assert_eq!(fs.read(&p).unwrap(), b"abcd");
        fs.sync(&p).unwrap();
        fs.sync_dir(&d).unwrap();
        let q = d.join("log2");
        fs.rename(&p, &q).unwrap();
        assert_eq!(fs.list(&d).unwrap(), vec![q.clone()]);
        fs.remove(&q).unwrap();
        assert!(fs.list(&d).unwrap().is_empty());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn retry_policy_retries_transient_only() {
        let mut calls = 0;
        let r = RetryPolicy {
            max_retries: 2,
            backoff: Duration::ZERO,
        }
        .run(|| -> io::Result<u32> {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 3);

        let mut calls = 0;
        let r = RetryPolicy::default().run(|| -> io::Result<u32> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "persistent errors must not be retried");
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut calls = 0;
        let r = RetryPolicy {
            max_retries: 2,
            backoff: Duration::ZERO,
        }
        .run(|| -> io::Result<u32> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "eintr forever"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 3, "first try + two retries");
    }
}
