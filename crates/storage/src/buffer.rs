//! A small LRU buffer pool over a pager.
//!
//! The paper keeps non-leaf index nodes in a fixed main-memory budget and
//! reads leaf pages straight from disk. The buffer pool is therefore *not*
//! used by the default experiment configuration; it exists for the ablation
//! study ("how much of the PV-index advantage survives a warm cache?") and
//! as a reusable substrate component.

use crate::pager::{IoStats, PageId, Pager};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Hit/miss counters for the pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that had to go to the underlying pager.
    pub misses: u64,
    /// Dirty pages written back on eviction or flush.
    pub writebacks: u64,
}

struct Frame {
    /// Cached page bytes. `Arc`-shared so [`BufferPool::frame`] can hand out
    /// zero-copy views; a later write copy-on-writes the frame rather than
    /// mutating bytes under an outstanding view — the same page discipline
    /// as [`MemPager::fork`](crate::MemPager::fork). When a `BufferPool`
    /// fronts a [`FilePager`](crate::FilePager), this *is* the file pager's
    /// in-memory layer.
    data: Arc<[u8]>,
    dirty: bool,
    /// Logical clock of last use (for LRU eviction).
    last_used: u64,
}

struct PoolState {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    stats: BufferStats,
}

/// A write-back LRU cache in front of a [`Pager`].
///
/// Implements [`Pager`] itself, so any index structure can be run either
/// directly against the simulated disk or through a cache without code
/// changes.
pub struct BufferPool<P: Pager> {
    inner: P,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl<P: Pager> std::fmt::Debug for BufferPool<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<P: Pager> BufferPool<P> {
    /// Wraps `inner` with a cache of `capacity` pages.
    pub fn new(inner: P, capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            inner,
            capacity,
            state: Mutex::new(PoolState {
                frames: HashMap::new(),
                tick: 0,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Cache statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.state.lock().stats
    }

    /// Writes every dirty frame back to the underlying pager.
    pub fn flush(&self) {
        let mut st = self.state.lock();
        let mut writebacks = 0;
        for (id, frame) in st.frames.iter_mut() {
            if frame.dirty {
                self.inner.write(*id, &frame.data);
                frame.dirty = false;
                writebacks += 1;
            }
        }
        st.stats.writebacks += writebacks;
    }

    /// Access to the wrapped pager.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Zero-copy view of a cached page, if resident. The returned `Arc` is a
    /// stable snapshot: a subsequent [`Pager::write`] to the same id
    /// copy-on-writes the frame instead of mutating the shared bytes.
    pub fn frame(&self, id: PageId) -> Option<Arc<[u8]>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.frames.get_mut(&id).map(|f| {
            f.last_used = tick;
            Arc::clone(&f.data)
        })
    }

    fn evict_if_full(&self, st: &mut PoolState) {
        if st.frames.len() < self.capacity {
            return;
        }
        let victim = st
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(id, _)| *id)
            .expect("non-empty cache");
        // pv-lint: allow(io-no-unwrap, reason = "HashMap::remove, not an I/O op; the victim id came from the same map one statement up")
        let frame = st.frames.remove(&victim).expect("victim exists");
        if frame.dirty {
            self.inner.write(victim, &frame.data);
            st.stats.writebacks += 1;
        }
    }
}

impl<P: Pager> Pager for BufferPool<P> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn alloc(&self) -> PageId {
        self.inner.alloc()
    }

    fn read(&self, id: PageId) -> Vec<u8> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(frame) = st.frames.get_mut(&id) {
            frame.last_used = tick;
            let data = frame.data.to_vec();
            st.stats.hits += 1;
            return data;
        }
        st.stats.misses += 1;
        drop(st);
        let data = self.inner.read(id);
        let mut st = self.state.lock();
        self.evict_if_full(&mut st);
        let tick = st.tick;
        st.frames.insert(
            id,
            Frame {
                data: Arc::from(&data[..]),
                dirty: false,
                last_used: tick,
            },
        );
        data
    }

    fn write(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.inner.page_size());
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(frame) = st.frames.get_mut(&id) {
            // pv-lint: allow(cow-discipline, reason = "BufferPool::write is the cache-side designated helper: get_mut overwrites a uniquely-owned frame in place, and an outstanding frame() view forces the Arc::from dirty copy so the view keeps its pinned bytes")
            match Arc::get_mut(&mut frame.data) {
                Some(bytes) => bytes.copy_from_slice(data),
                // A `frame()` view is outstanding: copy-on-write so the
                // view keeps seeing the bytes it pinned.
                None => frame.data = Arc::from(data),
            }
            frame.dirty = true;
            frame.last_used = tick;
            return;
        }
        self.evict_if_full(&mut st);
        st.frames.insert(
            id,
            Frame {
                data: Arc::from(data),
                dirty: true,
                last_used: tick,
            },
        );
    }

    fn free(&self, id: PageId) {
        let mut st = self.state.lock();
        st.frames.remove(&id);
        drop(st);
        self.inner.free(id);
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    #[test]
    fn read_caching() {
        let pool = BufferPool::new(MemPager::new(128), 4);
        let id = pool.alloc();
        pool.write(id, &[9u8; 128]);
        pool.flush();
        let r0 = pool.inner().stats().snapshot().reads;
        pool.read(id);
        pool.read(id);
        pool.read(id);
        // first read may hit cache already (write populated it)
        assert_eq!(pool.inner().stats().snapshot().reads, r0);
        let bs = pool.buffer_stats();
        assert_eq!(bs.hits, 3);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = BufferPool::new(MemPager::new(128), 2);
        let ids: Vec<_> = (0..3).map(|_| pool.alloc()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.write(*id, &[i as u8 + 1; 128]);
        }
        // capacity 2: writing the 3rd page evicted one dirty page
        assert!(pool.buffer_stats().writebacks >= 1);
        pool.flush();
        // all contents must be durable on the inner pager
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.inner().read(*id)[0], i as u8 + 1);
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(MemPager::new(128), 2);
        let a = pool.alloc();
        let b = pool.alloc();
        let c = pool.alloc();
        for id in [a, b, c] {
            pool.write(id, &[1u8; 128]);
        }
        pool.flush();
        // prime cache with a then b (b most recent)
        pool.read(a);
        pool.read(b);
        pool.read(a); // a most recent now
        let misses0 = pool.buffer_stats().misses;
        pool.read(c); // evicts b
        pool.read(a); // hit
        assert_eq!(pool.buffer_stats().misses, misses0 + 1);
        pool.read(b); // miss again
        assert_eq!(pool.buffer_stats().misses, misses0 + 2);
    }

    #[test]
    fn frame_views_are_stable_across_writes() {
        let pool = BufferPool::new(MemPager::new(128), 4);
        let id = pool.alloc();
        pool.write(id, &[1u8; 128]);
        let view = pool.frame(id).expect("frame resident after write");
        assert_eq!(&view[..], &[1u8; 128]);
        // The write copy-on-writes the frame; the pinned view is unchanged.
        pool.write(id, &[2u8; 128]);
        assert_eq!(&view[..], &[1u8; 128]);
        assert_eq!(pool.read(id), vec![2u8; 128]);
        // With the view dropped, writes go back to mutating in place.
        drop(view);
        pool.write(id, &[3u8; 128]);
        assert_eq!(&pool.frame(id).unwrap()[..], &[3u8; 128]);
    }

    #[test]
    fn free_drops_cached_frame() {
        let pool = BufferPool::new(MemPager::new(128), 4);
        let id = pool.alloc();
        pool.write(id, &[5u8; 128]);
        pool.flush();
        pool.free(id);
        let id2 = pool.alloc(); // likely reuses the page
        assert_eq!(id, id2);
        assert!(pool.read(id2).iter().all(|&b| b == 0), "stale frame served");
    }
}
