//! Fault-injection tests: the `Pager` trait allows interposing wrappers, so
//! higher layers can be exercised against a misbehaving "device". These
//! tests verify that the storage primitives keep their bookkeeping exact
//! even when accesses are delayed or spied on.

use pv_storage::{IoStats, MemPager, PageId, PageList, Pager};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pager wrapper that counts per-operation traffic and can inject a panic
/// after a configured number of reads (to emulate a dying device in tests
/// that expect failures).
struct SpyPager {
    inner: MemPager,
    reads_until_failure: AtomicU64,
    ops: AtomicU64,
}

impl SpyPager {
    fn new(inner: MemPager, reads_until_failure: u64) -> Self {
        Self {
            inner,
            reads_until_failure: AtomicU64::new(reads_until_failure),
            ops: AtomicU64::new(0),
        }
    }

    /// Re-arms the failure countdown (e.g. after a healthy build phase).
    fn arm(&self, reads_until_failure: u64) {
        self.reads_until_failure
            .store(reads_until_failure, Ordering::Relaxed);
    }
}

impl Pager for SpyPager {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn alloc(&self) -> PageId {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.inner.alloc()
    }
    fn read(&self, id: PageId) -> Vec<u8> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let left = self.reads_until_failure.fetch_sub(1, Ordering::Relaxed);
        assert!(left != 0, "injected device failure");
        self.inner.read(id)
    }
    fn write(&self, id: PageId, data: &[u8]) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.inner.write(id, data)
    }
    fn free(&self, id: PageId) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.inner.free(id)
    }
    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[test]
fn page_list_works_through_a_wrapper() {
    let spy = SpyPager::new(MemPager::new(256), u64::MAX);
    let mut list = PageList::new();
    for i in 0..50u8 {
        list.append(&spy, &[i; 40]);
    }
    let all = list.read_all(&spy);
    assert_eq!(all.len(), 50);
    assert!(spy.ops.load(Ordering::Relaxed) > 50);
}

#[test]
fn injected_failure_surfaces() {
    // Healthy device during the build phase (appends also read the head
    // page), then arm the failure before the scan.
    let spy = SpyPager::new(MemPager::new(256), u64::MAX);
    let mut list = PageList::new();
    for i in 0..40u8 {
        list.append(&spy, &[i; 60]); // multiple pages
    }
    spy.arm(3);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // reading the multi-page chain needs more than 3 reads
        list.read_all(&spy)
    }));
    assert!(result.is_err(), "the injected failure must propagate");
}

#[test]
fn latency_model_slows_access() {
    use pv_storage::LatencyModel;
    let slow = MemPager::with_latency(256, LatencyModel::PerAccessNanos(200_000));
    let fast = MemPager::new(256);
    let id_slow = slow.alloc();
    let id_fast = fast.alloc();
    let buf = vec![0u8; 256];
    slow.write(id_slow, &buf);
    fast.write(id_fast, &buf);
    let t0 = std::time::Instant::now();
    for _ in 0..20 {
        slow.read(id_slow);
    }
    let slow_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    for _ in 0..20 {
        fast.read(id_fast);
    }
    let fast_time = t0.elapsed();
    assert!(
        slow_time > fast_time * 3,
        "latency model had no effect: slow {slow_time:?} vs fast {fast_time:?}"
    );
    // 20 reads × 200 µs ≈ 4 ms minimum
    assert!(slow_time >= std::time::Duration::from_millis(4));
}

#[test]
fn stats_reset_between_phases() {
    let pager = MemPager::new(256);
    let a = pager.alloc();
    pager.write(a, &vec![1u8; 256]);
    assert!(pager.stats().snapshot().total() > 0);
    pager.stats().reset();
    assert_eq!(pager.stats().snapshot().total(), 0);
    pager.read(a);
    assert_eq!(pager.stats().snapshot().reads, 1);
}
