//! Superblock and free-list recovery: `FilePager::open` must fail *closed* —
//! with the precise [`DecodeError`] variant — on every torn or tampered page
//! file, never reconstruct a plausible-but-wrong allocation map.

use pv_storage::codec::DecodeError;
use pv_storage::fnv1a64;
use pv_storage::{FilePager, PageId, Pager};
use std::io::ErrorKind;
use std::path::PathBuf;

const PAGE: usize = 128;
/// Superblock body length (magic + version + page_size + n_pages +
/// free_head + live) — mirrors the private constant in `filepager.rs`.
const SB_BODY: usize = 8 + 2 + 4 + 8 + 8 + 8;

fn temp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("pv_fp_recovery_{name}_{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Builds a synced page file with three allocated pages and one freed page
/// (id 1), so the free list has exactly one link to walk on reopen.
fn build(path: &PathBuf) {
    let pager = FilePager::create(path, PAGE).unwrap();
    let a = pager.alloc();
    let b = pager.alloc();
    let c = pager.alloc();
    pager.write(a, &[0xAA; PAGE]);
    pager.write(b, &[0xBB; PAGE]);
    pager.write(c, &[0xCC; PAGE]);
    pager.free(b);
    pager.sync().unwrap();
    assert_eq!(pager.live_pages(), 2);
}

/// Asserts the error is `InvalidData` wrapping a typed [`DecodeError`] (the
/// chain the durable layer relies on) and returns the inner variant.
fn decode_err(e: &std::io::Error) -> DecodeError {
    assert_eq!(e.kind(), ErrorKind::InvalidData, "unexpected error: {e}");
    *e.get_ref()
        .and_then(|inner| inner.downcast_ref::<DecodeError>())
        .expect("InvalidData error must carry a typed DecodeError")
}

#[test]
fn truncation_inside_the_superblock_fails_closed() {
    let path = temp("sb_truncated");
    build(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.truncate(10); // not even a full superblock body left
    std::fs::write(&path, &bytes).unwrap();

    let err = FilePager::open(&path).unwrap_err();
    match decode_err(&err) {
        DecodeError::Truncated { remaining, .. } => assert_eq!(remaining, 10),
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncation_that_cuts_a_data_page_fails_closed() {
    let path = temp("page_truncated");
    build(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len(), 4 * PAGE); // superblock + 3 pages
    bytes.truncate(4 * PAGE - 1); // superblock intact, last page torn
    std::fs::write(&path, &bytes).unwrap();

    let err = FilePager::open(&path).unwrap_err();
    assert!(
        matches!(decode_err(&err), DecodeError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flip_in_the_allocation_metadata_fails_closed() {
    let path = temp("sb_bitflip");
    build(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[14] ^= 0x04; // n_pages field: allocation map would be wrong
    std::fs::write(&path, &bytes).unwrap();

    let err = FilePager::open(&path).unwrap_err();
    assert!(
        matches!(decode_err(&err), DecodeError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tampered_live_count_with_fixed_checksum_fails_closed() {
    // A checksum-valid superblock that disagrees with the free-list walk
    // (live count off by one) must still be rejected: the deep structural
    // check catches what the checksum alone cannot.
    let path = temp("live_tampered");
    build(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[30] ^= 0x01; // live count 2 -> 3
    let sum = fnv1a64(&bytes[..SB_BODY]);
    bytes[SB_BODY..SB_BODY + 8].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let err = FilePager::open(&path).unwrap_err();
    assert!(
        matches!(decode_err(&err), DecodeError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cyclic_free_list_fails_closed() {
    // Corrupt the freed page's next pointer to point at itself: the reopen
    // walk must detect the cycle instead of looping forever.
    let path = temp("free_cycle");
    build(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    let freed_off = (1 + 1) * PAGE; // page id 1 is on the free list
    bytes[freed_off..freed_off + 8].copy_from_slice(&1u64.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let err = FilePager::open(&path).unwrap_err();
    assert!(
        matches!(decode_err(&err), DecodeError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn out_of_range_free_list_pointer_fails_closed() {
    let path = temp("free_oob");
    build(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    let freed_off = (1 + 1) * PAGE;
    // NULL is all-ones; flip a low bit so the pointer becomes a huge
    // non-null page id far past n_pages.
    bytes[freed_off] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let err = FilePager::open(&path).unwrap_err();
    assert!(
        matches!(decode_err(&err), DecodeError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn intact_file_recovers_the_exact_allocation_map() {
    let path = temp("intact");
    build(&path);
    let pager = FilePager::open(&path).unwrap();
    assert_eq!(pager.live_pages(), 2);
    assert_eq!(pager.read(PageId(0))[0], 0xAA);
    assert_eq!(pager.read(PageId(2))[0], 0xCC);
    // The freed page is recycled first, proving the free list survived.
    assert_eq!(pager.alloc(), PageId(1));
    drop(pager);
    std::fs::remove_file(&path).unwrap();
}
