//! Property tests for the pv-lint item parser.
//!
//! The parser's contract (see `pv_lint::parser`) mirrors the lexer's:
//! **totality** — `parse` must never panic, whatever bytes it is fed — and
//! **faithful spans** — every item's byte span lies on token boundaries,
//! nested items lie strictly inside their enclosing function, and slicing a
//! top-level `fn` item's span out of the source and re-parsing it
//! reconstructs the same function (same name, same body-ness, same call
//! list). The same three input families as `lexer_roundtrip.rs` are used:
//! raw byte soup, spliced adversarial snippets, and mutated copies of this
//! workspace's own sources.

use proptest::prelude::*;
use pv_lint::parser::{parse, Item};

/// Case count: the in-source default on a normal run, scaled by
/// `PROPTEST_CASES` in the scheduled deep-sweep job (the vendored proptest
/// has no env override of its own, so each suite reads it explicitly).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Core property: parsing `src` is total and every span is structurally
/// sane. Returns the items for follow-on checks.
fn assert_sane(src: &str) -> Result<Vec<Item>, TestCaseError> {
    let items = parse(src);
    let mut last_top_end = 0usize;
    for it in &items {
        let (s, e) = it.span;
        prop_assert!(s < e, "empty span for `{}`", it.name);
        prop_assert!(e <= src.len(), "span past the end for `{}`", it.name);
        prop_assert!(src.is_char_boundary(s) && src.is_char_boundary(e));
        prop_assert!(!it.name.is_empty(), "unnamed item");
        prop_assert!(it.line >= 1);
        for c in &it.calls {
            prop_assert!(c.line >= it.line, "call before its item");
        }
        if it.nested {
            // Nested fns lie inside some earlier item's span.
            prop_assert!(
                items
                    .iter()
                    .any(|outer| outer.span.0 < s && e <= outer.span.1),
                "nested `{}` not inside any enclosing span",
                it.name
            );
        } else {
            // Top-level (and impl-level) fns are disjoint and ordered.
            prop_assert!(
                s >= last_top_end,
                "top-level `{}` overlaps the previous item",
                it.name
            );
            last_top_end = e;
        }
    }
    Ok(items)
}

/// Re-parsing the sliced span of a top-level free `fn` reconstructs it:
/// same name, same body-ness, same callee spellings in order.
fn assert_spans_reconstruct(src: &str, items: &[Item]) -> Result<(), TestCaseError> {
    for it in items.iter().filter(|i| !i.nested && i.qual.is_none()) {
        let slice = &src[it.span.0..it.span.1];
        let again = parse(slice);
        let Some(back) = again.iter().find(|b| !b.nested) else {
            prop_assert!(false, "re-parse of `{}` produced no item", it.name);
            continue;
        };
        prop_assert_eq!(&back.name, &it.name, "name drifted across re-parse");
        prop_assert_eq!(
            back.body.is_some(),
            it.body.is_some(),
            "body-ness drifted for `{}`",
            it.name
        );
        let orig: Vec<_> = it.calls.iter().map(|c| c.callee.clone()).collect();
        let re: Vec<_> = back.calls.iter().map(|c| c.callee.clone()).collect();
        prop_assert_eq!(orig, re, "call list drifted for `{}`", it.name);
    }
    Ok(())
}

/// Rust-ish fragments covering the parser's tricky states: impl/trait
/// headers with generics and `where`, turbofish, nested fns, macros that
/// look like calls, and the lexer's own adversarial literals.
fn snippets() -> Vec<&'static str> {
    vec![
        "fn f() {}",
        "fn g(x: u64) -> u64 { x }",
        "pub fn h<T: Clone>(t: T) where T: Copy { t.clone(); }",
        "impl Foo { fn m(&self) {} }",
        "impl<P: Pager> Bar<P> { fn n(&mut self) -> bool { self.m() } }",
        "impl Trait for Qux { fn p() { helper(); } }",
        "trait Trait { fn q(&self); fn r(&self) { self.q() } }",
        "fn outer() { fn inner() {} inner(); }",
        "fn t() { Vec::<u8>::with_capacity(4); }",
        "fn u() { x.collect::<Vec<_>>(); }",
        "fn mac() { println!(\"{}\", 1); vec![0; 4]; }",
        "fn w() { if x { y() } else { z() } }",
        "fn ret() -> Result<(), E> { Ok(()) }",
        "struct S { f: u64 }",
        "enum E { A, B(u8) }",
        "const C: u64 = 0;",
        "static ST: &str = \"s\";",
        "mod m { fn in_mod() {} }",
        "unsafe fn uns() {}",
        "extern \"C\" fn ext() {}",
        "fn '", // malformed on purpose
        "impl {",
        "fn (",
        "fn",
        "impl",
        "trait",
        "where",
        "{ } }",
        "( ( ",
        "::",
        "->",
        "=>",
        "r#\"raw \"# ",
        "/* unterminated",
        "\"unterminated",
        "// eol\n",
        "🦀",
        "\\",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// Arbitrary byte soup, lossy-decoded: the parser must neither panic
    /// nor emit an out-of-bounds or inverted span.
    #[test]
    fn byte_soup_parses_totally(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_sane(&src)?;
    }

    /// Splices of Rust-ish fragments — malformed headers, unbalanced
    /// braces, unterminated literals — in random order.
    #[test]
    fn snippet_splices_parse_totally(picks in prop::collection::vec(prop::sample::select(snippets()), 0..30)) {
        let src: String = picks.join("\n");
        let items = assert_sane(&src)?;
        assert_spans_reconstruct(&src, &items)?;
    }
}

/// Reads a workspace source file by path relative to `crates/lint`.
fn workspace_source(rel: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Mutation seeds: the trait-heavy query engine, the impl-dense storage
/// pager, and the parser itself.
fn seed_sources() -> Vec<String> {
    vec![
        workspace_source("../core/src/query.rs"),
        workspace_source("../storage/src/pager.rs"),
        workspace_source("src/parser.rs"),
    ]
}

/// Clamps `i` down to the nearest char boundary of `s`.
fn snap(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// Mutated copies of real workspace sources: delete a span, duplicate a
    /// span, splice a malformed fragment. No longer valid Rust — the parser
    /// must stay total with structurally sane spans.
    #[test]
    fn mutated_workspace_sources_parse_totally(
        which in 0usize..3,
        cut_at in 0.0f64..1.0,
        cut_len in 0usize..400,
        dup_at in 0.0f64..1.0,
        dup_len in 0usize..120,
        splice_at in 0.0f64..1.0,
        fragment in prop::sample::select(snippets()),
    ) {
        let seeds = seed_sources();
        let mut src = seeds[which].clone();

        let a = snap(&src, (cut_at * src.len() as f64) as usize);
        let b = snap(&src, a + cut_len);
        src.replace_range(a..b, "");

        let a = snap(&src, (dup_at * src.len() as f64) as usize);
        let b = snap(&src, a + dup_len);
        let dup = src[a..b].to_string();
        src.insert_str(a, &dup);

        let at = snap(&src, (splice_at * src.len() as f64) as usize);
        src.insert_str(at, fragment);

        assert_sane(&src)?;
    }
}

/// The unmutated seeds parse sanely and their free-fn spans reconstruct —
/// the deterministic anchor for the properties above.
#[test]
fn unmutated_workspace_sources_reconstruct() {
    for src in seed_sources() {
        let items = assert_sane(&src).unwrap_or_else(|e| panic!("{e:?}"));
        assert!(!items.is_empty(), "workspace seed parsed to zero items");
        assert_spans_reconstruct(&src, &items).unwrap_or_else(|e| panic!("{e:?}"));
    }
}
