//! Property tests for the pv-lint lexer.
//!
//! The lexer's contract (see `pv_lint::lexer`) is totality and
//! losslessness: `lex` must never panic on any input, and the token texts
//! must concatenate back to the input byte-for-byte. Both properties are
//! exercised on three input families of increasing realism: raw byte soup,
//! spliced Rust-ish snippets engineered to hit every literal/comment edge
//! (raw strings, nested block comments, lifetimes vs chars, prefixed byte
//! literals), and mutated copies of this workspace's own sources.

use proptest::prelude::*;
use pv_lint::lexer::lex;

/// Core property: lexing `src` is lossless and structurally sane.
fn assert_lossless(src: &str) -> Result<(), TestCaseError> {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut pos = 0usize;
    let mut last_line = 1u32;
    for t in &tokens {
        prop_assert_eq!(t.start, pos, "tokens must tile the input with no gaps");
        prop_assert!(t.end > t.start, "empty token at byte {}", t.start);
        prop_assert!(t.end <= src.len());
        prop_assert!(t.line >= last_line, "line numbers must be monotonic");
        last_line = t.line;
        pos = t.end;
        rebuilt.push_str(t.text(src));
    }
    prop_assert_eq!(pos, src.len(), "tokens must cover the whole input");
    prop_assert_eq!(&rebuilt, src);
    Ok(())
}

/// Rust-ish source fragments covering every tricky lexer state.
fn snippets() -> Vec<&'static str> {
    vec![
        "fn ",
        "pub ",
        "let x = ",
        "ident",
        "_u8",
        "r#match",
        "'static",
        "'a>",
        "'x'",
        "'\\''",
        "'\\u{1F600}'",
        "b'q'",
        "b\"bytes\"",
        "br#\"raw bytes\"#",
        "\"str \\\" esc\"",
        "r\"raw\"",
        "r#\"one # deep\"#",
        "r##\"two \"# deep\"##",
        "0",
        "0x1F_u32",
        "0b1010",
        "1.5e-3",
        "1e9",
        "2.",
        "0..10",
        "1..=2",
        "// line comment\n",
        "/* block */",
        "/* nested /* deeper */ still */",
        "/** doc */",
        "//! inner\n",
        "/// outer\n",
        "#[derive(Debug)]",
        "#![allow(dead_code)]",
        "::",
        "->",
        "=>",
        "&mut ",
        "[0]",
        "{ } ",
        "( )",
        ";\n",
        ", ",
        "…",
        "héllo",
        "\t",
        "\r\n",
        "\n\n",
        " ",
        "\\",
        "\"",
        "'",
        "r#\"",
        "/*",
        "*/",
        "#",
        "🦀",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (mostly invalid UTF-8) byte soup, lossy-decoded: the lexer
    /// must neither panic nor drop a byte.
    #[test]
    fn byte_soup_roundtrips(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_lossless(&src)?;
    }

    /// Splices of adversarial Rust fragments — unterminated strings, raw
    /// fences, nested comments, lone quotes — in random order.
    #[test]
    fn snippet_splices_roundtrip(picks in prop::collection::vec(prop::sample::select(snippets()), 0..40)) {
        let src: String = picks.concat();
        assert_lossless(&src)?;
    }
}

/// Reads a workspace source file by path relative to `crates/lint`.
fn workspace_source(rel: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The real sources used as mutation seeds: the gnarliest hot-path file,
/// a storage file with COW waivers, and the lexer itself (whose string
/// literals contain every quote/fence construct it recognises).
fn seed_sources() -> Vec<String> {
    vec![
        workspace_source("../core/src/query.rs"),
        workspace_source("../storage/src/pager.rs"),
        workspace_source("src/lexer.rs"),
    ]
}

/// Clamps `i` down to the nearest char boundary of `s`.
fn snap(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutated copies of real workspace sources: delete a span, duplicate a
    /// span, and splice a pathological fragment at a random position. The
    /// result is no longer valid Rust, but the lexer must stay total and
    /// lossless on it.
    #[test]
    fn mutated_workspace_sources_roundtrip(
        which in 0usize..3,
        cut_at in 0.0f64..1.0,
        cut_len in 0usize..400,
        dup_at in 0.0f64..1.0,
        dup_len in 0usize..120,
        splice_at in 0.0f64..1.0,
        fragment in prop::sample::select(snippets()),
    ) {
        let seeds = seed_sources();
        let mut src = seeds[which].clone();

        // delete a span
        let a = snap(&src, (cut_at * src.len() as f64) as usize);
        let b = snap(&src, a + cut_len);
        src.replace_range(a..b, "");

        // duplicate a span elsewhere
        let a = snap(&src, (dup_at * src.len() as f64) as usize);
        let b = snap(&src, a + dup_len);
        let dup = src[a..b].to_string();
        src.insert_str(a, &dup);

        // splice an adversarial fragment
        let at = snap(&src, (splice_at * src.len() as f64) as usize);
        src.insert_str(at, fragment);

        assert_lossless(&src)?;
    }
}

/// The unmutated workspace seeds round-trip too (a deterministic anchor —
/// if this fails, the property failures above are not noise).
#[test]
fn unmutated_workspace_sources_roundtrip() {
    for src in seed_sources() {
        assert_lossless(&src).unwrap_or_else(|e| panic!("{e:?}"));
    }
}
