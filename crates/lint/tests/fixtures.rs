//! Fixture tests: every pv-lint rule is demonstrated end-to-end.
//!
//! For each rule there is a `tests/fixtures/<rule>_fires.rs` file on which
//! the rule must report violations at known lines, and a
//! `tests/fixtures/<rule>_waived.rs` file on which a reasoned
//! `// pv-lint: allow(...)` waiver (or, for the unsafe rule, a proper
//! `SAFETY` comment) must suppress every finding. A final fixture checks
//! that a waiver *without* a reason suppresses nothing and is itself
//! reported. The fixtures are excluded from the tree-wide scan by the
//! repo-root `lint.toml`, so they stay red on purpose.

use pv_lint::config::Config;
use pv_lint::lint_with_config;
use pv_lint::rules::{check_file, Diagnostic, WAIVER_MISSING_REASON};
use std::path::Path;

/// Runs one rule over a fixture and returns (active, waived).
fn run(fixture: &str, src: &str, rule: &str) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    check_file(fixture, src, &[rule])
}

fn lines(diags: &[Diagnostic]) -> Vec<u32> {
    diags.iter().map(|d| d.line).collect()
}

#[test]
fn hot_path_no_panic_fires() {
    let src = include_str!("fixtures/hot_path_no_panic_fires.rs");
    let (active, waived) = run("hot_path_no_panic_fires.rs", src, "hot-path-no-panic");
    assert_eq!(lines(&active), vec![7, 8, 10, 12], "{active:?}");
    assert!(active.iter().all(|d| d.rule == "hot-path-no-panic"));
    assert!(waived.is_empty());
}

#[test]
fn hot_path_no_panic_waiver_suppresses() {
    let src = include_str!("fixtures/hot_path_no_panic_waived.rs");
    let (active, waived) = run("hot_path_no_panic_waived.rs", src, "hot-path-no-panic");
    assert!(active.is_empty(), "{active:?}");
    // one trailing-waived indexing + four under the fn-scope waiver
    assert_eq!(waived.len(), 5, "{waived:?}");
}

#[test]
fn hot_path_no_alloc_fires() {
    let src = include_str!("fixtures/hot_path_no_alloc_fires.rs");
    let (active, waived) = run("hot_path_no_alloc_fires.rs", src, "hot-path-no-alloc");
    assert_eq!(lines(&active), vec![6, 7, 8, 9], "{active:?}");
    assert!(active.iter().all(|d| d.rule == "hot-path-no-alloc"));
    assert!(waived.is_empty());
}

#[test]
fn hot_path_no_alloc_waiver_suppresses() {
    let src = include_str!("fixtures/hot_path_no_alloc_waived.rs");
    let (active, waived) = run("hot_path_no_alloc_waived.rs", src, "hot-path-no-alloc");
    assert!(active.is_empty(), "{active:?}");
    assert_eq!(waived.len(), 1, "{waived:?}");
}

#[test]
fn unsafe_needs_safety_comment_fires() {
    let src = include_str!("fixtures/unsafe_needs_safety_comment_fires.rs");
    let (active, waived) = run(
        "unsafe_needs_safety_comment_fires.rs",
        src,
        "unsafe-needs-safety-comment",
    );
    assert_eq!(lines(&active), vec![6, 7, 16], "{active:?}");
    assert!(waived.is_empty());
}

#[test]
fn unsafe_needs_safety_comment_satisfied_and_waived() {
    let src = include_str!("fixtures/unsafe_needs_safety_comment_waived.rs");
    let (active, waived) = run(
        "unsafe_needs_safety_comment_waived.rs",
        src,
        "unsafe-needs-safety-comment",
    );
    assert!(active.is_empty(), "{active:?}");
    // the SAFETY-commented fn produces no findings at all; the
    // macro-generated shim produces two, both under its waiver
    assert_eq!(waived.len(), 2, "{waived:?}");
}

#[test]
fn cow_discipline_fires() {
    let src = include_str!("fixtures/cow_discipline_fires.rs");
    let (active, waived) = run("cow_discipline_fires.rs", src, "cow-discipline");
    assert_eq!(lines(&active), vec![8, 9], "{active:?}");
    assert!(waived.is_empty());
}

#[test]
fn cow_discipline_waiver_suppresses() {
    let src = include_str!("fixtures/cow_discipline_waived.rs");
    let (active, waived) = run("cow_discipline_waived.rs", src, "cow-discipline");
    assert!(active.is_empty(), "{active:?}");
    assert_eq!(waived.len(), 1, "{waived:?}");
}

#[test]
fn codec_no_lossy_cast_fires() {
    let src = include_str!("fixtures/codec_no_lossy_cast_fires.rs");
    let (active, waived) = run("codec_no_lossy_cast_fires.rs", src, "codec-no-lossy-cast");
    assert_eq!(lines(&active), vec![7, 8], "{active:?}");
    assert!(waived.is_empty());
}

#[test]
fn codec_no_lossy_cast_waiver_suppresses() {
    let src = include_str!("fixtures/codec_no_lossy_cast_waived.rs");
    let (active, waived) = run("codec_no_lossy_cast_waived.rs", src, "codec-no-lossy-cast");
    assert!(active.is_empty(), "{active:?}");
    assert_eq!(waived.len(), 1, "{waived:?}");
}

#[test]
fn pub_missing_docs_fires() {
    let src = include_str!("fixtures/pub_missing_docs_fires.rs");
    let (active, waived) = run("pub_missing_docs_fires.rs", src, "pub-missing-docs");
    assert_eq!(lines(&active), vec![5, 7, 9, 11], "{active:?}");
    assert!(waived.is_empty());
}

#[test]
fn pub_missing_docs_waiver_suppresses() {
    let src = include_str!("fixtures/pub_missing_docs_waived.rs");
    let (active, waived) = run("pub_missing_docs_waived.rs", src, "pub-missing-docs");
    assert!(active.is_empty(), "{active:?}");
    assert_eq!(waived.len(), 1, "{waived:?}");
}

#[test]
fn io_no_unwrap_fires() {
    let src = include_str!("fixtures/io_no_unwrap_fires.rs");
    let (active, waived) = run("io_no_unwrap_fires.rs", src, "io-no-unwrap");
    assert_eq!(lines(&active), vec![7, 9, 10], "{active:?}");
    assert!(active.iter().all(|d| d.rule == "io-no-unwrap"));
    assert!(waived.is_empty());
}

#[test]
fn io_no_unwrap_waiver_suppresses() {
    let src = include_str!("fixtures/io_no_unwrap_waived.rs");
    let (active, waived) = run("io_no_unwrap_waived.rs", src, "io-no-unwrap");
    assert!(active.is_empty(), "{active:?}");
    // one statement-scoped waiver + one trailing; unwrap_or_else is clean
    assert_eq!(waived.len(), 2, "{waived:?}");
}

#[test]
fn wal_append_paired_fires() {
    let src = include_str!("fixtures/wal_append_paired_fires.rs");
    let (active, waived) = run("wal_append_paired_fires.rs", src, "wal-append-paired");
    // the bare append is missing all four legs; the second fn only drops sync/rollback pairing
    assert_eq!(lines(&active), vec![7, 7, 7, 7, 11], "{active:?}");
    assert!(active.iter().all(|d| d.rule == "wal-append-paired"));
    assert!(
        active.iter().any(|d| d.line == 11 && d.message.contains("dropped")),
        "{active:?}"
    );
    assert!(waived.is_empty());
}

#[test]
fn wal_append_paired_waiver_suppresses() {
    let src = include_str!("fixtures/wal_append_paired_waived.rs");
    let (active, waived) = run("wal_append_paired_waived.rs", src, "wal-append-paired");
    assert!(active.is_empty(), "{active:?}");
    assert_eq!(waived.len(), 4, "{waived:?}");
}

#[test]
fn waiver_without_reason_is_reported_and_suppresses_nothing() {
    let src = include_str!("fixtures/waiver_missing_reason.rs");
    let (active, waived) = run("waiver_missing_reason.rs", src, "hot-path-no-panic");
    assert!(waived.is_empty(), "{waived:?}");
    assert_eq!(active.len(), 2, "{active:?}");
    assert!(active
        .iter()
        .any(|d| d.rule == WAIVER_MISSING_REASON && d.line == 5));
    assert!(active
        .iter()
        .any(|d| d.rule == "hot-path-no-panic" && d.line == 6));
}

/// End-to-end through the config + walker + report layers: point the engine
/// at the fixture directory with every rule enabled everywhere and check
/// the aggregate report (and its JSON form) reflects the corpus.
#[test]
fn full_engine_over_fixture_corpus() {
    let cfg_src = "\
[rule.hot-path-no-panic]
include = [\"**\"]

[rule.hot-path-no-alloc]
include = [\"**\"]

[rule.unsafe-needs-safety-comment]
include = [\"**\"]

[rule.cow-discipline]
include = [\"**\"]

[rule.codec-no-lossy-cast]
include = [\"**\"]

[rule.pub-missing-docs]
include = [\"**\"]

[rule.io-no-unwrap]
include = [\"**\"]

[rule.wal-append-paired]
include = [\"**\"]
";
    let cfg = Config::parse(cfg_src).expect("fixture config parses");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let report = lint_with_config(&root, &cfg).expect("fixture scan succeeds");
    assert_eq!(report.files_scanned, 20);
    assert!(!report.clean());
    // every rule appears among the active diagnostics...
    for rule in [
        "hot-path-no-panic",
        "hot-path-no-alloc",
        "unsafe-needs-safety-comment",
        "cow-discipline",
        "codec-no-lossy-cast",
        "pub-missing-docs",
        "io-no-unwrap",
        "wal-append-paired",
        WAIVER_MISSING_REASON,
    ] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "no active {rule} diagnostic in the corpus"
        );
    }
    // ...and every *_waived.rs fixture contributes suppressed findings.
    assert!(report.waived.len() >= 10, "{:?}", report.waived);
    let json = report.to_json();
    assert!(json.contains("\"version\""));
    assert!(json.contains("waiver-missing-reason"));
}
