//! End-to-end tests of the interprocedural layer (PR 10): entry-point
//! closures carry body-scoped rules across files, honour `exclude`
//! carve-outs and the callee file's waiver comments, and — when asked —
//! flag calls the conservative resolver cannot follow.
//!
//! The fixture triple mirrors the real workspace shape: a clean entry file
//! (`execute_into`, `query_batch_into`, `Wal::sync`) and a callee file
//! holding the planted violations, including the acceptance case from the
//! roadmap — an `unwrap()` planted in `min_dist_sq` must be caught from
//! `execute_into` even though it lives in another file.

use pv_lint::config::Config;
use pv_lint::lint_sources;

const ENTRY: &str = include_str!("fixtures/transitive_entry.rs");
const FIRES: &str = include_str!("fixtures/transitive_callee_fires.rs");
const WAIVED: &str = include_str!("fixtures/transitive_callee_waived.rs");

fn files(callee: &str) -> Vec<(String, String)> {
    vec![
        ("crates/fake/src/entry.rs".to_string(), ENTRY.to_string()),
        ("crates/fake/src/callee.rs".to_string(), callee.to_string()),
    ]
}

fn cfg(toml: &str) -> Config {
    Config::parse(toml).expect("test config parses")
}

#[test]
fn planted_unwrap_in_min_dist_sq_is_caught_across_files() {
    let cfg = cfg("[rule.hot-path-no-panic]\nentry-points = [\"execute_into\"]\n");
    let report = lint_sources(&files(FIRES), &cfg);
    let in_callee: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.file.ends_with("callee.rs") && d.rule == "hot-path-no-panic")
        .collect();
    assert!(
        in_callee
            .iter()
            .any(|d| d.line == 8 && d.message.contains("expect") || d.line == 8),
        "planted unwrap in min_dist_sq not caught: {in_callee:?}"
    );
    assert!(
        in_callee.iter().any(|d| d.line == 9),
        "coords[0] indexing in min_dist_sq not caught: {in_callee:?}"
    );
    // The io helper is NOT reachable from execute_into — closures must not
    // bleed into unreached functions.
    assert!(
        in_callee.iter().all(|d| d.line < 18),
        "flush_meta is outside the execute_into closure: {in_callee:?}"
    );
    // The entry file itself is clean.
    assert!(
        report.diagnostics.iter().all(|d| !d.file.ends_with("entry.rs")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn alloc_closure_reaches_helper_bodies() {
    let cfg = cfg("[rule.hot-path-no-alloc]\nentry-points = [\"*_into\"]\n");
    let report = lint_sources(&files(FIRES), &cfg);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "hot-path-no-alloc"
                && d.file.ends_with("callee.rs")
                && d.line == 13
                && d.message.contains("Vec::new")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn io_closure_follows_wal_methods_across_files() {
    let cfg = cfg("[rule.io-no-unwrap]\nentry-points = [\"Wal::*\"]\n");
    let report = lint_sources(&files(FIRES), &cfg);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "io-no-unwrap"
                && d.file.ends_with("callee.rs")
                && d.line == 19
                && d.message.contains("metadata")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn closure_findings_respect_the_callee_files_waivers() {
    let cfg = cfg(
        "[rule.hot-path-no-panic]\nentry-points = [\"execute_into\"]\n\n\
         [rule.hot-path-no-alloc]\nentry-points = [\"*_into\"]\n\n\
         [rule.io-no-unwrap]\nentry-points = [\"Wal::*\"]\n",
    );
    let report = lint_sources(&files(WAIVED), &cfg);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.waived.len(), 4, "{:?}", report.waived);
}

#[test]
fn excludes_carve_files_out_of_the_closure() {
    let cfg = cfg(
        "[rule.hot-path-no-panic]\nentry-points = [\"execute_into\"]\n\
         exclude = [\"crates/fake/src/callee.rs\"]\n",
    );
    let report = lint_sources(&files(FIRES), &cfg);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn unknown_calls_flag_mode_reports_unresolved_edges() {
    let cfg = cfg(
        "[rule.hot-path-no-panic]\nentry-points = [\"query_batch_into\"]\n\
         unknown-calls = \"flag\"\n",
    );
    let report = lint_sources(&files(FIRES), &cfg);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.file.ends_with("entry.rs")
                && d.line == 13
                && d.message.contains("mystery_helper")),
        "{:?}",
        report.diagnostics
    );
    // The default ("allow") stays silent about the same call.
    let quiet = cfg_allow_report();
    assert!(
        quiet
            .diagnostics
            .iter()
            .all(|d| !d.message.contains("mystery_helper")),
        "{:?}",
        quiet.diagnostics
    );
}

fn cfg_allow_report() -> pv_lint::LintReport {
    let cfg = cfg("[rule.hot-path-no-panic]\nentry-points = [\"query_batch_into\"]\n");
    lint_sources(&files(FIRES), &cfg)
}
