//! Fixture: doc comments and `#[doc]` attributes satisfy the rule; a
//! reasoned waiver suppresses it for deliberately undocumented items.

/// A documented function.
pub fn documented() {}

/// Documented even with an attribute between docs and item.
#[inline]
pub fn documented_with_attr() {}

#[doc = "Documented via the attribute form."]
pub fn documented_by_attr() {}

// pv-lint: allow(pub-missing-docs, reason = "pub only for the criterion harness; not part of the API surface")
pub fn bench_only_hook() {}
