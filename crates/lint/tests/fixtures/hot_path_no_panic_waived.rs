//! Fixture: a reasoned waiver suppresses `hot-path-no-panic`, both in
//! trailing (same-line) and standalone (next-item) position.

pub fn trailing_waiver(dists: &[f64]) -> f64 {
    dists[0] // pv-lint: allow(hot-path-no-panic, reason = "caller guarantees non-empty; see the doc contract")
}

// pv-lint: allow(hot-path-no-panic, reason = "every index below is bounded by the resize on entry")
pub fn fn_scope_waiver(tree: &mut [f64]) {
    tree[0] = tree[1];
    tree[2] = tree[3];
}

pub fn clean(dists: &[f64]) -> f64 {
    dists.iter().copied().fold(0.0, f64::max)
}
