//! Fixture: the safety-comment rule must flag `unsafe` tokens that have
//! no soundness comment on the same line or the three lines above.
//! (This header deliberately avoids the marker word itself, which would
//! otherwise satisfy the proximity check for the first function.)

pub unsafe fn undocumented(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

// SAFETY: a comment too far away to count for the function below.
//
//
//
//
pub fn too_far(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
