//! Fixture: `append_commit` call sites violating the acknowledged⟺logged
//! protocol (wal-append-paired). Excluded from the tree-wide scan by the
//! repo-root `lint.toml`, so it stays red on purpose.
#![allow(dead_code)]

fn bare_append(w: &mut Wal) {
    w.append_commit(1, body);
}

fn dropped_mark(w: &mut Wal, mark: WalMark) -> Result<(), E> {
    w.mark();
    let _off = w.append_commit(1, body)?;
    w.sync()?;
    w.rollback_to(mark)?;
    Ok(())
}
