//! Fixture: entry-point file for the transitive-closure tests. Clean in
//! itself — every violation lives in the callee file, proving the
//! entry-point rules travel across files. Excluded from the tree-wide
//! scan by the repo-root `lint.toml`.
#![allow(dead_code)]

pub fn execute_into(q: &Query, out: &mut Vec<u64>) {
    let d = min_dist_sq(q.rect(), q.point());
    stage_candidates(d, out);
}

pub fn query_batch_into(out: &mut Vec<u64>) {
    mystery_helper(out);
}

impl Wal {
    pub fn sync(&mut self) -> io::Result<()> {
        flush_meta()
    }
}
