//! Fixture: `hot-path-no-panic` must flag `.unwrap()`, `.expect()`, the
//! panic-macro family, and `[]` indexing outside `#[cfg(test)]`.
//! Mirrors the `.expect("worker panicked")` sites fixed in
//! `crates/core/src/query.rs`.

pub fn broken_kernel(dists: &mut Vec<f64>, start: u32) -> f64 {
    let first = dists.first().unwrap(); // line 7: unwrap
    let last = dists.last().expect("non-empty"); // line 8: expect
    if start as usize > dists.len() {
        panic!("start out of range"); // line 10: panic!
    }
    dists[start as usize] // line 12: indexing
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1.0];
        let _ = v[0]; // not flagged: inside #[cfg(test)]
        v.first().unwrap(); // not flagged either
    }
}
