//! Fixture: a reasoned waiver suppresses `hot-path-no-alloc` for a
//! documented cold-path allocation inside a kernel.

pub fn resize_into(out: &mut Vec<f64>, n: usize) {
    if out.capacity() < n {
        // pv-lint: allow(hot-path-no-alloc, reason = "one-time warm-up growth; steady state never re-enters this branch (asserted by tests/alloc_steady_state.rs)")
        let grown = vec![0.0; n];
        *out = grown;
    }
}
