//! The same I/O unwraps as the `_fires` fixture, each either carrying a
//! reasoned waiver or rewritten into the sanctioned panic-at-boundary idiom.

use std::io::Read;

fn load(path: &std::path::Path) -> Vec<u8> {
    // pv-lint: allow(io-no-unwrap, reason = "fixture: the path was created by the same test two lines up")
    let mut f = std::fs::File::open(path).unwrap();
    let mut buf = Vec::new();
    f.read_to_end(&mut buf).unwrap(); // pv-lint: allow(io-no-unwrap, reason = "fixture: sized read")
    buf
}

fn boundary(f: &mut std::fs::File, out: &mut [u8]) {
    // The sanctioned idiom for infallible-by-contract boundaries: the
    // panic carries the underlying error, and no Result is unwrapped.
    f.read_exact(out)
        .unwrap_or_else(|e| panic!("page file read failed: {e}"));
}
