//! Fixture: the same closure-reached callees as `transitive_callee_fires.rs`
//! with every violation under a reasoned waiver — closure findings respect
//! the callee file's own waiver comments.
#![allow(dead_code)]

pub fn min_dist_sq(r: &Rect, p: &Point) -> f64 {
    let first = r.lo.first().unwrap(); // pv-lint: allow(hot-path-no-panic, reason = "corner vectors are non-empty by construction")
    first + p.coords[0] // pv-lint: allow(hot-path-no-panic, reason = "dim >= 1 by construction")
}

pub fn stage_candidates(d: f64, out: &mut Vec<u64>) {
    let mut tmp = Vec::new(); // pv-lint: allow(hot-path-no-alloc, reason = "fixture: demonstrates a reasoned waiver inside a closure-reached body")
    tmp.push(d as u64);
    out.extend(tmp);
}

pub fn flush_meta() -> io::Result<()> {
    std::fs::metadata("wal").unwrap(); // pv-lint: allow(io-no-unwrap, reason = "fixture: metadata of a file this fn just created cannot race")
    Ok(())
}
