//! Fixture: `hot-path-no-alloc` must flag fresh allocations inside
//! `*_into` kernels (the steady-state zero-allocation contract), while
//! leaving non-kernel functions and reused-buffer growth alone.

pub fn qualification_into(out: &mut Vec<f64>, data: &[f64]) {
    let scratch: Vec<f64> = Vec::new(); // line 6: fresh container
    let copy = data.to_vec(); // line 7: per-call allocation
    let rendered = format!("{copy:?}"); // line 8: allocating macro
    let gathered: Vec<f64> = data.iter().copied().collect(); // line 9: collect
    out.push(gathered.len() as f64 + rendered.len() as f64 + scratch.len() as f64);
    out.extend_from_slice(data); // allowed: growth of a reused buffer
}

pub fn build_phase(data: &[f64]) -> Vec<f64> {
    data.to_vec() // allowed: not a `*_into` kernel
}
