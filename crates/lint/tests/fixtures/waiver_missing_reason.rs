//! Fixture: a waiver without a `reason = "..."` suppresses nothing and is
//! itself reported as the unwaivable `waiver-missing-reason` diagnostic.

pub fn lazy_waiver(dists: &[f64]) -> f64 {
    // pv-lint: allow(hot-path-no-panic)
    dists[0]
}
