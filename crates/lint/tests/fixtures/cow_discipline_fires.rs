//! Fixture: `cow-discipline` must flag `Arc::make_mut` and `Arc::get_mut`
//! on page bytes — only the designated dirty-copy helpers (which carry
//! waivers) may touch shared pages in place.

use std::sync::Arc;

pub fn clobber_shared_page(page: &mut Arc<[u8]>, data: &[u8]) {
    Arc::make_mut(page); // line 8: make_mut bypasses the COW discipline
    if let Some(bytes) = Arc::get_mut(page) {
        // line 9 above: get_mut outside a designated helper
        bytes.copy_from_slice(data);
    }
}

pub fn map_get_mut_is_fine(m: &mut std::collections::HashMap<u32, Vec<u8>>) {
    m.get_mut(&0); // not flagged: an ordinary container method, not Arc
}
