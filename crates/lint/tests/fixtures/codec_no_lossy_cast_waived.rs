//! Fixture: a reasoned waiver suppresses `codec-no-lossy-cast` where the
//! narrowing is provably lossless.

pub fn checksum_low_bits(sum: u64) -> u32 {
    // pv-lint: allow(codec-no-lossy-cast, reason = "intentional truncation: the format stores the low 32 bits of the checksum by definition")
    (sum & 0xFFFF_FFFF) as u32
}
