//! Fixture: an adjacent `SAFETY` comment satisfies the rule without any
//! waiver; a reasoned waiver also suppresses it (e.g. for generated code).

// SAFETY: `ptr` is non-null and aligned by the caller's contract.
pub unsafe fn documented(ptr: *const u8) -> u8 {
    // SAFETY: forwarded contract — see the function-level comment.
    unsafe { *ptr }
}

// pv-lint: allow(unsafe-needs-safety-comment, reason = "macro-generated shim; the soundness argument lives at the macro definition")
pub unsafe fn generated_shim(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
