//! Fixture: the reference commit shape (clean) plus a deliberately bare
//! `append_commit` under a reasoned waiver (wal-append-paired).
#![allow(dead_code)]

fn commit(w: &mut Wal) -> Result<u64, E> {
    let mark = w.mark();
    let off = w.append_commit(1, body)?;
    if policy.should_sync() {
        w.sync()?;
    }
    if validation_failed {
        if w.rollback_to(mark).is_err() {
            poison();
        }
    }
    Ok(off)
}

fn replay_shim(w: &mut Wal) {
    // pv-lint: allow(wal-append-paired, reason = "replay re-appends records acknowledged before the crash; their pairing happened in the original commit")
    w.append_commit(1, body);
}
