//! Deliberately violates `io-no-unwrap`: `.unwrap()` / `.expect()` on
//! io::Result values in non-test code.

use std::io::Read;

fn load(path: &std::path::Path) -> Vec<u8> {
    let mut f = std::fs::File::open(path).unwrap();
    let mut buf = Vec::new();
    f.read_to_end(&mut buf).expect("short read");
    f.sync_all().unwrap();
    buf
}

fn not_io(data: &[u8]) -> u64 {
    // Slice conversions are infallible by bounds, not I/O; must not fire.
    u64::from_le_bytes(data[..8].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _ = std::fs::read("x").unwrap();
    }
}
