//! Fixture: the designated dirty-copy helper carries a reasoned waiver,
//! exactly like `MemPager::write` and `BufferPool::write` in pv-storage.

use std::sync::Arc;

pub fn write(page: &mut Arc<[u8]>, data: &[u8]) {
    // pv-lint: allow(cow-discipline, reason = "this is the designated dirty-copy helper: get_mut overwrites a uniquely-owned page in place, and an outstanding reader forces the Arc::from copy")
    match Arc::get_mut(page) {
        Some(bytes) => bytes.copy_from_slice(data),
        None => *page = Arc::from(data),
    }
}
