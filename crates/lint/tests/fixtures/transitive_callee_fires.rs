//! Fixture: hot-path callees with planted violations, reached only through
//! the call-graph closure from `transitive_entry.rs` — the cross-file proof
//! that `hot-path-no-panic`, `hot-path-no-alloc`, and `io-no-unwrap`
//! follow entry points into other files. Excluded from the tree-wide scan.
#![allow(dead_code)]

pub fn min_dist_sq(r: &Rect, p: &Point) -> f64 {
    let first = r.lo.first().unwrap();
    first + p.coords[0]
}

pub fn stage_candidates(d: f64, out: &mut Vec<u64>) {
    let mut tmp = Vec::new();
    tmp.push(d as u64);
    out.extend(tmp);
}

pub fn flush_meta() -> io::Result<()> {
    std::fs::metadata("wal").unwrap();
    Ok(())
}
