//! Fixture: `codec-no-lossy-cast` must flag bare `as` casts to sub-64-bit
//! numeric types (they silently truncate on-disk values) while allowing
//! widening casts. Mirrors the `len() as u32` sites fixed in
//! `crates/core/src/snapshot.rs`.

pub fn encode_header(out: &mut Vec<u8>, dim: usize, pages: usize) {
    let d = dim as u16; // line 7: usize -> u16 can truncate
    let p = pages as u32; // line 8: usize -> u32 can truncate
    out.extend_from_slice(&d.to_le_bytes());
    out.extend_from_slice(&p.to_le_bytes());
}

pub fn widening_is_fine(tag: u16, n: u32) -> (u64, usize) {
    (u64::from(tag), n as usize) // not flagged: widening / as usize
}
