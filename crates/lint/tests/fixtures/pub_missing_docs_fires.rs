//! Fixture: `pub-missing-docs` must flag undocumented `pub` items while
//! skipping `pub(crate)`, `pub use`, struct fields, and out-of-line
//! `pub mod x;` (documented by `//!` in their own file).

pub fn undocumented_fn() {} // line 5

pub struct UndocumentedStruct; // line 7

pub const UNDOCUMENTED_CONST: u32 = 7; // line 9

pub const fn undocumented_const_fn() {} // line 11

pub(crate) fn crate_internal() {} // not flagged: restricted visibility

/// Documented — fields are rustc's job, not this rule's.
pub struct Documented {
    pub field: u32, // not flagged
}
