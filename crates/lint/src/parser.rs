//! A lightweight item parser on top of the lossless lexer.
//!
//! The interprocedural rules need just enough syntactic structure to build
//! a call graph: which `fn` items exist (free functions, inherent/trait
//! methods, trait declarations with default bodies), and which calls each
//! body makes. Like the lexer underneath it, this parser is **total**: it
//! never panics on any input, and malformed source degrades to fewer (or
//! no) items rather than an error. Its other contract, enforced by the
//! proptest suite in `tests/parser_roundtrip.rs`, is **exact spans**: every
//! item's byte span lies on token boundaries, nested items lie strictly
//! inside their parent, and the spans of top-level items plus the gaps
//! between them reconstruct the file byte-for-byte.
//!
//! What it deliberately does *not* do: type inference, import resolution,
//! macro expansion. Call sites are recorded *syntactically* — a plain call
//! `foo(…)`, a method call `.foo(…)`, a qualified call `Qual::foo(…)`, a
//! macro invocation `foo!(…)` — and the [`crate::graph`] layer resolves
//! them by name, conservatively routing anything it cannot resolve to an
//! "unknown" node.

use crate::lexer::{lex, Token, TokenKind};
use std::ops::Range;

/// How a call site is spelled at the call position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(…)` — a path-less call.
    Free(String),
    /// `.foo(…)` — a method call on some receiver.
    Method(String),
    /// `Qual::foo(…)` — the last two path segments of a qualified call
    /// (`a::b::Qual::foo` records `("Qual", "foo")`; `Self::foo` records
    /// the literal `"Self"` for the graph layer to substitute).
    Qualified(String, String),
    /// `foo!(…)` / `foo![…]` / `foo!{…}` — a macro invocation.
    Macro(String),
}

impl Callee {
    /// The called name, whatever the spelling.
    pub fn name(&self) -> &str {
        match self {
            Callee::Free(n) | Callee::Method(n) | Callee::Macro(n) => n,
            Callee::Qualified(_, n) => n,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// What is called, and how it is spelled.
    pub callee: Callee,
    /// 1-based line of the called name.
    pub line: u32,
    /// Index of the name token in the file's significant-token stream.
    pub sig_index: usize,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The function's bare name.
    pub name: String,
    /// The `Self` type for methods: the last path segment of the impl'd
    /// type (`impl Pager for BufferPool<P>` → `BufferPool`), or the trait
    /// name for methods declared inside `trait … { }`. `None` for free
    /// functions.
    pub qual: Option<String>,
    /// For `impl Trait for Type` methods, the trait's last path segment —
    /// so `Trait::method` entry points and qualified calls resolve too.
    pub trait_qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Byte span: from the `fn` keyword to one past the closing `}` (or
    /// the `;` of a bodyless declaration).
    pub span: (usize, usize),
    /// Significant-token index range of the body interior (between the
    /// braces, exclusive), `None` for bodyless trait declarations.
    pub body: Option<Range<usize>>,
    /// Call sites inside this function's body, excluding those belonging
    /// to functions nested within it.
    pub calls: Vec<CallSite>,
    /// True when the item is defined inside another function's body.
    pub nested: bool,
}

/// Parses `src` standalone (lexes internally). Convenience for tests; the
/// engine uses [`parse_items`] over an existing significant-token stream.
pub fn parse(src: &str) -> Vec<Item> {
    let tokens = lex(src);
    let sig: Vec<Token> = tokens.into_iter().filter(|t| !t.is_trivia()).collect();
    parse_items(src, &sig)
}

/// Keywords that can look like `name(` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "as", "in", "move", "ref",
    "unsafe", "where", "impl", "dyn", "box", "await", "else", "use", "pub", "mod", "struct",
    "enum", "union", "trait", "type", "const", "static", "crate", "super", "break", "continue",
    "yield", "async", "extern", "Fn", "FnMut", "FnOnce",
];

#[derive(Debug)]
enum ScopeKind {
    /// `impl [Trait for] Type { … }`.
    Impl {
        self_ty: Option<String>,
        trait_name: Option<String>,
    },
    /// `trait Name { … }`.
    Trait { name: String },
    /// A function body; `item` indexes the output vector.
    Fn { item: usize },
}

struct Scope {
    kind: ScopeKind,
    /// Significant-token index of the matching `}` (exclusive coverage).
    close: usize,
}

/// Parses the `fn` items (and their call sites) out of a significant-token
/// stream. Total: any input yields a (possibly empty) item list.
pub fn parse_items(src: &str, sig: &[Token]) -> Vec<Item> {
    Parser {
        src,
        sig,
        brace_match: match_braces(src, sig),
        scopes: Vec::new(),
        items: Vec::new(),
    }
    .run()
}

struct Parser<'a> {
    src: &'a str,
    sig: &'a [Token],
    brace_match: Vec<Option<usize>>,
    scopes: Vec<Scope>,
    items: Vec<Item>,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.sig[i].text(self.src)
    }

    fn is_punct(&self, i: usize, c: &str) -> bool {
        i < self.sig.len() && self.sig[i].kind == TokenKind::Punct && self.text(i) == c
    }

    fn is_ident(&self, i: usize) -> bool {
        i < self.sig.len() && self.sig[i].kind == TokenKind::Ident
    }

    /// `::` is two `:` punct tokens; true when `i` is the *second* of them.
    fn is_path_sep_end(&self, i: usize) -> bool {
        i >= 1 && self.is_punct(i, ":") && self.is_punct(i - 1, ":")
    }

    fn run(mut self) -> Vec<Item> {
        let mut i = 0usize;
        while i < self.sig.len() {
            // Retire scopes whose closing brace is behind us.
            while self
                .scopes
                .last()
                .is_some_and(|s| s.close < i || self.is_at(i, s.close))
            {
                self.scopes.pop();
            }
            if self.is_ident(i) {
                match self.text(i) {
                    "impl" => {
                        i = self.enter_impl(i);
                        continue;
                    }
                    "trait" => {
                        i = self.enter_trait(i);
                        continue;
                    }
                    "fn" => {
                        i = self.enter_fn(i);
                        continue;
                    }
                    _ => self.maybe_call(i),
                }
            }
            i += 1;
        }
        self.items
    }

    fn is_at(&self, i: usize, close: usize) -> bool {
        // A scope closes *at* its `}`: token `close` itself is outside.
        i == close
    }

    /// Innermost enclosing fn item index, if any.
    fn enclosing_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn { item } => Some(item),
            _ => None,
        })
    }

    /// Innermost enclosing impl/trait qualifier.
    fn enclosing_qual(&self) -> (Option<String>, Option<String>) {
        for s in self.scopes.iter().rev() {
            match &s.kind {
                ScopeKind::Impl {
                    self_ty,
                    trait_name,
                } => return (self_ty.clone(), trait_name.clone()),
                ScopeKind::Trait { name } => return (Some(name.clone()), None),
                ScopeKind::Fn { .. } => return (None, None), // fns nested in fns are free
            }
        }
        (None, None)
    }

    /// At an `impl` keyword: parse the header (`impl<G> [Trait for] Type
    /// [where …] {`), push an Impl scope, return the index after the `{`.
    fn enter_impl(&mut self, kw: usize) -> usize {
        let mut j = kw + 1;
        // Skip the generic parameter list, if any.
        if self.is_punct(j, "<") {
            j = self.skip_angles(j);
        }
        // Scan the header up to the body `{` (or `;`/end on malformed
        // input), remembering the last angle-depth-0 path ident seen before
        // `for` and after it. Stop honouring idents once `where` appears.
        let mut before_for: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut in_where = false;
        let mut angle = 0i32;
        while j < self.sig.len() {
            if self.is_punct(j, "{") && angle <= 0 {
                let close = self.brace_match[j].unwrap_or(self.sig.len());
                let (self_ty, trait_name) = if saw_for {
                    (after_for, before_for)
                } else {
                    (before_for, None)
                };
                self.scopes.push(Scope {
                    kind: ScopeKind::Impl {
                        self_ty,
                        trait_name,
                    },
                    close,
                });
                return j + 1;
            }
            if self.is_punct(j, ";") && angle <= 0 {
                return j + 1; // `impl Foo;` — malformed, skip
            }
            if self.is_punct(j, "<") {
                angle += 1;
            } else if self.is_punct(j, ">") {
                angle -= 1;
            } else if angle <= 0 && self.is_ident(j) {
                match self.text(j) {
                    "for" => saw_for = true,
                    "where" => in_where = true,
                    "dyn" | "mut" | "const" | "unsafe" | "async" => {}
                    name if !in_where => {
                        if saw_for {
                            after_for = Some(name.to_string());
                        } else {
                            before_for = Some(name.to_string());
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        j
    }

    /// At a `trait` keyword: push a Trait scope over its body.
    fn enter_trait(&mut self, kw: usize) -> usize {
        let name = if self.is_ident(kw + 1) {
            self.text(kw + 1).to_string()
        } else {
            return kw + 1;
        };
        let mut j = kw + 2;
        let mut angle = 0i32;
        while j < self.sig.len() {
            if self.is_punct(j, "<") {
                angle += 1;
            } else if self.is_punct(j, ">") {
                angle -= 1;
            } else if angle <= 0 && self.is_punct(j, "{") {
                let close = self.brace_match[j].unwrap_or(self.sig.len());
                self.scopes
                    .push(Scope { kind: ScopeKind::Trait { name }, close });
                return j + 1;
            } else if angle <= 0 && self.is_punct(j, ";") {
                return j + 1; // associated-type-like or malformed
            }
            j += 1;
        }
        j
    }

    /// At a `fn` keyword: record the item, push a Fn scope over its body,
    /// return the index to continue from (inside the body, so nested items
    /// and call sites are seen).
    fn enter_fn(&mut self, kw: usize) -> usize {
        if !self.is_ident(kw + 1) {
            return kw + 1; // `fn` in `Fn()` position or malformed
        }
        let name = self.text(kw + 1).to_string();
        let nested = self.enclosing_fn().is_some();
        let (qual, trait_qual) = if nested {
            (None, None)
        } else {
            self.enclosing_qual()
        };
        // Find the body `{` (or the `;` of a bodyless declaration) at
        // paren/bracket/angle depth 0.
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut j = kw + 2;
        while j < self.sig.len() {
            if self.is_punct(j, "(") || self.is_punct(j, "[") {
                depth += 1;
            } else if self.is_punct(j, ")") || self.is_punct(j, "]") {
                depth -= 1;
            } else if self.is_punct(j, "<") {
                angle += 1;
            } else if self.is_punct(j, ">") {
                // `->` must not close an angle bracket.
                if !(j >= 1 && self.is_punct(j - 1, "-")) {
                    angle -= 1;
                }
            } else if depth <= 0 && angle <= 0 && self.is_punct(j, ";") {
                self.items.push(Item {
                    name,
                    qual,
                    trait_qual,
                    line: self.sig[kw].line,
                    span: (self.sig[kw].start, self.sig[j].end),
                    body: None,
                    calls: Vec::new(),
                    nested,
                });
                return j + 1;
            } else if depth <= 0 && self.is_punct(j, "{") {
                let close = self.brace_match[j].unwrap_or(self.sig.len());
                let end = if close < self.sig.len() {
                    self.sig[close].end
                } else {
                    self.src.len()
                };
                let item = self.items.len();
                self.items.push(Item {
                    name,
                    qual,
                    trait_qual,
                    line: self.sig[kw].line,
                    span: (self.sig[kw].start, end),
                    body: Some(j + 1..close),
                    calls: Vec::new(),
                    nested,
                });
                self.scopes.push(Scope {
                    kind: ScopeKind::Fn { item },
                    close,
                });
                return j + 1;
            }
            j += 1;
        }
        // Unterminated header: treat the rest of the file as no item.
        j
    }

    /// At an identifier inside (possibly) a fn body: record a call site on
    /// the innermost enclosing fn, if this ident is call-shaped.
    fn maybe_call(&mut self, i: usize) {
        let Some(item) = self.enclosing_fn() else {
            return;
        };
        let name = self.text(i);
        let callee = if self.is_punct(i + 1, "!")
            && (self.is_punct(i + 2, "(") || self.is_punct(i + 2, "[") || self.is_punct(i + 2, "{"))
        {
            Callee::Macro(name.to_string())
        } else if self.is_punct(i + 1, "(") || self.turbofish_call(i) {
            if NON_CALL_KEYWORDS.contains(&name) {
                return;
            }
            if i >= 1 && self.is_punct(i - 1, ".") {
                Callee::Method(name.to_string())
            } else if self.is_path_sep_end(i - 1) {
                match self.qualifier_before(i - 1) {
                    Some(q) => Callee::Qualified(q, name.to_string()),
                    None => Callee::Free(name.to_string()),
                }
            } else {
                Callee::Free(name.to_string())
            }
        } else {
            return;
        };
        self.items[item].calls.push(CallSite {
            callee,
            line: self.sig[i].line,
            sig_index: i,
        });
    }

    /// True for `name::<T>(…)` — a call through a turbofish.
    fn turbofish_call(&self, i: usize) -> bool {
        if !(self.is_punct(i + 1, ":") && self.is_punct(i + 2, ":") && self.is_punct(i + 3, "<")) {
            return false;
        }
        // Walk the `<…>` forward (bounded) and require a `(` after it.
        let mut depth = 0i32;
        let mut j = i + 3;
        while j < self.sig.len() && j < i + 64 {
            if self.is_punct(j, "<") {
                depth += 1;
            } else if self.is_punct(j, ">") {
                depth -= 1;
                if depth == 0 {
                    return self.is_punct(j + 1, "(");
                }
            }
            j += 1;
        }
        false
    }

    /// The path segment immediately before the `::` ending at `sep_end`
    /// (the second `:`): for `a::b::Qual::name(`, returns `Qual`. Steps
    /// back over one `<…>` generic-argument group (`Vec::<u8>::new`).
    fn qualifier_before(&self, sep_end: usize) -> Option<String> {
        if sep_end < 2 {
            return None;
        }
        let mut k = sep_end - 2; // token before the `::`
        if self.is_punct(k, ">") {
            // Walk back over the generic group to its `<`.
            let mut depth = 0i32;
            loop {
                if self.is_punct(k, ">") {
                    depth += 1;
                } else if self.is_punct(k, "<") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            if k == 0 {
                return None;
            }
            k -= 1;
            // `Vec::<u8>` — the `<` is itself preceded by `::`; step over.
            if self.is_path_sep_end(k) {
                if k < 2 {
                    return None;
                }
                k -= 2;
            }
        }
        if self.is_ident(k) {
            Some(self.text(k).to_string())
        } else {
            None
        }
    }

    /// Skips a `<…>` group starting at `open` (which is `<`); returns the
    /// index after the matching `>`, or the end on malformed input.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.sig.len() {
            if self.is_punct(j, "<") {
                depth += 1;
            } else if self.is_punct(j, ">") {
                if !(j >= 1 && self.is_punct(j - 1, "-")) {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            } else if self.is_punct(j, "{") || self.is_punct(j, ";") {
                return j; // malformed generics: stop before the body
            }
            j += 1;
        }
        j
    }
}

/// Brace matching over significant tokens (same algorithm the rule engine
/// uses): `{` index → `}` index.
fn match_braces(src: &str, sig: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; sig.len()];
    let mut stack = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text(src) {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out[open] = Some(i);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<Item> {
        parse(src)
    }

    fn call_names(item: &Item) -> Vec<String> {
        item.calls.iter().map(|c| c.callee.name().to_string()).collect()
    }

    #[test]
    fn free_fns_and_methods() {
        let src = "
fn free() { helper(); }
impl Octree {
    pub fn point_query_with(&self) { self.descend(); leaf_record_dists_sq(r); }
}
impl Step1Engine for PvIndex {
    fn step1_into(&self) { min_dist_sq(&r, &q); }
}
trait Pager {
    fn read_into(&self, out: &mut Vec<u8>);
    fn read(&self) -> Vec<u8> { self.read_into(x); y }
}
";
        let it = items(src);
        let names: Vec<(String, Option<String>, Option<String>)> = it
            .iter()
            .map(|i| (i.name.clone(), i.qual.clone(), i.trait_qual.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, None),
                ("point_query_with".into(), Some("Octree".into()), None),
                (
                    "step1_into".into(),
                    Some("PvIndex".into()),
                    Some("Step1Engine".into())
                ),
                ("read_into".into(), Some("Pager".into()), None),
                ("read".into(), Some("Pager".into()), None),
            ]
        );
        assert_eq!(call_names(&it[0]), vec!["helper"]);
        assert_eq!(call_names(&it[1]), vec!["descend", "leaf_record_dists_sq"]);
        assert_eq!(call_names(&it[3]), Vec::<String>::new()); // bodyless
        assert_eq!(call_names(&it[4]), vec!["read_into"]);
    }

    #[test]
    fn call_spellings() {
        let src = "fn f() {
            plain(1);
            recv.method(2);
            Wal::append_commit(3);
            codec::put_u32(b, 4);
            Vec::<u8>::with_capacity(8);
            Self::helper();
            assert_eq!(a, b);
            vec![1, 2];
            if x { g() }
        }";
        let it = items(src);
        assert_eq!(it.len(), 1);
        let calls = &it[0].calls;
        assert_eq!(calls[0].callee, Callee::Free("plain".into()));
        assert_eq!(calls[1].callee, Callee::Method("method".into()));
        assert_eq!(
            calls[2].callee,
            Callee::Qualified("Wal".into(), "append_commit".into())
        );
        assert_eq!(
            calls[3].callee,
            Callee::Qualified("codec".into(), "put_u32".into())
        );
        assert_eq!(
            calls[4].callee,
            Callee::Qualified("Vec".into(), "with_capacity".into())
        );
        assert_eq!(
            calls[5].callee,
            Callee::Qualified("Self".into(), "helper".into())
        );
        assert_eq!(calls[6].callee, Callee::Macro("assert_eq".into()));
        assert_eq!(calls[7].callee, Callee::Macro("vec".into()));
        assert_eq!(calls[8].callee, Callee::Free("g".into()));
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "fn outer() { inner(); fn inner() { deep(); } after(); }";
        let it = items(src);
        assert_eq!(it.len(), 2);
        assert_eq!(call_names(&it[0]), vec!["inner", "after"]);
        assert!(!it[0].nested);
        assert_eq!(call_names(&it[1]), vec!["deep"]);
        assert!(it[1].nested);
    }

    #[test]
    fn impl_headers_with_generics_and_where() {
        let src = "
impl<'a, P: Pager> BufferPool<P> where P: Send { fn evict(&self) {} }
impl<T> Iterator for Iter<T> { fn next(&mut self) -> Option<T> { None } }
";
        let it = items(src);
        assert_eq!(it[0].qual.as_deref(), Some("BufferPool"));
        assert_eq!(it[1].qual.as_deref(), Some("Iter"));
        assert_eq!(it[1].trait_qual.as_deref(), Some("Iterator"));
    }

    #[test]
    fn generic_fn_headers_do_not_eat_the_body() {
        let src = "fn f<T: Into<U>>(x: T) -> Vec<u8> { g() }\nfn h() { k() }";
        let it = items(src);
        assert_eq!(it.len(), 2);
        assert_eq!(call_names(&it[0]), vec!["g"]);
        assert_eq!(call_names(&it[1]), vec!["k"]);
    }

    #[test]
    fn spans_cover_items_exactly() {
        let src = "fn a() { x() }\n\npub fn b(v: u32) -> u32 { v }\n";
        let it = items(src);
        assert_eq!(&src[it[0].span.0..it[0].span.1], "fn a() { x() }");
        assert_eq!(&src[it[1].span.0..it[1].span.1], "fn b(v: u32) -> u32 { v }");
    }

    #[test]
    fn totality_on_malformed_input() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "impl {",
            "impl Foo",
            "trait",
            "trait {",
            "fn f(",
            "fn f() {",
            "fn f<T(] {}",
            "} } fn g() { h( }",
            "impl<T for X { fn m() {} }",
        ] {
            let _ = parse(src); // must not panic
        }
    }
}
