//! Diagnostic aggregation, text/JSON/SARIF rendering, and the baseline
//! ratchet (`lint-baseline.json` may only shrink).

use crate::rules::{Diagnostic, RULES};
use std::collections::BTreeMap;

/// The outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Non-waived violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by a reasoned waiver (kept for the report —
    /// the waiver inventory is part of the audit trail).
    pub waived: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when there is nothing to fail CI over.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sorts both lists into the stable output order.
    pub fn finish(&mut self) {
        let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
        self.diagnostics.sort_by_key(key);
        self.waived.sort_by_key(key);
    }

    /// Human-readable rendering: one `file:line: [rule] message` per
    /// finding, then a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        if !self.waived.is_empty() {
            out.push_str(&format!("{} waived finding(s):\n", self.waived.len()));
            for d in &self.waived {
                out.push_str(&format!("  {}:{}: [{}] (waived)\n", d.file, d.line, d.rule));
            }
        }
        out.push_str(&format!(
            "pv-lint: {} file(s) scanned, {} violation(s), {} waived\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.waived.len()
        ));
        out
    }

    /// Machine-readable rendering (`--format json`): a single stable-keyed
    /// object. Hand-rolled — the workspace vendors no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"description\": {}}}",
                json_str(r.name),
                json_str(r.description)
            ));
        }
        out.push_str("],\n  \"diagnostics\": [");
        push_diags(&mut out, &self.diagnostics);
        out.push_str("],\n  \"waived\": [");
        push_diags(&mut out, &self.waived);
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"waived\": {}}}\n}}\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.waived.len()
        ));
        out
    }

    /// SARIF 2.1.0 rendering (`--format sarif`): one run, the rule registry
    /// as `tool.driver.rules`, active findings as `error` results, waived
    /// findings as suppressed (`suppressions: [{kind: "inSource"}]`) `note`
    /// results — so code-scanning UIs show the waiver inventory without
    /// failing on it.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
             \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [{\n    \
             \"tool\": {\"driver\": {\"name\": \"pv-lint\", \"rules\": [",
        );
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_str(r.name),
                json_str(r.description)
            ));
        }
        out.push_str("]}},\n    \"results\": [");
        let mut first = true;
        for (diags, level, suppressed) in
            [(&self.diagnostics, "error", false), (&self.waived, "note", true)]
        {
            for d in diags.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n      {{\"ruleId\": {}, \"level\": \"{level}\", \"message\": {{\"text\": \
                     {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                     {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]{}}}",
                    json_str(d.rule),
                    json_str(&d.message),
                    json_str(&d.file),
                    d.line,
                    if suppressed {
                        ", \"suppressions\": [{\"kind\": \"inSource\"}]"
                    } else {
                        ""
                    }
                ));
            }
        }
        if !first {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }]\n}\n");
        out
    }
}

/// Per-rule `(active, waived)` counts — the unit of the CI ratchet. The
/// committed `lint-baseline.json` records the accepted state; a run whose
/// counts *grow* for any rule fails, a run that shrinks them is invited to
/// re-write the baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Rule name → (active count, waived count).
    pub rules: BTreeMap<String, (u64, u64)>,
}

impl Baseline {
    /// Counts the current report into baseline form.
    pub fn from_report(report: &LintReport) -> Baseline {
        let mut rules: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for d in &report.diagnostics {
            rules.entry(d.rule.to_string()).or_default().0 += 1;
        }
        for d in &report.waived {
            rules.entry(d.rule.to_string()).or_default().1 += 1;
        }
        Baseline { rules }
    }

    /// The committed JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": {");
        for (i, (name, (active, waived))) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"active\": {active}, \"waived\": {waived} }}",
                json_str(name)
            ));
        }
        if !self.rules.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses the JSON form written by [`Baseline::to_json`]. Forgiving
    /// scanner (no serde in the workspace): any `"name": {"active": N,
    /// "waived": M}` shape is picked up, the rest is ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut rules = BTreeMap::new();
        let bytes = text.as_bytes();
        let mut i = 0usize;
        // Tokenize into strings, numbers, and single punctuation bytes.
        let mut toks: Vec<(u8, String)> = Vec::new(); // (kind: s/n/p, text)
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] != b'"' {
                        if bytes[j] == b'\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    if j >= bytes.len() {
                        return Err("unterminated string in baseline".to_string());
                    }
                    toks.push((b's', text[start..j].to_string()));
                    i = j + 1;
                }
                b'0'..=b'9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    toks.push((b'n', text[start..i].to_string()));
                }
                b'{' | b'}' | b':' | b',' | b'[' | b']' => {
                    toks.push((b'p', (bytes[i] as char).to_string()));
                    i += 1;
                }
                _ => i += 1, // whitespace and anything exotic
            }
        }
        let num = |t: &(u8, String)| -> Option<u64> {
            (t.0 == b'n').then(|| t.1.parse().ok()).flatten()
        };
        let mut k = 0usize;
        while k + 10 < toks.len() {
            let w = &toks[k..k + 11];
            let shape = w[0].0 == b's'
                && w[1].1 == ":"
                && w[2].1 == "{"
                && w[3].1 == "active"
                && w[4].1 == ":"
                && w[5].0 == b'n'
                && w[6].1 == ","
                && w[7].1 == "waived"
                && w[8].1 == ":"
                && w[9].0 == b'n'
                && w[10].1 == "}";
            if shape {
                let (Some(active), Some(waived)) = (num(&w[5]), num(&w[9])) else {
                    return Err(format!("bad counts for rule {:?}", w[0].1));
                };
                rules.insert(w[0].1.clone(), (active, waived));
                k += 11;
            } else {
                k += 1;
            }
        }
        Ok(Baseline { rules })
    }

    /// The ratchet: messages for every rule whose counts in `current`
    /// exceed this baseline (rules absent here count as zero — a new rule
    /// must enter clean). Empty ⇒ the ratchet holds.
    pub fn regressions(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        for (name, &(active, waived)) in &current.rules {
            let &(base_active, base_waived) = self.rules.get(name).unwrap_or(&(0, 0));
            if active > base_active {
                out.push(format!(
                    "{name}: {active} active violation(s), baseline allows {base_active}"
                ));
            }
            if waived > base_waived {
                out.push(format!(
                    "{name}: {waived} waived finding(s), baseline allows {base_waived} — \
                     shrink the new waiver or re-baseline deliberately"
                ));
            }
        }
        out
    }
}

fn push_diags(out: &mut String, diags: &[Diagnostic]) {
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_summarised() {
        let mut report = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "hot-path-no-panic",
                file: "a/b.rs".to_string(),
                line: 3,
                message: "say \"no\"\n".to_string(),
            }],
            waived: Vec::new(),
            files_scanned: 1,
        };
        report.finish();
        let json = report.to_json();
        assert!(json.contains("\\\"no\\\"\\n"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"version\": 1"));
        assert!(!report.clean());
        assert!(report.to_text().contains("a/b.rs:3: [hot-path-no-panic]"));
    }

    #[test]
    fn sarif_has_results_and_suppressions() {
        let mut report = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "hot-path-no-panic",
                file: "crates/geom/src/dist.rs".to_string(),
                line: 42,
                message: "indexing".to_string(),
            }],
            waived: vec![Diagnostic {
                rule: "io-no-unwrap",
                file: "crates/storage/src/wal.rs".to_string(),
                line: 7,
                message: "unwrap".to_string(),
            }],
            files_scanned: 2,
        };
        report.finish();
        let sarif = report.to_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"pv-lint\""));
        assert!(sarif.contains("\"uri\": \"crates/geom/src/dist.rs\""));
        assert!(sarif.contains("\"startLine\": 42"));
        assert!(sarif.contains("\"suppressions\": [{\"kind\": \"inSource\"}]"));
        // every registered rule is described
        for r in RULES {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", r.name)));
        }
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let report = LintReport {
            diagnostics: vec![],
            waived: vec![
                Diagnostic {
                    rule: "hot-path-no-panic",
                    file: "f.rs".to_string(),
                    line: 1,
                    message: String::new(),
                },
                Diagnostic {
                    rule: "hot-path-no-panic",
                    file: "f.rs".to_string(),
                    line: 2,
                    message: String::new(),
                },
            ],
            files_scanned: 1,
        };
        let base = Baseline::from_report(&report);
        assert_eq!(base.rules["hot-path-no-panic"], (0, 2));
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        // same counts: ratchet holds
        assert!(base.regressions(&parsed).is_empty());
        // growth in either counter is a regression
        let mut worse = base.clone();
        worse.rules.insert("hot-path-no-panic".to_string(), (1, 3));
        let msgs = base.regressions(&worse);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        // a rule absent from the baseline must enter clean
        let mut new_rule = base.clone();
        new_rule.rules.insert("wal-append-paired".to_string(), (1, 0));
        assert_eq!(base.regressions(&new_rule).len(), 1);
        // shrinking is fine
        let mut better = base.clone();
        better.rules.insert("hot-path-no-panic".to_string(), (0, 1));
        assert!(base.regressions(&better).is_empty());
    }
}
