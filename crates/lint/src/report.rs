//! Diagnostic aggregation and text/JSON rendering.

use crate::rules::{Diagnostic, RULES};

/// The outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Non-waived violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by a reasoned waiver (kept for the report —
    /// the waiver inventory is part of the audit trail).
    pub waived: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when there is nothing to fail CI over.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sorts both lists into the stable output order.
    pub fn finish(&mut self) {
        let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
        self.diagnostics.sort_by_key(key);
        self.waived.sort_by_key(key);
    }

    /// Human-readable rendering: one `file:line: [rule] message` per
    /// finding, then a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        if !self.waived.is_empty() {
            out.push_str(&format!("{} waived finding(s):\n", self.waived.len()));
            for d in &self.waived {
                out.push_str(&format!("  {}:{}: [{}] (waived)\n", d.file, d.line, d.rule));
            }
        }
        out.push_str(&format!(
            "pv-lint: {} file(s) scanned, {} violation(s), {} waived\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.waived.len()
        ));
        out
    }

    /// Machine-readable rendering (`--format json`): a single stable-keyed
    /// object. Hand-rolled — the workspace vendors no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"description\": {}}}",
                json_str(r.name),
                json_str(r.description)
            ));
        }
        out.push_str("],\n  \"diagnostics\": [");
        push_diags(&mut out, &self.diagnostics);
        out.push_str("],\n  \"waived\": [");
        push_diags(&mut out, &self.waived);
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"waived\": {}}}\n}}\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.waived.len()
        ));
        out
    }
}

fn push_diags(out: &mut String, diags: &[Diagnostic]) {
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_summarised() {
        let mut report = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "hot-path-no-panic",
                file: "a/b.rs".to_string(),
                line: 3,
                message: "say \"no\"\n".to_string(),
            }],
            waived: Vec::new(),
            files_scanned: 1,
        };
        report.finish();
        let json = report.to_json();
        assert!(json.contains("\\\"no\\\"\\n"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"version\": 1"));
        assert!(!report.clean());
        assert!(report.to_text().contains("a/b.rs:3: [hot-path-no-panic]"));
    }
}
