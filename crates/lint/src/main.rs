//! The `pv-lint` binary: `cargo run -p pv-lint [-- --format json]`.
//!
//! Exit codes: `0` clean, `1` non-waived violations, `2` usage or I/O
//! error. The workspace root is located by walking up from the current
//! directory to the nearest `lint.toml` (override with `--root`).

use std::path::PathBuf;
use std::process::ExitCode;

use pv_lint::{lint_root, RULES};

const USAGE: &str = "\
pv-lint — static invariants for the pv suite

USAGE:
    cargo run -p pv-lint [-- OPTIONS]

OPTIONS:
    --format <text|json>   Output format (default: text)
    --root <dir>           Workspace root (default: nearest lint.toml upward)
    --list-rules           Print the rule registry and exit
    -h, --help             This help
";

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => return usage_error("--format takes `text` or `json`"),
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage_error("--root takes a directory"),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{:<28} {}", r.name, r.description);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("pv-lint: no lint.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    match lint_root(&root) {
        Ok(report) => {
            match format.as_str() {
                "json" => print!("{}", report.to_json()),
                _ => print!("{}", report.to_text()),
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pv-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pv-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
