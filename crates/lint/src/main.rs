//! The `pv-lint` binary: `cargo run -p pv-lint [-- --format json]`.
//!
//! Exit codes: `0` clean, `1` non-waived violations or a baseline
//! regression, `2` usage or I/O error. The workspace root is located by
//! walking up from the current directory to the nearest `lint.toml`
//! (override with `--root`).

use std::path::PathBuf;
use std::process::ExitCode;

use pv_lint::{graph_dot_root, lint_root, Baseline, RULES};

const USAGE: &str = "\
pv-lint — static invariants for the pv suite

USAGE:
    cargo run -p pv-lint [-- OPTIONS]

OPTIONS:
    --format <text|json|sarif>   Output format (default: text)
    --root <dir>                 Workspace root (default: nearest lint.toml upward)
    --graph                      Print the call graph as Graphviz DOT and exit
    --baseline <file>            Enforce the ratchet: fail if any rule's active or
                                 waived count exceeds the committed baseline
    --write-baseline <file>      Write the current counts as the new baseline
    --list-rules                 Print the rule registry and exit
    -h, --help                   This help
";

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut graph = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" || f == "sarif" => format = f,
                _ => return usage_error("--format takes `text`, `json`, or `sarif`"),
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage_error("--root takes a directory"),
            },
            "--graph" => graph = true,
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage_error("--baseline takes a file"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage_error("--write-baseline takes a file"),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{:<28} {}", r.name, r.description);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("pv-lint: no lint.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    if graph {
        return match graph_dot_root(&root) {
            Ok(dot) => {
                print!("{dot}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pv-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match lint_root(&root) {
        Ok(report) => {
            match format.as_str() {
                "json" => print!("{}", report.to_json()),
                "sarif" => print!("{}", report.to_sarif()),
                _ => print!("{}", report.to_text()),
            }
            let current = Baseline::from_report(&report);
            if let Some(path) = &write_baseline {
                if let Err(e) = std::fs::write(path, current.to_json()) {
                    eprintln!("pv-lint: writing baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("pv-lint: baseline written to {}", path.display());
            }
            let mut ratchet_ok = true;
            if let Some(path) = &baseline {
                let base = match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| Baseline::parse(&text))
                {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("pv-lint: reading baseline {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                };
                for msg in base.regressions(&current) {
                    eprintln!("pv-lint: ratchet: {msg}");
                    ratchet_ok = false;
                }
            }
            if report.clean() && ratchet_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pv-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pv-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
