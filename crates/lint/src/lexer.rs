//! A hand-rolled, lossless Rust lexer.
//!
//! `pv-lint` needs just enough lexical structure to tell code from comments
//! and strings, match identifiers and punctuation, and attach line numbers
//! to findings. Pulling in `syn` would mean vendoring it (the build
//! environment is offline), so this module implements the subset of the
//! Rust lexical grammar the rules require, by hand:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** … */`);
//! * cooked strings with escapes, byte strings (`b"…"`), C strings
//!   (`c"…"`), and raw strings with arbitrary hash fences
//!   (`r#"…"#`, `br##"…"##`);
//! * char literals vs. lifetimes (`'a'` vs `'a`), including escaped chars;
//! * raw identifiers (`r#type`), numeric literals with suffixes and
//!   exponents, and single-character punctuation.
//!
//! Two properties matter more than grammatical perfection, and both are
//! enforced by the proptest suite in `tests/lexer_roundtrip.rs`:
//!
//! 1. **Totality** — [`lex`] never panics, on any byte sequence. Malformed
//!    input (unterminated strings/comments, stray quotes) degrades to a
//!    best-effort token that runs to end of input.
//! 2. **Losslessness** — concatenating every token's text reproduces the
//!    input byte-for-byte, so line numbers and spans are always exact.

/// The lexical class of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */`, nested, including `/** … */` doc comments.
    BlockComment,
    /// Identifiers and keywords, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A cooked string: `"…"`, `b"…"`, `c"…"`.
    Str,
    /// A raw string: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// One punctuation character (`::` is two `Punct` tokens).
    Punct,
}

/// One lexed token: a classified byte span of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for whitespace and comments — tokens the rules skip over.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lexes `src` completely. Total (never panics) and lossless (token texts
/// concatenate back to `src`); see the module docs.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.whitespace(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'\'' => self.quote(),
                b'"' => self.cooked_string(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn whitespace(&mut self) -> TokenKind {
        while self
            .peek(0)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.bump();
        }
        TokenKind::Whitespace
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1u32;
        while depth > 0 && self.pos < self.src.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    /// At a `'`: a lifetime, a char literal, or a stray quote.
    fn quote(&mut self) -> TokenKind {
        match self.peek(1) {
            // `'\…'` — escaped char literal; `char_tail` owns the escape.
            Some(b'\\') => {
                self.pos += 1; // opening `'`
                self.char_tail()
            }
            Some(n) if is_ident_start(n) => {
                // `'a'` is a char; `'a` / `'static` are lifetimes. Scan the
                // identifier run and decide by the byte that follows it.
                let mut j = self.pos + 2;
                while self.src.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.src.get(j) == Some(&b'\'') {
                    self.pos = j + 1;
                    TokenKind::Char
                } else {
                    self.pos = j;
                    TokenKind::Lifetime
                }
            }
            // `'('` and friends: a char literal iff a quote closes it.
            Some(_) if self.peek(2) == Some(b'\'') => {
                self.pos += 3;
                TokenKind::Char
            }
            _ => {
                self.pos += 1;
                TokenKind::Punct
            }
        }
    }

    /// Finishes a char literal whose opening `'` (and any `\`) is consumed.
    fn char_tail(&mut self) -> TokenKind {
        // The escape target (or `{…}` of `\u`) runs to the closing quote.
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.pos += 1;
                if self.peek(0).is_some() {
                    self.bump();
                }
                continue;
            }
            if b == b'\'' {
                self.pos += 1;
                return TokenKind::Char;
            }
            if b == b'\n' {
                // Unterminated; don't swallow the rest of the file.
                return TokenKind::Char;
            }
            self.bump();
        }
        TokenKind::Char
    }

    fn cooked_string(&mut self) -> TokenKind {
        self.pos += 1; // opening `"`
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.pos += 1;
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str // unterminated: runs to EOF
    }

    /// Raw string with `hashes` fence hashes; `pos` is at the opening `"`.
    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        self.pos += 1; // opening `"`
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"'
                && self.src[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                self.pos += 1 + hashes;
                return TokenKind::RawStr;
            }
            self.bump();
        }
        TokenKind::RawStr // unterminated: runs to EOF
    }

    fn number(&mut self) -> TokenKind {
        // Integer part (any base — `0x…`/`0b…` digits are alphanumeric).
        while self.peek(0).is_some_and(is_ident_continue) {
            let prev = self.src[self.pos];
            self.pos += 1;
            // `1e-5` / `2E+8`: a sign directly after an exponent marker
            // continues the literal.
            if matches!(prev, b'e' | b'E')
                && self.peek(0).is_some_and(|b| b == b'+' || b == b'-')
                && self.peek(1).is_some_and(|b| b.is_ascii_digit())
            {
                self.pos += 1;
            }
        }
        // Fraction: `.` followed by a digit (so `0..n` and `1.max()` stay
        // separate tokens).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                let prev = self.src[self.pos];
                self.pos += 1;
                if matches!(prev, b'e' | b'E')
                    && self.peek(0).is_some_and(|b| b == b'+' || b == b'-')
                    && self.peek(1).is_some_and(|b| b.is_ascii_digit())
                {
                    self.pos += 1;
                }
            }
        }
        TokenKind::Number
    }

    /// At an identifier-start byte: a plain identifier, a raw identifier,
    /// or a prefixed literal (`r"…"`, `br#"…"#`, `b"…"`, `b'…'`, `c"…"`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let b = self.src[self.pos];

        // Raw-string / raw-identifier prefixes.
        if b == b'r' || b == b'b' || b == b'c' {
            let mut j = self.pos + 1;
            let mut saw_r = b == b'r';
            // `br`/`cr` two-byte prefixes.
            if !saw_r && self.src.get(j) == Some(&b'r') {
                saw_r = true;
                j += 1;
            }
            if saw_r {
                let fence_start = j;
                while self.src.get(j) == Some(&b'#') {
                    j += 1;
                }
                let hashes = j - fence_start;
                if self.src.get(j) == Some(&b'"') {
                    self.pos = j;
                    return self.raw_string(hashes);
                }
                if hashes > 0 && self.src.get(j).copied().is_some_and(is_ident_start) {
                    // Raw identifier `r#match` (only valid with exactly one
                    // `#`, but lex leniently).
                    self.pos = j;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    return TokenKind::Ident;
                }
            }
            if (b == b'b' || b == b'c') && self.src.get(self.pos + 1) == Some(&b'"') {
                self.pos += 1;
                return self.cooked_string();
            }
            if b == b'b' && self.src.get(self.pos + 1) == Some(&b'\'') {
                self.pos += 2; // `b'` — `char_tail` handles any escape
                return self.char_tail();
            }
        }

        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src, "lossless lexing of {src:?}");
    }

    #[test]
    fn idents_numbers_puncts() {
        let ks = kinds("let x = foo.bar[i] + 0x1f;");
        assert_eq!(ks[0], (TokenKind::Ident, "let"));
        assert!(ks.contains(&(TokenKind::Number, "0x1f")));
        assert!(ks.contains(&(TokenKind::Punct, "[")));
        roundtrip("let x = foo.bar[i] + 0x1f;");
    }

    #[test]
    fn floats_ranges_and_method_calls_split_correctly() {
        assert!(kinds("1.5e-3f64").iter().any(|k| k.1 == "1.5e-3f64"));
        let r = kinds("0..10");
        assert_eq!(r[0].1, "0");
        assert_eq!(r[3].1, "10");
        let m = kinds("1.max(2)");
        assert_eq!(m[0], (TokenKind::Number, "1"));
        assert_eq!(m[2], (TokenKind::Ident, "max"));
        roundtrip("a[1.5e-3]..0.5 + 1.max(2)");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(ks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(ks.contains(&(TokenKind::Char, "'x'")));
        assert!(ks.contains(&(TokenKind::Char, "'\\n'")));
        assert!(kinds("'static").contains(&(TokenKind::Lifetime, "'static")));
    }

    #[test]
    fn strings_raw_strings_and_fences() {
        assert_eq!(kinds(r#""a \" b""#)[0].0, TokenKind::Str);
        let raw = "r#\"no \" escape\"#";
        assert_eq!(kinds(raw), vec![(TokenKind::RawStr, raw)]);
        let raw2 = "r##\"one \"# inside\"##";
        assert_eq!(kinds(raw2), vec![(TokenKind::RawStr, raw2)]);
        assert_eq!(kinds("b\"bytes\"")[0].0, TokenKind::Str);
        assert_eq!(kinds("br#\"raw bytes\"#")[0].0, TokenKind::RawStr);
        assert_eq!(kinds("b'\\xff'")[0].0, TokenKind::Char);
        for s in [r#""a \" b""#, raw, raw2, "b'\\xff'"] {
            roundtrip(s);
        }
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(kinds("r#match")[0], (TokenKind::Ident, "r#match"));
        // …and a raw string right after a raw-ident-looking prefix.
        assert_eq!(kinds("r\"s\"")[0].0, TokenKind::RawStr);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[1], (TokenKind::Ident, "b"));
        roundtrip(src);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated /* nested",
            "'",
            "b'",
            "let x = '\\",
            "r#",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "a\nbb\n\nccc";
        let toks: Vec<(u32, &str)> = lex(src)
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.line, t.text(src)))
            .collect();
        assert_eq!(toks, vec![(1, "a"), (2, "bb"), (4, "ccc")]);
    }
}
