//! `pv-lint` — the suite's own static-analysis pass.
//!
//! The workspace makes guarantees that `rustc` cannot check: the Step-2
//! query hot path performs **zero allocations** per call, the query/commit
//! paths are **panic-free** (typed errors only), `pv-storage` mutates page
//! bytes **only through the copy-on-write helpers**, and the on-disk codec
//! never silently truncates. Those invariants were previously enforced only
//! dynamically (the counting allocator, stress tests) — a new code path
//! that dodges the test matrix regresses them silently. This crate walks
//! the workspace sources with a hand-rolled lexer (offline build — no
//! `syn`) and enforces the invariants lexically, on every path, at CI time.
//!
//! * [`lexer`] — total, lossless Rust lexer.
//! * [`config`] — `lint.toml` parsing and glob matching (which rules
//!   govern which files).
//! * [`rules`] — the rule registry, file analysis, and inline waivers.
//! * [`report`] — text and JSON rendering.
//!
//! Entry points: [`lint_root`] (workspace scan) and
//! [`rules::check_file`] (single source, used by the fixture tests).

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{Config, ConfigError};
pub use report::LintReport;
pub use rules::{check_file, Diagnostic, Rule, RULES};

/// Lints every `.rs` file under `root` governed by `cfg`.
///
/// Paths in diagnostics are `root`-relative and `/`-separated. Unreadable
/// files (or non-UTF-8 sources) surface as `io::Error`s.
pub fn lint_with_config(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let rules = cfg.rules_for(rel);
        let (active, waived) = rules::check_file(rel, &src, &rules);
        report.diagnostics.extend(active);
        report.waived.extend(waived);
        report.files_scanned += 1;
    }
    report.finish();
    Ok(report)
}

/// Lints the workspace at `root` using its `lint.toml`.
pub fn lint_root(root: &Path) -> io::Result<LintReport> {
    let cfg_text = fs::read_to_string(root.join("lint.toml"))?;
    let cfg = Config::parse(&cfg_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    validate_rule_names(&cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    lint_with_config(root, &cfg)
}

/// Rejects configs naming rules the engine does not implement — a typo in
/// `lint.toml` must not silently disable an invariant.
pub fn validate_rule_names(cfg: &Config) -> Result<(), String> {
    for name in cfg.rules.keys() {
        if rules::rule_by_name(name).is_none() {
            return Err(format!(
                "lint.toml names unknown rule `{name}` (known: {})",
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(())
}

/// Recursively gathers workspace-relative `.rs` paths, pruning `.git`,
/// `target`, and config-excluded subtrees.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name == ".git" || name == "target" {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if !cfg.excluded(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
