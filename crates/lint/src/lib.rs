//! `pv-lint` — the suite's own static-analysis pass.
//!
//! The workspace makes guarantees that `rustc` cannot check: the Step-2
//! query hot path performs **zero allocations** per call, the query/commit
//! paths are **panic-free** (typed errors only), `pv-storage` mutates page
//! bytes **only through the copy-on-write helpers**, the on-disk codec
//! never silently truncates, and every WAL `append_commit` follows the
//! acknowledged⟺logged protocol. Those invariants were previously enforced
//! only dynamically (the counting allocator, stress tests, crash-injection
//! proofs) — a new code path that dodges the test matrix regresses them
//! silently. This crate walks the workspace sources with a hand-rolled
//! lexer (offline build — no `syn`) and enforces the invariants on every
//! path, at CI time.
//!
//! Since PR 10 the analysis is **interprocedural**: on top of the per-file
//! lexical rules, a workspace call graph ([`parser`] + [`graph`]) lets
//! rules declare *entry points* in `lint.toml` and have their invariant
//! checked over the whole reachability closure — `hot-path-no-panic`
//! follows `execute_into` through `pv-geom::min_dist_sq`,
//! `Octree::point_query_with`, `ExtHash::get_into`, and the uncertain
//! kernels, wherever they live.
//!
//! * [`lexer`] — total, lossless Rust lexer.
//! * [`parser`] — total item parser (fn items, call sites) on the lexer.
//! * [`graph`] — workspace symbol table, call graph, closures.
//! * [`config`] — `lint.toml` parsing: globs, entry points.
//! * [`rules`] — the rule registry, file analysis, and inline waivers.
//! * [`report`] — text, JSON, and SARIF rendering plus the baseline
//!   ratchet.
//!
//! Entry points: [`lint_root`] (workspace scan), [`lint_sources`]
//! (in-memory multi-file scan, used by the closure fixtures), and
//! [`rules::check_file`] (single source, used by the per-rule fixtures).

pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use graph::Graph;
use rules::FileAnalysis;

pub use config::{Config, ConfigError};
pub use report::{Baseline, LintReport};
pub use rules::{check_file, Diagnostic, Rule, RULES};

/// Lints a set of in-memory `(path, source)` files governed by `cfg`:
/// file-scoped rules per governed file, then every transitive rule's
/// body check over its entry-point closure, with findings split against
/// each file's waiver comments.
pub fn lint_sources(files: &[(String, String)], cfg: &Config) -> LintReport {
    let analyses: Vec<FileAnalysis<'_>> = files
        .iter()
        .map(|(path, src)| FileAnalysis::new(path, src))
        .collect();
    let items: Vec<Vec<parser::Item>> = analyses
        .iter()
        .map(|a| parser::parse_items(a.src, &a.sig))
        .collect();

    // File-scoped rules, exactly as before the call graph existed.
    let mut raw: Vec<Vec<Diagnostic>> = files.iter().map(|_| Vec::new()).collect();
    for (fi, a) in analyses.iter().enumerate() {
        for name in cfg.rules_for(&files[fi].0) {
            if let Some(rule) = rules::rule_by_name(name) {
                rule.run_file(a, &mut raw[fi]);
            }
        }
    }

    // Transitive rules: apply the body-scoped check to every function
    // reachable from the rule's declared entry points — regardless of the
    // rule's `include` globs (extending the closure past them is the
    // point), but honouring its `exclude` carve-outs.
    let graph_files: Vec<(&FileAnalysis<'_>, &[parser::Item])> = analyses
        .iter()
        .zip(items.iter())
        .map(|(a, it)| (a, it.as_slice()))
        .collect();
    let graph = Graph::build(&graph_files);
    for (rule_name, rc) in &cfg.rules {
        if rc.entry_points.is_empty() {
            continue;
        }
        let Some(rule) = rules::rule_by_name(rule_name) else {
            continue;
        };
        let Some(body_check) = rule.body_check() else {
            continue;
        };
        let mask = graph.closure(&rc.entry_points);
        for (id, node) in graph.nodes.iter().enumerate() {
            if !mask[id] || node.is_test || !node.has_body {
                continue;
            }
            let path = &files[node.file].0;
            if rc.exclude.iter().any(|g| config::glob_match(g, path)) {
                continue;
            }
            let a = &analyses[node.file];
            let it = &items[node.file][node.item];
            if let Some(body) = it.body.clone() {
                body_check(a, body, &it.name, &mut raw[node.file]);
            }
            if rc.flag_unknown {
                for (callee, line) in &graph.unknown_calls[id] {
                    raw[node.file].push(Diagnostic {
                        rule: rule.name,
                        file: path.clone(),
                        line: *line,
                        message: format!(
                            "unresolved call `{callee}(…)` from `{}` inside the {rule_name} \
                             closure — the invariant cannot be checked through it",
                            it.name
                        ),
                    });
                }
            }
        }
    }

    // A finding can arrive twice (file scope + closure scope): dedup per
    // file before splitting against the file's waivers.
    let mut report = LintReport::default();
    for (fi, a) in analyses.iter().enumerate() {
        let mut r = std::mem::take(&mut raw[fi]);
        r.sort_by(|x, y| (x.line, x.rule, &x.message).cmp(&(y.line, y.rule, &y.message)));
        r.dedup_by(|x, y| x.line == y.line && x.rule == y.rule && x.message == y.message);
        let (active, waived) = rules::split_waived(a, r);
        report.diagnostics.extend(active);
        report.waived.extend(waived);
    }
    report.files_scanned = files.len();
    report.finish();
    report
}

/// Reads every scannable `.rs` file under `root` into memory, in sorted
/// (deterministic) order. Paths are `root`-relative and `/`-separated.
pub fn load_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, cfg, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    Ok(files)
}

/// Lints every `.rs` file under `root` governed by `cfg`.
///
/// Paths in diagnostics are `root`-relative and `/`-separated. Unreadable
/// files (or non-UTF-8 sources) surface as `io::Error`s.
pub fn lint_with_config(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let files = load_workspace(root, cfg)?;
    Ok(lint_sources(&files, cfg))
}

/// Lints the workspace at `root` using its `lint.toml`.
pub fn lint_root(root: &Path) -> io::Result<LintReport> {
    let cfg = config_for_root(root)?;
    lint_with_config(root, &cfg)
}

/// Renders the workspace call graph (with one closure per transitive
/// rule) as Graphviz DOT — the `--graph` debugging view.
pub fn graph_dot(files: &[(String, String)], cfg: &Config) -> String {
    let analyses: Vec<FileAnalysis<'_>> = files
        .iter()
        .map(|(path, src)| FileAnalysis::new(path, src))
        .collect();
    let items: Vec<Vec<parser::Item>> = analyses
        .iter()
        .map(|a| parser::parse_items(a.src, &a.sig))
        .collect();
    let graph_files: Vec<(&FileAnalysis<'_>, &[parser::Item])> = analyses
        .iter()
        .zip(items.iter())
        .map(|(a, it)| (a, it.as_slice()))
        .collect();
    let graph = Graph::build(&graph_files);
    let closures: Vec<(String, Vec<bool>)> = cfg
        .rules
        .iter()
        .filter(|(_, rc)| !rc.entry_points.is_empty())
        .map(|(name, rc)| (name.clone(), graph.closure(&rc.entry_points)))
        .collect();
    let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
    graph.to_dot(&paths, &closures)
}

/// `graph_dot` for a workspace root with a `lint.toml`.
pub fn graph_dot_root(root: &Path) -> io::Result<String> {
    let cfg = config_for_root(root)?;
    let files = load_workspace(root, &cfg)?;
    Ok(graph_dot(&files, &cfg))
}

/// Parses and validates `root`'s `lint.toml`.
pub fn config_for_root(root: &Path) -> io::Result<Config> {
    let cfg_text = fs::read_to_string(root.join("lint.toml"))?;
    let cfg = Config::parse(&cfg_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    validate_rule_names(&cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(cfg)
}

/// Rejects configs naming rules the engine does not implement — a typo in
/// `lint.toml` must not silently disable an invariant.
pub fn validate_rule_names(cfg: &Config) -> Result<(), String> {
    for name in cfg.rules.keys() {
        if rules::rule_by_name(name).is_none() {
            return Err(format!(
                "lint.toml names unknown rule `{name}` (known: {})",
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
        }
    }
    Ok(())
}

/// Recursively gathers workspace-relative `.rs` paths, pruning `.git`,
/// `target`, and config-excluded subtrees.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name == ".git" || name == "target" {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if !cfg.excluded(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
