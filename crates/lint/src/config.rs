//! `lint.toml` — which rules run where.
//!
//! The configuration maps each rule to the module globs it governs, so the
//! invariants stay *declared in one place* instead of hard-coded in the
//! engine. The file lives at the workspace root; the format is the small
//! TOML subset below (parsed by hand — the workspace is offline and vendors
//! nothing new):
//!
//! ```toml
//! # Global excludes apply to every rule.
//! [lint]
//! exclude = ["vendor/**", "target/**"]
//!
//! # One table per rule: `include` globs select the files it governs,
//! # `exclude` carves out exceptions within them.
//! [rule.hot-path-no-panic]
//! include = ["crates/core/src/query.rs", "crates/core/src/prob.rs"]
//! ```
//!
//! Supported syntax: `[section]` headers (dotted `rule.<name>` sections),
//! `key = "string"` and `key = ["array", "of", "strings"]` assignments
//! (arrays may span lines), `#` comments, and blank lines. Anything else is
//! a [`ConfigError`] with a line number.
//!
//! Globs are path-segment based: `*` matches within a segment, `?` one
//! character, `**` any number of whole segments (including zero).

use std::collections::BTreeMap;
use std::fmt;

/// A parse failure in `lint.toml`, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Per-rule file selection and (for transitive rules) entry points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleConfig {
    /// Globs of files the rule governs (empty ⇒ the rule never fires).
    pub include: Vec<String>,
    /// Globs carved out of `include` — and out of any reachability closure.
    pub exclude: Vec<String>,
    /// Entry-point patterns (`execute_into`, `Wal::*`, `*_into`) seeding the
    /// call-graph closure a transitive rule additionally checks. Empty ⇒
    /// the rule stays purely file-scoped.
    pub entry_points: Vec<String>,
    /// `unknown-calls = "flag"`: report unresolved plain/qualified calls
    /// made by closure members. Default (`"allow"`) tolerates them.
    pub flag_unknown: bool,
}

impl RuleConfig {
    /// True when `path` (workspace-relative, `/`-separated) is governed.
    pub fn governs(&self, path: &str) -> bool {
        self.include.iter().any(|g| glob_match(g, path))
            && !self.exclude.iter().any(|g| glob_match(g, path))
    }
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Globs excluded from scanning entirely (vendored code, fixtures).
    pub exclude: Vec<String>,
    /// Rule-name → file selection.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses the `lint.toml` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                if name != "lint" && name.strip_prefix("rule.").is_none_or(str::is_empty) {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!(
                            "unknown section [{name}] (expected [lint] or [rule.<name>])"
                        ),
                    });
                }
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got {line:?}"),
                });
            };
            let key = key.trim();
            // Arrays may span lines: keep consuming until the bracket closes.
            let mut value = value.trim().to_string();
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError {
                        line: lineno,
                        message: "unterminated array".to_string(),
                    });
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let values = parse_value(&value).map_err(|message| ConfigError {
                line: lineno,
                message,
            })?;
            match section.as_deref() {
                Some("lint") if key == "exclude" => cfg.exclude = values,
                Some(rule_section) if rule_section.starts_with("rule.") => {
                    let rule = rule_section["rule.".len()..].to_string();
                    let entry = cfg.rules.entry(rule).or_default();
                    match key {
                        "include" => entry.include = values,
                        "exclude" => entry.exclude = values,
                        "entry-points" => entry.entry_points = values,
                        "unknown-calls" => match values.as_slice() {
                            [v] if v == "flag" => entry.flag_unknown = true,
                            [v] if v == "allow" => entry.flag_unknown = false,
                            _ => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!(
                                        "unknown-calls takes \"flag\" or \"allow\", got {value:?}"
                                    ),
                                })
                            }
                        },
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!(
                                    "unknown rule key {key:?} (expected \
                                     include/exclude/entry-points/unknown-calls)"
                                ),
                            })
                        }
                    }
                }
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("key {key:?} outside a known section"),
                    })
                }
            }
        }
        Ok(cfg)
    }

    /// True when `path` is excluded from scanning entirely.
    pub fn excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|g| glob_match(g, path))
    }

    /// The rules governing `path`, in stable (alphabetical) order.
    pub fn rules_for<'a>(&'a self, path: &str) -> Vec<&'a str> {
        self.rules
            .iter()
            .filter(|(_, rc)| rc.governs(path))
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

/// Strips a trailing `#` comment. The config values are globs — no `#`
/// inside quoted strings to worry about for our own file, but be safe and
/// only strip a `#` that is not inside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value)?])
}

fn parse_string(part: &str) -> Result<String, String> {
    part.strip_prefix('"')
        .and_then(|p| p.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got {part:?}"))
}

/// Segment-wise glob match: `**` spans whole segments, `*`/`?` match within
/// a segment. Paths use `/` separators (the scanner normalises).
pub fn glob_match(glob: &str, path: &str) -> bool {
    let gsegs: Vec<&str> = glob.split('/').collect();
    let psegs: Vec<&str> = path.split('/').collect();
    match_segments(&gsegs, &psegs)
}

fn match_segments(glob: &[&str], path: &[&str]) -> bool {
    match glob.first() {
        None => path.is_empty(),
        Some(&"**") => {
            // `**` absorbs zero or more whole segments.
            (0..=path.len()).any(|skip| match_segments(&glob[1..], &path[skip..]))
        }
        Some(seg) => {
            !path.is_empty()
                && match_one(seg.as_bytes(), path[0].as_bytes())
                && match_segments(&glob[1..], &path[1..])
        }
    }
}

/// `*`/`?` matching within one path segment (also used by the call graph
/// for entry-point patterns).
pub(crate) fn match_one(glob: &[u8], seg: &[u8]) -> bool {
    match glob.first() {
        None => seg.is_empty(),
        Some(b'*') => (0..=seg.len()).any(|skip| match_one(&glob[1..], &seg[skip..])),
        Some(b'?') => !seg.is_empty() && match_one(&glob[1..], &seg[1..]),
        Some(&c) => seg.first() == Some(&c) && match_one(&glob[1..], &seg[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs() {
        assert!(glob_match("crates/**", "crates/core/src/query.rs"));
        assert!(glob_match("crates/*/src/*.rs", "crates/core/src/query.rs"));
        assert!(!glob_match("crates/*/src/*.rs", "crates/core/src/sub/x.rs"));
        assert!(glob_match(
            "**/fixtures/**",
            "crates/lint/tests/fixtures/a.rs"
        ));
        assert!(glob_match("src/lib.rs", "src/lib.rs"));
        assert!(!glob_match("src/lib.rs", "crates/src/lib.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match(
            "crates/core/src/quer?.rs",
            "crates/core/src/query.rs"
        ));
    }

    #[test]
    fn parse_minimal_config() {
        let cfg = Config::parse(
            r#"
            # comment
            [lint]
            exclude = ["vendor/**"] # trailing comment

            [rule.hot-path-no-panic]
            include = [
                "crates/core/src/query.rs",
                "crates/core/src/prob.rs",
            ]
            exclude = ["crates/core/src/prob_test.rs"]
            "#,
        )
        .unwrap();
        assert!(cfg.excluded("vendor/rand/src/lib.rs"));
        assert!(!cfg.excluded("crates/core/src/query.rs"));
        let rc = &cfg.rules["hot-path-no-panic"];
        assert!(rc.governs("crates/core/src/query.rs"));
        assert!(!rc.governs("crates/core/src/db.rs"));
        assert!(!rc.governs("crates/core/src/prob_test.rs"));
        assert_eq!(
            cfg.rules_for("crates/core/src/prob.rs"),
            vec!["hot-path-no-panic"]
        );
    }

    #[test]
    fn parse_errors_carry_lines() {
        let err = Config::parse("[lint]\nbogus").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(Config::parse("[wat]\n").is_err());
        assert!(Config::parse("[rule.x]\ninclude = unquoted").is_err());
        assert!(Config::parse("[rule.x]\nwhatever = \"v\"").is_err());
    }

    #[test]
    fn entry_points_and_unknown_calls_parse() {
        let cfg = Config::parse(
            "[rule.hot-path-no-panic]\ninclude = [\"crates/**\"]\n\
             entry-points = [\"execute_into\", \"Wal::*\", \"*_into\"]\n\
             unknown-calls = \"flag\"\n",
        )
        .unwrap();
        let rc = &cfg.rules["hot-path-no-panic"];
        assert_eq!(rc.entry_points, vec!["execute_into", "Wal::*", "*_into"]);
        assert!(rc.flag_unknown);
        let cfg = Config::parse("[rule.r]\nunknown-calls = \"allow\"\n").unwrap();
        assert!(!cfg.rules["r"].flag_unknown);
        assert!(Config::parse("[rule.r]\nunknown-calls = \"maybe\"\n").is_err());
    }

    #[test]
    fn single_string_values_and_multiline_arrays() {
        let cfg = Config::parse("[rule.r]\ninclude = \"a/b.rs\"").unwrap();
        assert!(cfg.rules["r"].governs("a/b.rs"));
        let cfg = Config::parse("[rule.r]\ninclude = [\n \"x.rs\",\n \"y.rs\"\n]").unwrap();
        assert_eq!(cfg.rules["r"].include, vec!["x.rs", "y.rs"]);
    }
}
