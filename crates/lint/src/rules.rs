//! The rule engine: file analysis, the seven project rules, and waivers.
//!
//! Each rule is a pure function over a [`FileAnalysis`] — the lexed token
//! stream plus derived structure (`#[cfg(test)]` regions, `fn` bodies,
//! brace matching, waiver comments). Rules emit [`Diagnostic`]s; the engine
//! then splits them into *active* and *waived* using the inline waiver
//! comments.
//!
//! # Waiver syntax
//!
//! ```text
//! // pv-lint: allow(<rule>, reason = "<why the invariant holds here>")
//! ```
//!
//! Placement defines scope:
//!
//! * **trailing** (after code on the same line) — waives that line only;
//! * **standalone above a statement** — waives through the statement's
//!   terminating `;`;
//! * **standalone above an item or block** (`fn`, `impl`, a `{`-opening
//!   statement) — waives through the matching closing brace. This is how a
//!   whole kernel documents one structural invariant (e.g. the product-tree
//!   indexing in `pv-core::prob`) without a waiver per line.
//!
//! A waiver **without a reason suppresses nothing** and is itself reported
//! under the reserved rule name [`WAIVER_MISSING_REASON`] — the reason *is*
//! the documentation the lint exists to force.

use crate::lexer::{lex, Token, TokenKind};

/// Reserved rule name for `pv-lint: allow(...)` comments with no
/// `reason = "..."`. Cannot be waived.
pub const WAIVER_MISSING_REASON: &str = "waiver-missing-reason";

/// One finding: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (kebab-case, as in `lint.toml`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found and why it matters.
    pub message: String,
}

/// A body-scoped checker: runs a rule's scan over one `fn` body (a `sig`
/// token range) — the unit the call-graph closure applies transitive rules
/// at. The `&str` is the function's name (for messages).
pub type BodyCheck = fn(&FileAnalysis<'_>, std::ops::Range<usize>, &str, &mut Vec<Diagnostic>);

/// A registered rule: name, one-line description, checker.
#[derive(Debug)]
pub struct Rule {
    /// Kebab-case rule name, referenced from `lint.toml` and waivers.
    pub name: &'static str,
    /// One-line description (for `--list-rules` and the JSON report).
    pub description: &'static str,
    check: fn(&FileAnalysis<'_>, &mut Vec<Diagnostic>),
    /// For transitive rules: the body-scoped form the engine applies to
    /// every function reachable from the rule's declared entry points.
    body_check: Option<BodyCheck>,
}

impl Rule {
    /// The body-scoped checker, when the rule supports transitive closure
    /// application (`None` for purely lexical/structural rules).
    pub fn body_check(&self) -> Option<BodyCheck> {
        self.body_check
    }

    /// Runs the file-scoped check (the engine's entry; `check` stays
    /// private so the registry is the only construction site).
    pub(crate) fn run_file(&self, a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
        (self.check)(a, out);
    }
}

/// Every rule the engine knows, in stable order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hot-path-no-panic",
        description: "no unwrap/expect/panic-family macros or []-indexing on the query hot path \
                      (typed QueryError or type-level invariants instead); transitive over the \
                      call-graph closure of the declared entry points",
        check: hot_path_no_panic,
        body_check: Some(no_panic_body),
    },
    Rule {
        name: "hot-path-no-alloc",
        description: "no per-call heap allocation (Vec::new/vec!/collect/to_vec/clone/format!) \
                      inside *_into kernels and everything they reach — the static complement of \
                      the counting-allocator test",
        check: hot_path_no_alloc,
        body_check: Some(no_alloc_body),
    },
    Rule {
        name: "unsafe-needs-safety-comment",
        description: "every `unsafe` block/fn/impl carries a SAFETY: comment within the three \
                      preceding lines",
        check: unsafe_needs_safety_comment,
        body_check: None,
    },
    Rule {
        name: "cow-discipline",
        description: "page bytes are only mutated through the designated Arc::get_mut/dirty-copy \
                      helpers (Arc::make_mut and stray Arc::get_mut flagged)",
        check: cow_discipline,
        body_check: None,
    },
    Rule {
        name: "codec-no-lossy-cast",
        description: "no bare `as` narrowing to sub-64-bit numeric types in codec/snapshot \
                      modules — use try_into + DecodeError (decode) or checked put_* helpers (encode)",
        check: codec_no_lossy_cast,
        body_check: None,
    },
    Rule {
        name: "pub-missing-docs",
        description: "every public item carries a doc comment (static backstop for \
                      #![deny(missing_docs)])",
        check: pub_missing_docs,
        body_check: None,
    },
    Rule {
        name: "io-no-unwrap",
        description: "no .unwrap()/.expect() on io::Result values in storage non-test code — \
                      propagate the error, retry via RetryPolicy, or panic with context via \
                      unwrap_or_else at a documented infallible boundary; transitive over the \
                      DurableDb/Wal closure",
        check: io_no_unwrap,
        body_check: Some(io_no_unwrap_body),
    },
    Rule {
        name: "wal-append-paired",
        description: "every non-test append_commit call site takes a WalMark first, syncs after, \
                      keeps a rollback_to on the error path, and never drops the #[must_use] \
                      mark/commit results (the acknowledged⟺logged protocol of ARCHITECTURE §3d)",
        check: wal_append_paired,
        body_check: None,
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// An inline waiver comment, parsed and scoped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule it waives.
    pub rule: String,
    /// True when a non-empty `reason = "..."` is present.
    pub has_reason: bool,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Inclusive line range the waiver covers.
    pub covers: (u32, u32),
}

/// Lexed source plus the derived structure every rule consumes.
#[derive(Debug)]
pub struct FileAnalysis<'a> {
    /// Workspace-relative path (diagnostic attribution).
    pub path: &'a str,
    /// The source text.
    pub src: &'a str,
    /// Significant tokens (trivia stripped), in order.
    pub sig: Vec<Token>,
    /// All tokens, including trivia (comments drive waivers/SAFETY checks).
    pub tokens: Vec<Token>,
    /// `sig`-index of a `{` → `sig`-index of its matching `}`.
    brace_match: Vec<Option<usize>>,
    /// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
    /// `fn` items: (name, body `sig` range) — body excludes the braces.
    fn_bodies: Vec<(String, std::ops::Range<usize>, u32)>,
    /// Parsed waiver comments.
    pub waivers: Vec<Waiver>,
}

impl<'a> FileAnalysis<'a> {
    /// Lexes and analyses one file.
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = lex(src);
        let sig: Vec<Token> = tokens.iter().filter(|t| !t.is_trivia()).copied().collect();
        let brace_match = match_braces(src, &sig);
        let mut a = FileAnalysis {
            path,
            src,
            sig,
            tokens,
            brace_match,
            test_ranges: Vec::new(),
            fn_bodies: Vec::new(),
            waivers: Vec::new(),
        };
        a.find_test_ranges();
        a.find_fn_bodies();
        a.find_waivers();
        a
    }

    fn text(&self, t: &Token) -> &'a str {
        t.text(self.src)
    }

    fn sig_text(&self, i: usize) -> &'a str {
        self.sig[i].text(self.src)
    }

    fn is_punct(&self, i: usize, c: &str) -> bool {
        self.sig[i].kind == TokenKind::Punct && self.sig_text(i) == c
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.sig[i].kind == TokenKind::Ident && self.sig_text(i) == name
    }

    /// True when `line` lies inside a `#[test]` / `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// From `sig` index `from`, finds the end of the item/statement that
    /// starts there: the `sig` index of the terminating `;` or of the `}`
    /// matching the first body `{`, whichever comes first at paren/bracket
    /// depth 0. Returns `from` itself if neither exists (malformed tail).
    fn item_end(&self, from: usize) -> usize {
        let mut depth = 0i32;
        for j in from..self.sig.len() {
            if self.is_punct(j, "(") || self.is_punct(j, "[") {
                depth += 1;
            } else if self.is_punct(j, ")") || self.is_punct(j, "]") {
                depth -= 1;
            } else if depth == 0 && self.is_punct(j, ";") {
                return j;
            } else if depth == 0 && self.is_punct(j, "{") {
                return self.brace_match[j].unwrap_or(j);
            } else if depth == 0 && self.is_punct(j, "}") {
                return from;
            }
        }
        from
    }

    /// Detects `#[test]`-ish attributes and records the lines of the items
    /// they annotate.
    fn find_test_ranges(&mut self) {
        let mut i = 0;
        while i < self.sig.len() {
            if self.is_punct(i, "#") {
                // `#[…]` or `#![…]`.
                let mut j = i + 1;
                if j < self.sig.len() && self.is_punct(j, "!") {
                    j += 1;
                }
                if j < self.sig.len() && self.is_punct(j, "[") {
                    let close = self.bracket_match(j);
                    let inner: Vec<&str> = (j + 1..close)
                        .filter(|&k| self.sig[k].kind == TokenKind::Ident)
                        .map(|k| self.sig_text(k))
                        .collect();
                    let testish = inner.first() == Some(&"test")
                        || (inner.first() == Some(&"cfg") && inner.contains(&"test"));
                    if testish {
                        // Skip any further attributes between this one and
                        // the item it annotates.
                        let mut k = close + 1;
                        while k < self.sig.len() && self.is_punct(k, "#") {
                            let mut b = k + 1;
                            if b < self.sig.len() && self.is_punct(b, "!") {
                                b += 1;
                            }
                            if b < self.sig.len() && self.is_punct(b, "[") {
                                k = self.bracket_match(b) + 1;
                            } else {
                                break;
                            }
                        }
                        if k < self.sig.len() {
                            let end = self.item_end(k);
                            self.test_ranges
                                .push((self.sig[i].line, self.sig[end].line));
                            i = end + 1;
                            continue;
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// `sig` index of the `]` matching the `[` at `open` (bracket depth).
    fn bracket_match(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for j in open..self.sig.len() {
            if self.is_punct(j, "[") {
                depth += 1;
            } else if self.is_punct(j, "]") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.sig.len().saturating_sub(1)
    }

    /// Records every `fn` item's name and body token range.
    fn find_fn_bodies(&mut self) {
        for i in 0..self.sig.len() {
            if !self.is_ident(i, "fn") || i + 1 >= self.sig.len() {
                continue;
            }
            let name_tok = &self.sig[i + 1];
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            let name = self.text(name_tok).to_string();
            // Find the body `{` at paren/bracket depth 0; a `;` first means
            // a bodyless trait-method declaration.
            let mut depth = 0i32;
            for j in i + 2..self.sig.len() {
                if self.is_punct(j, "(") || self.is_punct(j, "[") {
                    depth += 1;
                } else if self.is_punct(j, ")") || self.is_punct(j, "]") {
                    depth -= 1;
                } else if depth == 0 && self.is_punct(j, ";") {
                    break;
                } else if depth == 0 && self.is_punct(j, "{") {
                    if let Some(close) = self.brace_match[j] {
                        self.fn_bodies.push((name, j + 1..close, self.sig[i].line));
                    }
                    break;
                }
            }
        }
    }

    /// Parses `pv-lint: allow(...)` comments and computes their scope.
    fn find_waivers(&mut self) {
        let mut last_sig_line = 0u32;
        let mut waivers = Vec::new();
        for (ti, t) in self.tokens.iter().enumerate() {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                if !matches!(t.kind, TokenKind::Whitespace) {
                    last_sig_line = t.line;
                }
                continue;
            }
            // The marker must *start* the comment (after the `//`/`/*`
            // opener) — prose that merely mentions the syntax, like this
            // sentence, is not a waiver.
            let text = self.text(t);
            let body = text
                .trim_start_matches('/')
                .trim_start_matches(['*', '!'])
                .trim_start();
            let Some(rest) = body.strip_prefix("pv-lint:") else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(args) = rest.strip_prefix("allow(").and_then(|r| {
                // Up to the matching close paren; reasons contain no parens
                // worth nesting over, so the last `)` is fine.
                r.rfind(')').map(|p| &r[..p])
            }) else {
                // A malformed waiver is a waiver without a reason: report it
                // rather than silently ignoring the intent.
                waivers.push(Waiver {
                    rule: String::new(),
                    has_reason: false,
                    line: t.line,
                    covers: (t.line, t.line),
                });
                continue;
            };
            let (rule, reason_part) = match args.split_once(',') {
                Some((r, rest)) => (r.trim(), rest.trim()),
                None => (args.trim(), ""),
            };
            let has_reason = reason_part
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .map(str::trim)
                .is_some_and(|r| {
                    let quoted = r
                        .strip_prefix('"')
                        .and_then(|q| q.rfind('"').map(|e| &r[1..=e]));
                    quoted.is_some_and(|q| !q.trim_matches('"').trim().is_empty())
                });
            let trailing = last_sig_line == t.line;
            let covers = if trailing {
                (t.line, t.line)
            } else {
                // Scope: through the next statement/item.
                match self
                    .tokens
                    .iter()
                    .skip(ti + 1)
                    .find(|n| !n.is_trivia())
                    .map(|n| n.line)
                {
                    Some(next_line) => {
                        let from = self.sig.partition_point(|s| s.line < next_line);
                        if from < self.sig.len() {
                            let end = self.item_end(from);
                            (t.line, self.sig[end].line)
                        } else {
                            (t.line, next_line)
                        }
                    }
                    None => (t.line, t.line),
                }
            };
            waivers.push(Waiver {
                rule: rule.to_string(),
                has_reason,
                line: t.line,
                covers,
            });
        }
        self.waivers = waivers;
    }
}

/// Brace matching over significant tokens; `{` index → `}` index.
fn match_braces(src: &str, sig: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; sig.len()];
    let mut stack = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text(src) {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out[open] = Some(i);
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs `rules` (by name) over one file, splitting findings into
/// (active, waived) using the file's waiver comments. Unknown rule names
/// are ignored (the config layer validates them).
pub fn check_file(
    path: &str,
    src: &str,
    rule_names: &[&str],
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let analysis = FileAnalysis::new(path, src);
    let mut raw = Vec::new();
    for name in rule_names {
        if let Some(rule) = rule_by_name(name) {
            (rule.check)(&analysis, &mut raw);
        }
    }
    split_waived(&analysis, raw)
}

/// Splits raw findings into (active, waived) using the file's waiver
/// comments, and reports reason-less waivers. One call per file — the
/// multi-file engine routes both its file-scoped and its closure-scoped
/// findings for a file through here together.
pub fn split_waived(
    analysis: &FileAnalysis<'_>,
    raw: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut active = Vec::new();
    let mut waived = Vec::new();
    for d in raw {
        let w = analysis.waivers.iter().any(|w| {
            w.rule == d.rule && w.has_reason && (w.covers.0..=w.covers.1).contains(&d.line)
        });
        if w {
            waived.push(d);
        } else {
            active.push(d);
        }
    }
    // Waivers without a reason are violations in their own right — the
    // reason is the artefact this lint exists to force into the tree.
    for w in &analysis.waivers {
        if !w.has_reason {
            active.push(Diagnostic {
                rule: WAIVER_MISSING_REASON,
                file: analysis.path.to_string(),
                line: w.line,
                message: if w.rule.is_empty() {
                    "malformed pv-lint waiver (expected `pv-lint: allow(<rule>, reason = \"...\")`)"
                        .to_string()
                } else {
                    format!(
                        "waiver for `{}` carries no reason — add `, reason = \"...\"` \
                         explaining why the invariant holds here",
                        w.rule
                    )
                },
            });
        }
    }
    active.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    waived.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (active, waived)
}

fn diag(
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    a: &FileAnalysis<'_>,
    line: u32,
    msg: String,
) {
    out.push(Diagnostic {
        rule,
        file: a.path.to_string(),
        line,
        message: msg,
    });
}

/// `hot-path-no-panic`: `.unwrap()` / `.expect()`, the panic-macro family,
/// and `[]` indexing/slicing (which can panic) are banned in governed files
/// outside `#[cfg(test)]`. Restructure (iterators, `get`, typed errors) or
/// waive with the invariant that guarantees in-bounds/infallible.
fn hot_path_no_panic(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    no_panic_scan(a, 0..a.sig.len(), out);
}

/// Body-scoped form of `hot-path-no-panic` for closure application.
fn no_panic_body(
    a: &FileAnalysis<'_>,
    body: std::ops::Range<usize>,
    _fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    no_panic_scan(a, body, out);
}

fn no_panic_scan(a: &FileAnalysis<'_>, range: std::ops::Range<usize>, out: &mut Vec<Diagnostic>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for i in range {
        let t = &a.sig[i];
        if a.in_test(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let name = a.sig_text(i);
                if (name == "unwrap" || name == "expect")
                    && i > 0
                    && a.is_punct(i - 1, ".")
                    && i + 1 < a.sig.len()
                    && a.is_punct(i + 1, "(")
                {
                    diag(
                        out,
                        "hot-path-no-panic",
                        a,
                        t.line,
                        format!(
                            "`.{name}()` on the hot path — return a typed QueryError or make the \
                         invariant type-level"
                        ),
                    );
                } else if PANIC_MACROS.contains(&name)
                    && i + 1 < a.sig.len()
                    && a.is_punct(i + 1, "!")
                {
                    diag(
                        out,
                        "hot-path-no-panic",
                        a,
                        t.line,
                        format!(
                            "`{name}!` on the hot path — a malformed request must come back as a \
                         value, not take the process down"
                        ),
                    );
                }
            }
            TokenKind::Punct if a.sig_text(i) == "[" && i > 0 => {
                // Keywords that legitimately precede `[` in type or
                // expression position (`&mut [f64]`, `dyn [..]`, `return
                // [..]`) are not indexing.
                const NOT_RECEIVERS: &[&str] = &[
                    "mut", "dyn", "as", "in", "return", "break", "else", "match", "if", "while",
                    "loop", "for", "move", "ref", "box", "yield", "impl", "where", "const",
                ];
                let prev = &a.sig[i - 1];
                let indexing = match prev.kind {
                    TokenKind::Ident => !NOT_RECEIVERS.contains(&a.sig_text(i - 1)),
                    TokenKind::Punct => matches!(a.sig_text(i - 1), ")" | "]" | "?"),
                    _ => false,
                };
                if indexing {
                    diag(
                        out,
                        "hot-path-no-panic",
                        a,
                        t.line,
                        format!(
                            "`{}[…]` indexing can panic — use .get()/.get_mut(), iterators, or \
                         waive with the bounds invariant",
                            a.sig_text(i - 1)
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// `hot-path-no-alloc`: inside `fn *_into` bodies, flag calls that allocate
/// afresh on every invocation. Growth of reused buffers (`push`,
/// `extend_from_slice`, `resize`) is steady-state free and allowed.
fn hot_path_no_alloc(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    for (fn_name, body, fn_line) in &a.fn_bodies {
        if !fn_name.ends_with("_into") || a.in_test(*fn_line) {
            continue;
        }
        no_alloc_scan(a, body.clone(), fn_name, out);
    }
}

/// Body-scoped form of `hot-path-no-alloc`: applied to every function the
/// closure reaches, `*_into`-named or not — being called from a kernel is
/// what puts a helper on the hot path, not its name.
fn no_alloc_body(
    a: &FileAnalysis<'_>,
    body: std::ops::Range<usize>,
    fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    no_alloc_scan(a, body, fn_name, out);
}

fn no_alloc_scan(
    a: &FileAnalysis<'_>,
    body: std::ops::Range<usize>,
    fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];
    const ALLOC_MACROS: &[&str] = &["vec", "format"];
    const CONTAINERS: &[&str] = &[
        "Vec", "VecDeque", "Box", "String", "Arc", "Rc", "BTreeMap", "BTreeSet", "HashMap",
        "HashSet",
    ];
    const CONTAINER_CTORS: &[&str] = &["new", "with_capacity", "from", "default"];
    for i in body.clone() {
        let t = &a.sig[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = a.sig_text(i);
        if ALLOC_METHODS.contains(&name) && i > body.start && a.is_punct(i - 1, ".") {
            diag(
                out,
                "hot-path-no-alloc",
                a,
                t.line,
                format!(
                    "`.{name}()` inside `{fn_name}` allocates per call — reuse the scratch \
                     buffers instead (the runtime counterpart is tests/alloc_steady_state.rs)"
                ),
            );
        } else if ALLOC_MACROS.contains(&name) && i + 1 < a.sig.len() && a.is_punct(i + 1, "!") {
            diag(
                out,
                "hot-path-no-alloc",
                a,
                t.line,
                format!(
                    "`{name}!` inside `{fn_name}` allocates per call — write into a reused buffer"
                ),
            );
        } else if CONTAINER_CTORS.contains(&name)
            && i >= body.start + 3
            && a.is_punct(i - 1, ":")
            && a.is_punct(i - 2, ":")
            && a.sig[i - 3].kind == TokenKind::Ident
            && CONTAINERS.contains(&a.sig_text(i - 3))
        {
            diag(
                out,
                "hot-path-no-alloc",
                a,
                t.line,
                format!(
                    "`{}::{name}` inside `{fn_name}` creates a fresh container per call — \
                     take a scratch buffer parameter instead",
                    a.sig_text(i - 3)
                ),
            );
        }
    }
}

/// `unsafe-needs-safety-comment`: every `unsafe` keyword (block, fn, impl)
/// must have a comment containing `SAFETY` on its own line or one of the
/// three lines above it.
fn unsafe_needs_safety_comment(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    let safety_lines: Vec<u32> = a
        .tokens
        .iter()
        .filter(|t| {
            matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && (t.text(a.src).contains("SAFETY") || t.text(a.src).contains("# Safety"))
        })
        .map(|t| t.line)
        .collect();
    for i in 0..a.sig.len() {
        if !a.is_ident(i, "unsafe") {
            continue;
        }
        let line = a.sig[i].line;
        let covered = safety_lines.iter().any(|&l| l <= line && l + 3 >= line);
        if !covered {
            diag(
                out,
                "unsafe-needs-safety-comment",
                a,
                line,
                "`unsafe` without a `// SAFETY:` comment in the three preceding lines — \
                 state the invariant that makes this sound"
                    .to_string(),
            );
        }
    }
}

/// `cow-discipline`: in `pv-storage`, page bytes may only be mutated via
/// the designated `Arc::get_mut`-fast-path/dirty-copy helpers. Any
/// `Arc::make_mut` (or unchecked variant) is flagged outright; `Arc::get_mut`
/// is flagged so that only the helpers themselves — which carry waivers
/// documenting the discipline — may use it.
fn cow_discipline(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..a.sig.len() {
        let t = &a.sig[i];
        if t.kind != TokenKind::Ident || a.in_test(t.line) {
            continue;
        }
        let name = a.sig_text(i);
        if name == "make_mut" || name == "get_mut_unchecked" {
            diag(
                out,
                "cow-discipline",
                a,
                t.line,
                format!(
                    "`{name}` bypasses the page copy-on-write discipline — route the mutation \
                 through the Pager::write get_mut/dirty-copy path"
                ),
            );
        } else if name == "get_mut"
            && i >= 3
            && a.is_punct(i - 1, ":")
            && a.is_punct(i - 2, ":")
            && a.is_ident(i - 3, "Arc")
        {
            diag(
                out,
                "cow-discipline",
                a,
                t.line,
                "`Arc::get_mut` on shared bytes — only the designated dirty-copy helpers may \
                 do this (they carry the waiver documenting the discipline)"
                    .to_string(),
            );
        }
    }
}

/// `codec-no-lossy-cast`: a bare `as` cast to a sub-64-bit numeric type in
/// a codec/snapshot module can silently truncate on-disk values. Decode
/// paths must use `try_into` + `DecodeError`; encode paths the checked
/// `put_*` helpers.
fn codec_no_lossy_cast(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
    for i in 0..a.sig.len().saturating_sub(1) {
        if !a.is_ident(i, "as") || a.in_test(a.sig[i].line) {
            continue;
        }
        if a.sig[i + 1].kind == TokenKind::Ident && NARROW.contains(&a.sig_text(i + 1)) {
            diag(
                out,
                "codec-no-lossy-cast",
                a,
                a.sig[i].line,
                format!(
                    "bare `as {}` can silently truncate — use try_into (DecodeError on decode, \
                 the checked codec::put_* helpers on encode)",
                    a.sig_text(i + 1)
                ),
            );
        }
    }
}

/// `io-no-unwrap`: `.unwrap()` / `.expect()` on an `io::Result` outside
/// tests. An I/O failure is an environment condition, not a logic bug, so
/// it must surface as a value (the wal/durable layers carry it as
/// `WalError`/`DbError`, transient kinds retry via `RetryPolicy`) — or, at
/// a boundary that is infallible by contract (e.g. the `Pager` trait),
/// convert explicitly with `unwrap_or_else(|e| panic!(...))` so the panic
/// carries the underlying error.
///
/// Heuristic: the unwrap's statement (back to the nearest `;`/`{`/`}`)
/// contains an I/O-operation call (`open`, `read_exact`, `sync_all`, the
/// `Fs` trait surface, …). Slice `try_into().unwrap()` and other
/// infallible conversions in the same files stay unflagged.
fn io_no_unwrap(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    io_unwrap_scan(a, 0..a.sig.len(), out);
}

/// Body-scoped form of `io-no-unwrap` for closure application.
fn io_no_unwrap_body(
    a: &FileAnalysis<'_>,
    body: std::ops::Range<usize>,
    _fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    io_unwrap_scan(a, body, out);
}

fn io_unwrap_scan(a: &FileAnalysis<'_>, range: std::ops::Range<usize>, out: &mut Vec<Diagnostic>) {
    const IO_OPS: &[&str] = &[
        "read",
        "read_exact",
        "read_to_end",
        "read_to_string",
        "write",
        "write_all",
        "append",
        "seek",
        "sync",
        "sync_all",
        "sync_data",
        "sync_dir",
        "flush",
        "metadata",
        "set_len",
        "open",
        "create",
        "create_dir_all",
        "rename",
        "remove",
        "remove_file",
        "remove_dir",
        "remove_dir_all",
        "read_dir",
        "copy",
        "truncate",
    ];
    for i in range {
        let t = &a.sig[i];
        if t.kind != TokenKind::Ident || a.in_test(t.line) {
            continue;
        }
        let name = a.sig_text(i);
        if name != "unwrap" && name != "expect" {
            continue;
        }
        if !(i > 0 && a.is_punct(i - 1, ".") && i + 1 < a.sig.len() && a.is_punct(i + 1, "(")) {
            continue;
        }
        // Walk back through the statement looking for an I/O-op call.
        let mut io_op = None;
        let mut j = i - 1;
        while j > 0 {
            j -= 1;
            let s = &a.sig[j];
            if s.kind == TokenKind::Punct && matches!(a.sig_text(j), ";" | "{" | "}") {
                break;
            }
            if s.kind == TokenKind::Ident
                && IO_OPS.contains(&a.sig_text(j))
                && j + 1 < a.sig.len()
                && a.is_punct(j + 1, "(")
            {
                io_op = Some(a.sig_text(j));
                break;
            }
        }
        if let Some(op) = io_op {
            diag(
                out,
                "io-no-unwrap",
                a,
                t.line,
                format!(
                    "`.{name}()` on the result of `{op}(…)` — an I/O error is an environment \
                 condition, not a bug: propagate it (WalError/DbError, RetryPolicy for \
                 transient kinds) or convert via `unwrap_or_else(|e| panic!(…))` at a \
                 documented infallible boundary"
                ),
            );
        }
    }
}

/// `pub-missing-docs`: every `pub` item (not `pub(crate)`, not `pub use`)
/// must be preceded by a doc comment or a `#[doc…]` attribute.
fn pub_missing_docs(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "mod", "static", "type", "union",
    ];
    const MODIFIERS: &[&str] = &["unsafe", "async", "extern"];
    'outer: for i in 0..a.sig.len() {
        if !a.is_ident(i, "pub") || a.in_test(a.sig[i].line) {
            continue;
        }
        if i + 1 < a.sig.len() && a.is_punct(i + 1, "(") {
            continue; // pub(crate)/pub(super): not public API
        }
        // Identify the item keyword, skipping modifiers. `const` is both a
        // modifier (`pub const fn`) and an item (`pub const X`).
        let mut j = i + 1;
        let mut item: Option<&str> = None;
        while j < a.sig.len() {
            let t = &a.sig[j];
            if t.kind == TokenKind::Str {
                j += 1; // `extern "C"`
                continue;
            }
            if t.kind != TokenKind::Ident {
                break;
            }
            let w = a.sig_text(j);
            if w == "use" {
                continue 'outer; // re-exports carry the source item's docs
            }
            if w == "const" {
                if j + 1 < a.sig.len() && a.is_ident(j + 1, "fn") {
                    j += 1;
                    continue;
                }
                item = Some("const");
                break;
            }
            if MODIFIERS.contains(&w) {
                j += 1;
                continue;
            }
            if ITEM_KEYWORDS.contains(&w) {
                item = Some(w);
            }
            break;
        }
        let Some(item) = item else {
            continue; // a struct field or something item-unlike: rustc covers it
        };
        // `pub mod name;` is routinely documented by `//!` inner docs in the
        // module's own file (which rustc's missing_docs accepts) — only
        // inline `pub mod name { … }` needs outer docs here.
        if item == "mod" && j + 2 < a.sig.len() && a.is_punct(j + 2, ";") {
            continue;
        }
        // Walk the full token stream backwards from `pub`, skipping
        // whitespace and attributes, looking for a doc comment.
        let pub_tok = &a.sig[i];
        let mut k = a
            .tokens
            .iter()
            .position(|t| t.start == pub_tok.start)
            .unwrap_or(0);
        let documented = loop {
            if k == 0 {
                break false;
            }
            k -= 1;
            let t = &a.tokens[k];
            match t.kind {
                TokenKind::Whitespace => continue,
                // Doc comments document; plain comments (e.g. a pv-lint
                // waiver between the docs and the item) are skipped, as
                // rustc attaches docs across them.
                TokenKind::LineComment => {
                    if t.text(a.src).starts_with("///") {
                        break true;
                    }
                }
                TokenKind::BlockComment => {
                    if t.text(a.src).starts_with("/**") {
                        break true;
                    }
                }
                TokenKind::Punct if t.text(a.src) == "]" => {
                    // Skip the attribute `#[…]`; accept `#[doc…]`.
                    let mut depth = 0i32;
                    let mut doc_attr = false;
                    loop {
                        let t = &a.tokens[k];
                        match t.kind {
                            TokenKind::Punct if t.text(a.src) == "]" => depth += 1,
                            TokenKind::Punct if t.text(a.src) == "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokenKind::Ident if t.text(a.src) == "doc" => doc_attr = true,
                            _ => {}
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    // Step over the `#`.
                    if k > 0 && a.tokens[k - 1].text(a.src) == "#" {
                        k -= 1;
                    }
                    if doc_attr {
                        break true;
                    }
                }
                _ => break false,
            }
        };
        if !documented {
            diag(
                out,
                "pub-missing-docs",
                a,
                pub_tok.line,
                format!(
                    "public `{item}` without a doc comment — pv-core's API surface is documented \
                 (static backstop for #![deny(missing_docs)])"
                ),
            );
        }
    }
}

/// `wal-append-paired`: the acknowledged⟺logged protocol, checked
/// structurally. In every non-test function that calls `append_commit`:
///
/// * a `mark()` must be taken *before* the append (so a failure can be
///   rolled back to a known-good WAL length);
/// * a `sync()`/`sync_data()`/`sync_all()` must follow the append in the
///   same function (fsync before the commit is published);
/// * a `rollback_to(…)` must appear somewhere in the function (the error
///   path durably undoes the append);
/// * the results of `mark`/`append_commit`/`rollback_to` are `#[must_use]`
///   (`WalMark`, offsets, `io::Result`) and must be bound, propagated, or
///   otherwise consumed — a dropped mark is an unreachable rollback.
///
/// `DurableDb::commit` is the reference implementation of the shape this
/// rule accepts.
fn wal_append_paired(a: &FileAnalysis<'_>, out: &mut Vec<Diagnostic>) {
    const MUST_USE_CALLS: &[&str] = &["mark", "append_commit", "rollback_to"];
    let items = crate::parser::parse_items(a.src, &a.sig);
    for it in &items {
        if it.body.is_none() || a.in_test(it.line) {
            continue;
        }
        let non_macro = |c: &&crate::parser::CallSite| !matches!(c.callee, crate::parser::Callee::Macro(_));
        let appends: Vec<_> = it
            .calls
            .iter()
            .filter(non_macro)
            .filter(|c| c.callee.name() == "append_commit")
            .collect();
        if appends.is_empty() {
            continue;
        }
        let has_rollback = it
            .calls
            .iter()
            .filter(non_macro)
            .any(|c| c.callee.name() == "rollback_to");
        for call in &appends {
            if a.in_test(call.line) {
                continue;
            }
            let mark_before = it.calls.iter().filter(non_macro).any(|c| {
                c.callee.name() == "mark" && c.sig_index < call.sig_index
            });
            let sync_after = it.calls.iter().filter(non_macro).any(|c| {
                matches!(c.callee.name(), "sync" | "sync_data" | "sync_all")
                    && c.sig_index > call.sig_index
            });
            if !mark_before {
                diag(
                    out,
                    "wal-append-paired",
                    a,
                    call.line,
                    "`append_commit` without a prior `mark()` in the same function — take a \
                     WalMark first so a failed commit can roll the log back"
                        .to_string(),
                );
            }
            if !sync_after {
                diag(
                    out,
                    "wal-append-paired",
                    a,
                    call.line,
                    "`append_commit` with no `sync()` after it in the same function — \
                     acknowledged⟺logged requires fsync before the commit is published"
                        .to_string(),
                );
            }
            if !has_rollback {
                diag(
                    out,
                    "wal-append-paired",
                    a,
                    call.line,
                    "`append_commit` with no `rollback_to(mark)` anywhere in the function — \
                     the error path must durably undo the append"
                        .to_string(),
                );
            }
        }
        // #[must_use] discipline, checked only in functions that append —
        // `mark` is too generic a name to police everywhere.
        for call in it.calls.iter().filter(non_macro) {
            let name = call.callee.name();
            if !MUST_USE_CALLS.contains(&name) || a.in_test(call.line) {
                continue;
            }
            if call_result_dropped(a, call.sig_index) {
                diag(
                    out,
                    "wal-append-paired",
                    a,
                    call.line,
                    format!(
                        "result of `{name}` is dropped — WalMark/DurableCommit/io::Result are \
                         #[must_use]: bind it, propagate with `?`, or handle the error arm"
                    ),
                );
            }
        }
    }
}

/// True when the call whose name token is at `name_idx` has its result
/// dropped: the statement ends at the call's `)` with no binding (`let`),
/// assignment, `return`, or match/if head consuming the value.
fn call_result_dropped(a: &FileAnalysis<'_>, name_idx: usize) -> bool {
    // Locate the argument list: `name(` or `name::<T>(`.
    let mut open = name_idx + 1;
    if open + 2 < a.sig.len()
        && a.is_punct(open, ":")
        && a.is_punct(open + 1, ":")
        && a.is_punct(open + 2, "<")
    {
        let mut depth = 0i32;
        let mut j = open + 2;
        while j < a.sig.len() {
            if a.is_punct(j, "<") {
                depth += 1;
            } else if a.is_punct(j, ">") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        open = j + 1;
    }
    if open >= a.sig.len() || !a.is_punct(open, "(") {
        return false; // not a call shape after all — don't guess
    }
    let mut depth = 0i32;
    let mut close = open;
    while close < a.sig.len() {
        if a.is_punct(close, "(") {
            depth += 1;
        } else if a.is_punct(close, ")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    if close + 1 >= a.sig.len() {
        return false;
    }
    // Consumed directly after the call?
    let next = close + 1;
    if a.sig[next].kind == TokenKind::Punct {
        match a.sig_text(next) {
            "?" | "." | ")" | "," | "}" | "{" => return false,
            ";" => {}
            _ => return false, // operators etc. consume the value
        }
    } else {
        return false; // `)` followed by an ident: match-arm guard or similar
    }
    // `…();` — dropped unless the statement head binds or redirects it.
    let mut k = name_idx;
    while k > 0 {
        k -= 1;
        if a.sig[k].kind == TokenKind::Punct {
            match a.sig_text(k) {
                ";" | "{" | "}" => return true, // statement start reached
                "=" => {
                    // Assignment consumes; comparisons (`==`, `<=`, `>=`,
                    // `!=`) and fat arrows do not end the search.
                    let cmp = (k > 0 && matches!(a.sig_text(k - 1), "=" | "<" | ">" | "!"))
                        || (k + 1 < a.sig.len() && matches!(a.sig_text(k + 1), "=" | ">"));
                    if !cmp {
                        return false;
                    }
                }
                _ => {}
            }
        } else if a.sig[k].kind == TokenKind::Ident
            && matches!(a.sig_text(k), "let" | "return" | "match" | "if" | "while")
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: &str, src: &str) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        check_file("test.rs", src, &[rule])
    }

    #[test]
    fn no_panic_flags_and_waives() {
        let src = "fn f(v: &[u32]) -> u32 { v.iter().next().unwrap(); v[0] }";
        let (active, _) = run("hot-path-no-panic", src);
        assert_eq!(active.len(), 2, "{active:?}");
        let waived_src = "fn f(v: &[u32]) -> u32 {\n    // pv-lint: allow(hot-path-no-panic, reason = \"caller checked\")\n    v[0]\n}";
        let (active, waived) = run("hot-path-no-panic", waived_src);
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(waived.len(), 1);
    }

    #[test]
    fn no_panic_skips_tests_macros_attrs() {
        let src = "#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); y[0]; panic!(); }\n}\n";
        assert!(run("hot-path-no-panic", src).0.is_empty());
        // vec![…] and #[…] are not indexing; unwrap_or_else is not unwrap.
        let src2 =
            "fn f() { let v = vec![1]; foo.unwrap_or_else(|| 3); }\n#[derive(Debug)]\nstruct S;";
        assert!(run("hot-path-no-panic", src2).0.is_empty());
    }

    #[test]
    fn fn_scope_waiver_covers_whole_body() {
        let src = "\
// pv-lint: allow(hot-path-no-panic, reason = \"indices bounded by construction\")
fn kernel_into(t: &mut [f64]) {
    t[0] = t[1];
    t[2] = t[3];
}
fn other(v: &[f64]) -> f64 { v[9] }
";
        let (active, waived) = run("hot-path-no-panic", src);
        assert_eq!(waived.len(), 4, "{waived:?}");
        assert_eq!(active.len(), 1, "{active:?}");
        assert_eq!(active[0].line, 6);
    }

    #[test]
    fn waiver_without_reason_is_a_violation_and_suppresses_nothing() {
        let src = "fn f(v: &[u32]) -> u32 {\n    // pv-lint: allow(hot-path-no-panic)\n    v[0]\n}";
        let (active, waived) = run("hot-path-no-panic", src);
        assert!(waived.is_empty());
        assert_eq!(active.len(), 2, "{active:?}");
        assert!(active.iter().any(|d| d.rule == WAIVER_MISSING_REASON));
        assert!(active.iter().any(|d| d.rule == "hot-path-no-panic"));
    }

    #[test]
    fn no_alloc_flags_only_into_kernels() {
        let src = "\
fn fill_into(out: &mut Vec<f64>) {
    let tmp: Vec<f64> = Vec::new();
    let v = data.to_vec();
    let s: Vec<u32> = xs.iter().collect();
    out.push(1.0);
    out.extend_from_slice(&[2.0]);
}
fn free_fn() { let v = data.to_vec(); }
";
        let (active, _) = run("hot-path-no-alloc", src);
        assert_eq!(active.len(), 3, "{active:?}");
        assert!(active.iter().all(|d| (2..=4).contains(&d.line)));
    }

    #[test]
    fn unsafe_requires_nearby_safety_comment() {
        let bad = "unsafe fn f() {}\n";
        assert_eq!(run("unsafe-needs-safety-comment", bad).0.len(), 1);
        let good = "// SAFETY: no-op\nunsafe fn f() {}\n";
        assert!(run("unsafe-needs-safety-comment", good).0.is_empty());
        let far = "// SAFETY: too far away\n\n\n\n\nunsafe fn f() {}\n";
        assert_eq!(run("unsafe-needs-safety-comment", far).0.len(), 1);
    }

    #[test]
    fn cow_discipline_flags_make_mut_and_arc_get_mut() {
        let src = "fn f() { Arc::make_mut(&mut a); Arc::get_mut(&mut b); c.get_mut(0); }";
        let (active, _) = run("cow-discipline", src);
        assert_eq!(active.len(), 2, "{active:?}"); // BTreeMap-style .get_mut is fine
    }

    #[test]
    fn lossy_cast_flags_narrowing_only() {
        let src = "fn f(n: usize) { let a = n as u32; let b = n as u64; let c = 3u32 as usize; }";
        let (active, _) = run("codec-no-lossy-cast", src);
        assert_eq!(active.len(), 1, "{active:?}");
    }

    #[test]
    fn pub_missing_docs_basics() {
        let bad = "pub fn undocumented() {}\n";
        assert_eq!(run("pub-missing-docs", bad).0.len(), 1);
        let good = "/// Documented.\npub fn documented() {}\n";
        assert!(run("pub-missing-docs", good).0.is_empty());
        let attr_between = "/// Documented.\n#[inline]\npub fn documented() {}\n";
        assert!(run("pub-missing-docs", attr_between).0.is_empty());
        let scoped = "pub(crate) fn internal() {}\npub use foo::bar;\n";
        assert!(run("pub-missing-docs", scoped).0.is_empty());
        let field = "/// S.\npub struct S { pub x: u32 }\n";
        assert!(run("pub-missing-docs", field).0.is_empty());
        let const_fn = "pub const fn k() {}\n";
        assert_eq!(run("pub-missing-docs", const_fn).0.len(), 1);
        // Out-of-line modules carry `//!` docs in their own file; only the
        // inline form needs outer docs.
        let mods = "pub mod outofline;\npub mod inline { }\n";
        let (active, _) = run("pub-missing-docs", mods);
        assert_eq!(active.len(), 1, "{active:?}");
        assert_eq!(active[0].line, 2);
    }

    #[test]
    fn io_unwrap_needs_io_call_in_statement() {
        // unwrap on an I/O call's result fires; slice try_into does not.
        let src = "fn f(p: &Path) { let f = File::open(p).unwrap(); f.sync_all().expect(\"s\"); }";
        let (active, _) = run("io-no-unwrap", src);
        assert_eq!(active.len(), 2, "{active:?}");
        let clean = "fn g(d: &[u8]) -> u64 { u64::from_le_bytes(d[..8].try_into().unwrap()) }";
        assert!(run("io-no-unwrap", clean).0.is_empty());
        // the sanctioned boundary idiom is not an unwrap
        let boundary = "fn h(f: &mut File, b: &mut [u8]) { f.read_exact(b).unwrap_or_else(|e| panic!(\"{e}\")); }";
        assert!(run("io-no-unwrap", boundary).0.is_empty());
        // the statement walk stops at `;`: I/O in a *previous* statement
        // does not taint a later infallible unwrap
        let prev = "fn k(f: &mut File) { f.sync_all()?; let x: u32 = 7i64.try_into().unwrap(); }";
        assert!(run("io-no-unwrap", prev).0.is_empty());
    }

    #[test]
    fn wal_append_paired_accepts_the_commit_shape() {
        // The shape DurableDb::commit actually has: mark → append (`?`) →
        // policy-gated sync → rollback_to consumed on the error arm.
        let src = "\
fn commit(w: &mut Wal) -> Result<u64, E> {
    let mark = w.mark();
    let off = w.append_commit(1, body)?;
    if policy.should_sync() {
        w.sync()?;
    }
    if validation_failed {
        if w.rollback_to(mark).is_err() {
            poison();
        }
    }
    Ok(off)
}
";
        let (active, _) = run("wal-append-paired", src);
        assert!(active.is_empty(), "{active:?}");
    }

    #[test]
    fn wal_append_paired_flags_bare_append() {
        let src = "fn bad(w: &mut Wal) {\n    w.append_commit(1, body);\n}\n";
        let (active, _) = run("wal-append-paired", src);
        // no mark, no sync, no rollback, result dropped
        assert_eq!(active.len(), 4, "{active:?}");
        assert!(active.iter().all(|d| d.line == 2));
    }

    #[test]
    fn wal_append_paired_flags_dropped_mark() {
        let src = "\
fn sloppy(w: &mut Wal, mark: WalMark) -> Result<(), E> {
    w.mark();
    let _off = w.append_commit(1, body)?;
    w.sync()?;
    w.rollback_to(mark)?;
    Ok(())
}
";
        let (active, _) = run("wal-append-paired", src);
        assert_eq!(active.len(), 1, "{active:?}");
        assert_eq!(active[0].line, 2);
        assert!(active[0].message.contains("dropped"));
    }

    #[test]
    fn wal_append_paired_ignores_tests_and_appendless_fns() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t(w: &mut Wal) { w.append_commit(1, b); }
}
fn unrelated(w: &Wal) { w.mark(); }
";
        let (active, _) = run("wal-append-paired", src);
        assert!(active.is_empty(), "{active:?}");
    }

    #[test]
    fn prose_mentioning_waiver_syntax_is_not_a_waiver() {
        let src = "/// Docs about `pv-lint: allow(...)` comments.\nfn f() {}\n";
        let (active, waived) = run("hot-path-no-panic", src);
        assert!(active.is_empty(), "{active:?}");
        assert!(waived.is_empty());
    }

    #[test]
    fn trailing_waiver_covers_only_its_line() {
        let src = "fn f(v: &[u32]) {\n    v[0]; // pv-lint: allow(hot-path-no-panic, reason = \"len checked above\")\n    v[1];\n}";
        let (active, waived) = run("hot-path-no-panic", src);
        assert_eq!(waived.len(), 1);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].line, 3);
    }
}
