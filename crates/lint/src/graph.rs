//! Workspace symbol table and call graph.
//!
//! Built from the [`crate::parser`] items of every scanned file, this is
//! the interprocedural half of pv-lint: transitive rules declare *entry
//! points* in `lint.toml` (`execute_into`, `Wal::*`, `*_into`, …) and the
//! graph computes the reachability closure their invariant must hold over.
//!
//! # Resolution strategy (deliberately conservative)
//!
//! Calls are resolved **by name**, never by type — there is no type
//! inference here and no `syn`. The failure modes are asymmetric: a missed
//! edge silently shrinks the checked closure (false negative), while an
//! over-resolved edge drags unrelated code into a hot-path invariant
//! (false positive storms). The rules below pick the conservative side of
//! each case:
//!
//! * **Plain calls** `foo(…)` resolve to first-party *free* functions named
//!   `foo` (all of them, any file — imports are not tracked).
//! * **Qualified calls** `Qual::foo(…)` resolve only when `Qual` is a known
//!   first-party impl type or trait (`Octree::insert`, `Step1Engine::step1_into`).
//!   `Self::foo(…)` substitutes the enclosing impl's type. A lowercase
//!   qualifier is treated as a module path (`codec::put_u32`) and resolves
//!   against free functions. Anything else (`Vec::new`, `u64::from_le_bytes`)
//!   routes to the **unknown node**.
//! * **Method calls** `.foo(…)` resolve to *every* first-party method named
//!   `foo` — unless the name is on the [`STD_SHADOWED`] stoplist of
//!   ubiquitous std/container method names (`get`, `len`, `push`, `clone`,
//!   `read`, …), where name-matching would wire `slice.get(i)` to some
//!   first-party `get` and poison the closure. Stoplisted names route to
//!   the unknown node; first-party hot-path surface deliberately avoids
//!   these names (`get_into`, `dists_sq_into`, `point_query_with`).
//! * **Macro invocations** route to the unknown node (their *expansion* is
//!   invisible; the panic-family macros are caught lexically in the body
//!   that invokes them).
//!
//! The unknown node is what rules "may flag or tolerate per-config": with
//! `unknown-calls = "flag"` a rule reports every unresolved plain/qualified
//! call made by a closure member; the default (`"allow"`) tolerates them.
//! `#[test]`/`#[cfg(test)]` items never resolve as targets and never seed
//! closures.

use crate::config;
use crate::parser::{Callee, Item};
use crate::rules::FileAnalysis;
use std::collections::{BTreeMap, VecDeque};

/// Method names so common on std/container types that name-based
/// resolution would be wrong more often than right. Calls to these resolve
/// to the unknown node; see the module docs for the asymmetry argument.
pub const STD_SHADOWED: &[&str] = &[
    "all", "and_then", "any", "append", "as_bytes", "as_mut", "as_ref", "as_slice", "chain",
    "clear", "clone", "cloned", "cmp", "collect", "contains", "contains_key", "copied", "count",
    "drain", "entry", "enumerate", "eq", "extend", "extend_from_slice", "fill", "filter", "find",
    "first", "flush", "fmt", "fold", "get", "get_mut", "hash", "insert", "into_iter", "is_empty",
    "iter", "iter_mut", "keys", "last", "len", "load", "map", "max", "min", "next", "partial_cmp",
    "pop", "position", "push", "read", "remove", "reset", "resize", "retain", "rev", "rewind",
    "run", "seek",
    "skip", "sort", "split", "stats", "store", "sum", "swap", "take", "then", "truncate",
    "unwrap_or", "values", "write", "zip",
];

/// One function node: a parsed item plus where it lives.
#[derive(Debug)]
pub struct Node {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Index into that file's item list.
    pub item: usize,
    /// The function's bare name.
    pub name: String,
    /// Impl type / trait qualifier, if a method.
    pub qual: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_qual: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[test]`/`#[cfg(test)]`.
    pub is_test: bool,
    /// Has a body (not a bodyless trait declaration).
    pub has_body: bool,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    /// All function nodes, in (file, item) order.
    pub nodes: Vec<Node>,
    /// Resolved call edges: node → callee nodes (deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Per node, the unresolved plain/qualified calls (name, line) that
    /// routed to the unknown node. Method/macro unknowns are not recorded —
    /// they are overwhelmingly std and would drown the signal.
    pub unknown_calls: Vec<Vec<(String, u32)>>,
}

impl Graph {
    /// Builds the graph over one analysis+items pair per file, in the same
    /// order diagnostics use.
    pub fn build(files: &[(&FileAnalysis<'_>, &[Item])]) -> Graph {
        let mut nodes = Vec::new();
        let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(files.len());
        for (fi, (a, items)) in files.iter().enumerate() {
            let mut ids = Vec::with_capacity(items.len());
            for (ii, it) in items.iter().enumerate() {
                ids.push(nodes.len());
                nodes.push(Node {
                    file: fi,
                    item: ii,
                    name: it.name.clone(),
                    qual: it.qual.clone(),
                    trait_qual: it.trait_qual.clone(),
                    line: it.line,
                    is_test: a.in_test(it.line),
                    has_body: it.body.is_some(),
                });
            }
            node_of.push(ids);
        }

        // Resolution maps over non-test nodes. Names are common enough that
        // a BTreeMap keeps iteration (and therefore output) deterministic.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.is_test {
                continue;
            }
            match &n.qual {
                None => free.entry(&n.name).or_default().push(id),
                Some(q) => {
                    methods.entry(&n.name).or_default().push(id);
                    by_qual.entry((q, &n.name)).or_default().push(id);
                    if let Some(t) = &n.trait_qual {
                        by_qual.entry((t, &n.name)).or_default().push(id);
                    }
                }
            }
        }

        let mut edges = vec![Vec::new(); nodes.len()];
        let mut unknown_calls = vec![Vec::new(); nodes.len()];
        for (fi, (_, items)) in files.iter().enumerate() {
            for (ii, it) in items.iter().enumerate() {
                let id = node_of[fi][ii];
                if nodes[id].is_test {
                    continue;
                }
                for call in &it.calls {
                    let targets: Option<&[usize]> = match &call.callee {
                        Callee::Free(name) => free.get(name.as_str()).map(|v| &v[..]),
                        Callee::Method(name) => {
                            if STD_SHADOWED.contains(&name.as_str()) {
                                None
                            } else {
                                methods.get(name.as_str()).map(|v| &v[..])
                            }
                        }
                        Callee::Qualified(q, name) => {
                            let q = if q == "Self" {
                                match &nodes[id].qual {
                                    Some(own) => own.as_str(),
                                    None => q.as_str(),
                                }
                            } else {
                                q.as_str()
                            };
                            if q == "crate" || q == "self" || q == "super" || is_module_like(q) {
                                free.get(name.as_str()).map(|v| &v[..])
                            } else {
                                by_qual.get(&(q, name.as_str())).map(|v| &v[..])
                            }
                        }
                        Callee::Macro(_) => None,
                    };
                    match targets {
                        Some(ts) if !ts.is_empty() => {
                            for &t in ts {
                                if !edges[id].contains(&t) {
                                    edges[id].push(t);
                                }
                            }
                        }
                        _ => {
                            // Method/macro unknowns are noise (std); record
                            // only the plain/qualified ones rules can act on.
                            if matches!(call.callee, Callee::Free(_) | Callee::Qualified(..)) {
                                unknown_calls[id]
                                    .push((call.callee.name().to_string(), call.line));
                            }
                        }
                    }
                }
            }
        }
        Graph {
            nodes,
            edges,
            unknown_calls,
        }
    }

    /// Nodes matching the entry-point patterns: `name` (free fn or method),
    /// `Type::name`, with `*`/`?` globbing in each part. Test items never
    /// seed a closure; bodyless declarations match (their impls are pulled
    /// in via the trait-qual map when called).
    pub fn entry_nodes(&self, patterns: &[String]) -> Vec<usize> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if n.is_test {
                continue;
            }
            if patterns.iter().any(|p| entry_matches(p, n)) {
                out.push(id);
            }
        }
        out
    }

    /// Reachability mask from the given entry patterns (BFS over resolved
    /// edges).
    pub fn closure(&self, patterns: &[String]) -> Vec<bool> {
        let mut reached = vec![false; self.nodes.len()];
        let mut queue: VecDeque<usize> = self.entry_nodes(patterns).into();
        for &id in &queue {
            reached[id] = true;
        }
        while let Some(id) = queue.pop_front() {
            for &t in &self.edges[id] {
                if !reached[t] {
                    reached[t] = true;
                    queue.push_back(t);
                }
            }
        }
        reached
    }

    /// Graphviz DOT rendering for `--graph`: every non-test node, resolved
    /// edges, per-rule closure membership as fill colors, and one dashed
    /// edge per node to the `unknown` sink when it makes unresolved
    /// plain/qualified calls.
    pub fn to_dot(&self, paths: &[&str], closures: &[(String, Vec<bool>)]) -> String {
        const FILLS: &[&str] = &["lightskyblue", "palegreen", "khaki", "lightsalmon", "plum"];
        let mut out = String::from("digraph pv_lint {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (ci, (rule, closure)) in closures.iter().enumerate() {
            let n = closure.iter().filter(|&&r| r).count();
            out.push_str(&format!(
                "  // closure[{rule}]: {n} node(s), fill={}\n",
                FILLS[ci % FILLS.len()]
            ));
        }
        let mut any_unknown = false;
        for (id, n) in self.nodes.iter().enumerate() {
            if n.is_test {
                continue;
            }
            let label = format!(
                "{}\\n{}:{}",
                display_name(n),
                paths.get(n.file).copied().unwrap_or("?"),
                n.line
            );
            let fill = closures
                .iter()
                .enumerate()
                .find(|(_, (_, c))| c.get(id).copied().unwrap_or(false))
                .map(|(ci, _)| FILLS[ci % FILLS.len()]);
            match fill {
                Some(f) => out.push_str(&format!(
                    "  n{id} [label=\"{label}\", style=filled, fillcolor={f}];\n"
                )),
                None => out.push_str(&format!("  n{id} [label=\"{label}\"];\n")),
            }
            for &t in &self.edges[id] {
                out.push_str(&format!("  n{id} -> n{t};\n"));
            }
            if !self.unknown_calls[id].is_empty() {
                any_unknown = true;
                out.push_str(&format!(
                    "  n{id} -> unknown [style=dashed, label=\"{}\"];\n",
                    self.unknown_calls[id].len()
                ));
            }
        }
        if any_unknown {
            out.push_str("  unknown [shape=ellipse, style=dashed, label=\"unknown\"];\n");
        }
        out.push_str("}\n");
        out
    }
}

/// `foo::bar` module-path heuristic: qualifiers that start lowercase are
/// module paths, not types, per Rust naming convention.
fn is_module_like(q: &str) -> bool {
    q.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

fn display_name(n: &Node) -> String {
    match &n.qual {
        Some(q) => format!("{q}::{}", n.name),
        None => n.name.clone(),
    }
}

/// Matches one `lint.toml` entry-point pattern against a node.
fn entry_matches(pattern: &str, n: &Node) -> bool {
    match pattern.split_once("::") {
        Some((ty, name)) => {
            let ty_ok = n.qual.as_deref().is_some_and(|q| part_match(ty, q))
                || n.trait_qual.as_deref().is_some_and(|t| part_match(ty, t));
            ty_ok && part_match(name, &n.name)
        }
        None => part_match(pattern, &n.name),
    }
}

fn part_match(glob: &str, s: &str) -> bool {
    config::match_one(glob.as_bytes(), s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    /// Builds a graph over in-memory sources; leaks the analyses so the
    /// test can hold the graph without lifetime gymnastics.
    fn graph_of(sources: &[&'static str]) -> Graph {
        let pairs: Vec<(&FileAnalysis<'static>, Vec<Item>)> = sources
            .iter()
            .map(|src| {
                let a: &'static FileAnalysis<'static> =
                    Box::leak(Box::new(FileAnalysis::new("mem.rs", src)));
                let items = parser::parse_items(a.src, &a.sig);
                (a, items)
            })
            .collect();
        let refs: Vec<(&FileAnalysis<'_>, &[Item])> =
            pairs.iter().map(|(a, i)| (*a, i.as_slice())).collect();
        Graph::build(&refs)
    }

    fn reached_names(g: &Graph, patterns: &[&str]) -> Vec<String> {
        let pats: Vec<String> = patterns.iter().map(|s| s.to_string()).collect();
        let mask = g.closure(&pats);
        g.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .map(|(_, n)| display_name(n))
            .collect()
    }

    #[test]
    fn closure_crosses_files_and_impls() {
        let g = graph_of(&[
            "pub fn execute_into(idx: &PvIndex) { idx.step1_into(q); }",
            "impl PvIndex { pub fn step1_into(&self, q: &Q) { min_dist_sq(a, b); self.helper(); } \
             fn helper(&self) {} }",
            "pub fn min_dist_sq(a: &[f64], b: &[f64]) -> f64 { inner(a) }\nfn inner(a: &[f64]) -> f64 { 0.0 }",
            "pub fn unrelated() { other(); }\nfn other() {}",
        ]);
        let names = reached_names(&g, &["execute_into"]);
        assert_eq!(
            names,
            vec![
                "execute_into",
                "PvIndex::step1_into",
                "PvIndex::helper",
                "min_dist_sq",
                "inner"
            ]
        );
    }

    #[test]
    fn std_shadowed_methods_route_to_unknown() {
        let g = graph_of(&[
            "fn hot() { table.get(k); table.get_into(k, out); }",
            "impl ExtHash { pub fn get(&self, k: u64) -> Vec<u8> { self.alloc() } \
             pub fn get_into(&self, k: u64, out: &mut Vec<u8>) {} fn alloc(&self) -> Vec<u8> { Vec::new() } }",
        ]);
        let names = reached_names(&g, &["hot"]);
        // `.get(` is stoplisted (would wire every slice.get to ExtHash::get);
        // `.get_into(` resolves.
        assert_eq!(names, vec!["hot", "ExtHash::get_into"]);
    }

    #[test]
    fn qualified_resolution_is_first_party_only() {
        let g = graph_of(&[
            "fn f() { Vec::with_capacity(8); Wal::append_commit(w); codec::put_u32(b, v); Self::nope(); }",
            "impl Wal { pub fn append_commit(&mut self) {} }",
            "pub fn put_u32(b: &mut [u8], v: u32) {}",
        ]);
        let names = reached_names(&g, &["f"]);
        assert_eq!(names, vec!["f", "Wal::append_commit", "put_u32"]);
        // Vec::with_capacity and the unresolvable Self:: call are unknown.
        assert_eq!(g.unknown_calls[0].len(), 2);
    }

    #[test]
    fn self_calls_resolve_via_enclosing_impl() {
        let g = graph_of(&["impl Octree { pub fn a(&self) { Self::b(); } fn b() {} }"]);
        let names = reached_names(&g, &["Octree::a"]);
        assert_eq!(names, vec!["Octree::a", "Octree::b"]);
    }

    #[test]
    fn entry_globs_and_trait_quals() {
        let g = graph_of(&[
            "impl Step1Engine for Baseline { fn step1_into(&self) { self.leaf(); } } \
             impl Baseline { fn leaf(&self) {} }",
            "impl Wal { pub fn sync(&mut self) {} pub fn mark(&self) {} }",
        ]);
        assert_eq!(
            reached_names(&g, &["*_into"]),
            vec!["Baseline::step1_into", "Baseline::leaf"]
        );
        assert_eq!(
            reached_names(&g, &["Step1Engine::*"]),
            vec!["Baseline::step1_into", "Baseline::leaf"]
        );
        assert_eq!(
            reached_names(&g, &["Wal::*"]),
            vec!["Wal::sync", "Wal::mark"]
        );
    }

    #[test]
    fn test_items_neither_seed_nor_resolve() {
        let g = graph_of(&[
            "fn prod() { helper(); }\n#[cfg(test)]\nmod tests { fn helper() {} \
             #[test] fn prod() { secret(); } }\nfn secret() {}",
        ]);
        // The test-mod `helper` is not a target; the #[test] `prod` is not
        // an entry even though its name matches.
        let names = reached_names(&g, &["prod"]);
        assert_eq!(names, vec!["prod"]);
    }

    #[test]
    fn dot_output_mentions_nodes_and_unknown() {
        let g = graph_of(&["fn a() { b(); mystery(); }\nfn b() {}"]);
        let mask = g.closure(&["a".to_string()]);
        let dot = g.to_dot(&["m.rs"], &[("hot-path-no-panic".to_string(), mask)]);
        assert!(dot.contains("digraph pv_lint"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("unknown"));
        assert!(dot.contains("closure[hot-path-no-panic]: 2 node(s)"));
    }
}
