//! Property tests: the extendible hash table must behave like a HashMap
//! under arbitrary operation sequences, for multiple page sizes.

use proptest::prelude::*;
use pv_exthash::ExtHash;
use pv_storage::MemPager;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Remove(u64),
    Get(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..200, prop::collection::vec(any::<u8>(), 0..600))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u64..200).prop_map(Op::Remove),
        2 => (0u64..200).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn behaves_like_hashmap(
        ops in prop::collection::vec(arb_op(), 1..200),
        page_size in prop::sample::select(vec![256usize, 512, 1024]),
    ) {
        let mut h = ExtHash::new(MemPager::new(page_size));
        let mut shadow: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let existed = h.put(k, &v);
                    prop_assert_eq!(existed, shadow.insert(k, v).is_some());
                }
                Op::Remove(k) => {
                    prop_assert_eq!(h.remove(k), shadow.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(h.get(k), shadow.get(&k).cloned());
                }
            }
            prop_assert_eq!(h.len(), shadow.len());
        }
        h.check_invariants();
        // final full comparison
        let mut all = h.iter_all();
        all.sort_by_key(|(k, _)| *k);
        let mut want: Vec<(u64, Vec<u8>)> = shadow.into_iter().collect();
        want.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(all, want);
    }

    #[test]
    fn no_page_leaks_after_clearing(
        keys in prop::collection::vec(0u64..500, 1..100),
        val_len in 0usize..3000,
    ) {
        let pager = MemPager::new(512);
        let mut h = ExtHash::new(pager.clone());
        for &k in &keys {
            h.put(k, &vec![7u8; val_len]);
        }
        let mut unique = keys.clone();
        unique.sort_unstable();
        unique.dedup();
        for &k in &unique {
            prop_assert!(h.remove(k));
        }
        prop_assert!(h.is_empty());
        // Only bucket pages may remain live; no overflow chains.
        prop_assert_eq!(h.stats().overflow_values, 0);
        let live = pager.live_pages();
        prop_assert!(live <= h.stats().buckets,
            "live pages {} exceed bucket count {}", live, h.stats().buckets);
    }
}
