//! # pv-exthash — extendible hashing on the simulated paged disk
//!
//! The PV-index stores its *secondary index* — object id → (UBR, uncertainty
//! region, pdf descriptor) — in "an extensible hash table" kept on disk
//! (§VI-A of the paper; reference \[41\]). This crate implements classic
//! extendible hashing (Fagin et al.):
//!
//! * an in-memory **directory** of `2^global_depth` bucket pointers,
//! * disk-resident **buckets**, one page each, with a local depth;
//!   splitting a full bucket either halves its directory range or doubles
//!   the directory,
//! * values larger than one page spill into **overflow chains** built from
//!   [`pv_storage::PageList`] pages (needed for pdf payloads).
//!
//! Keys are `u64` object ids; the hash is a Fibonacci multiplicative mix so
//! sequential ids spread uniformly over buckets.

//! ```
//! use pv_exthash::ExtHash;
//! use pv_storage::MemPager;
//!
//! let mut table = ExtHash::new(MemPager::new(4096));
//! table.put(7, b"payload");
//! assert_eq!(table.get(7).unwrap(), b"payload");
//! assert!(table.remove(7));
//! assert!(table.is_empty());
//! ```

#![deny(missing_docs)]

use pv_storage::{codec, IoStats, PageId, Pager};
use std::collections::HashMap;

/// Bucket page layout:
/// `[local_depth: u16 | count: u16 | record*]` where
/// `record = key: u64 | inline_len: u32 | overflow_head: u64 | bytes`.
const BUCKET_HDR: usize = 4;
const REC_FIXED: usize = 8 + 4 + 8;

/// Statistics describing hash-table shape; useful for space accounting
/// (the paper reports the PV-index's small spatial requirements vs UV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtHashStats {
    /// Current directory size (`2^global_depth`).
    pub directory_size: usize,
    /// Number of distinct buckets.
    pub buckets: usize,
    /// Total stored key/value pairs.
    pub entries: usize,
    /// Number of values spilled to overflow chains.
    pub overflow_values: usize,
}

/// An extendible hash table mapping `u64` keys to byte-string values.
pub struct ExtHash<P: Pager> {
    pager: P,
    directory: Vec<PageId>,
    global_depth: u32,
    entries: usize,
    overflow_values: usize,
    /// Cached per-bucket entry counts (refreshed on every write); avoids
    /// re-reading pages for statistics.
    len_cache: HashMap<PageId, usize>,
}

impl<P: Pager> std::fmt::Debug for ExtHash<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtHash")
            .field("global_depth", &self.global_depth)
            .field("entries", &self.entries)
            .finish_non_exhaustive()
    }
}

#[inline]
fn hash_key(key: u64) -> u64 {
    // Fibonacci hashing: multiply by 2^64 / phi and mix high bits down.
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

struct Record {
    key: u64,
    inline: Vec<u8>,
    overflow: PageId,
}

impl<P: Pager> ExtHash<P> {
    /// Creates an empty table with a directory of two buckets.
    pub fn new(pager: P) -> Self {
        let b0 = Self::alloc_bucket(&pager, 1);
        let b1 = Self::alloc_bucket(&pager, 1);
        let mut len_cache = HashMap::new();
        len_cache.insert(b0, 0);
        len_cache.insert(b1, 0);
        Self {
            pager,
            directory: vec![b0, b1],
            global_depth: 1,
            entries: 0,
            overflow_values: 0,
            len_cache,
        }
    }

    fn alloc_bucket(pager: &P, local_depth: u16) -> PageId {
        let id = pager.alloc();
        let mut page = vec![0u8; pager.page_size()];
        page[0..2].copy_from_slice(&local_depth.to_le_bytes());
        page[2..4].copy_from_slice(&0u16.to_le_bytes());
        pager.write(id, &page);
        id
    }

    /// Forks the table onto `pager` — typically a copy-on-write fork of
    /// this table's device (see [`pv_storage::MemPager::fork`]). Bucket and
    /// overflow pages stay physically shared until one side writes them;
    /// only the in-memory directory, counters and length cache are copied,
    /// so a fork costs O(directory) pointer copies, not O(table).
    pub fn fork(&self, pager: P) -> Self {
        Self {
            pager,
            directory: self.directory.clone(),
            global_depth: self.global_depth,
            entries: self.entries,
            overflow_values: self.overflow_values,
            len_cache: self.len_cache.clone(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// I/O statistics of the underlying pager (shared with other structures
    /// living on the same simulated disk).
    pub fn io_stats(&self) -> &IoStats {
        self.pager.stats()
    }

    /// Shape statistics.
    pub fn stats(&self) -> ExtHashStats {
        let mut distinct: Vec<PageId> = self.directory.clone();
        distinct.sort_unstable();
        distinct.dedup();
        ExtHashStats {
            directory_size: self.directory.len(),
            buckets: distinct.len(),
            entries: self.entries,
            overflow_values: self.overflow_values,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> PageId {
        let idx = (hash_key(key) & ((1u64 << self.global_depth) - 1)) as usize;
        // pv-lint: allow(hot-path-no-panic, reason = "idx is masked to global_depth bits and the directory is 2^global_depth entries by construction (doubling keeps them in lockstep)")
        self.directory[idx]
    }

    fn parse_bucket(page: &[u8]) -> (u16, Vec<Record>) {
        let local_depth = u16::from_le_bytes([page[0], page[1]]);
        let count = u16::from_le_bytes([page[2], page[3]]) as usize;
        let mut records = Vec::with_capacity(count);
        let mut off = BUCKET_HDR;
        for _ in 0..count {
            let mut r = codec::Reader::new(&page[off..]);
            let key = r.u64();
            let inline_len = r.u32() as usize;
            let overflow = PageId(r.u64());
            let start = off + REC_FIXED;
            records.push(Record {
                key,
                inline: page[start..start + inline_len].to_vec(),
                overflow,
            });
            off = start + inline_len;
        }
        (local_depth, records)
    }

    fn write_bucket(&self, id: PageId, local_depth: u16, records: &[Record]) {
        let mut page = vec![0u8; self.pager.page_size()];
        page[0..2].copy_from_slice(&local_depth.to_le_bytes());
        page[2..4].copy_from_slice(&(records.len() as u16).to_le_bytes());
        let mut off = BUCKET_HDR;
        for rec in records {
            let mut buf = Vec::with_capacity(REC_FIXED + rec.inline.len());
            codec::put_u64(&mut buf, rec.key);
            codec::put_u32(&mut buf, rec.inline.len() as u32);
            codec::put_u64(&mut buf, rec.overflow.0);
            buf.extend_from_slice(&rec.inline);
            page[off..off + buf.len()].copy_from_slice(&buf);
            off += buf.len();
        }
        self.pager.write(id, &page);
    }

    fn bucket_bytes(records: &[Record]) -> usize {
        records.iter().map(|r| REC_FIXED + r.inline.len()).sum()
    }

    /// Bytes of value that can be stored inline in a bucket record. Larger
    /// values spill their tail to an overflow chain. Keeping the inline part
    /// small (a quarter page) bounds the split cascade for skewed sizes.
    fn inline_budget(&self) -> usize {
        (self.pager.page_size() - BUCKET_HDR - REC_FIXED) / 4
    }

    fn store_value(&mut self, value: &[u8]) -> (Vec<u8>, PageId) {
        let budget = self.inline_budget();
        if value.len() <= budget {
            return (value.to_vec(), PageId::NULL);
        }
        self.overflow_values += 1;
        let mut list = pv_storage::PageList::new();
        let chunk = pv_storage::PageList::max_record_len(&self.pager);
        // Append chunks in reverse so head-first reads return them in order.
        let tail = &value[budget..];
        let chunks: Vec<&[u8]> = tail.chunks(chunk).collect();
        for part in chunks.iter().rev() {
            list.append(&self.pager, part);
        }
        (value[..budget].to_vec(), list.head())
    }

    fn load_value(&self, rec: &Record) -> Vec<u8> {
        if rec.overflow.is_null() {
            return rec.inline.clone();
        }
        let list = pv_storage::PageList::from_head(rec.overflow);
        let mut out = rec.inline.clone();
        for part in list.read_all(&self.pager) {
            out.extend_from_slice(&part);
        }
        out
    }

    fn free_overflow(&mut self, rec: &Record) {
        if !rec.overflow.is_null() {
            let mut list = pv_storage::PageList::from_head(rec.overflow);
            list.clear(&self.pager);
            self.overflow_values -= 1;
        }
    }

    /// Builds a table from a batch of **distinct** keys in one pass: bucket
    /// contents and the directory shape are computed entirely in memory by
    /// replaying [`ExtHash::put`]'s split decisions, then every bucket page
    /// is allocated and written exactly once (the directory is sized once
    /// instead of doubling incrementally, and no transient page churn from
    /// mid-build splits hits the pager).
    ///
    /// The result is logically identical to `put`ting the items in order
    /// onto a fresh table — same directory, same bucket membership and
    /// record order, same statistics — and, crucially, a deterministic
    /// function of the item sequence: identical inputs emit identical pages
    /// in an identical allocation order, which the PV-index's canonical
    /// snapshot form relies on.
    pub fn bulk_build<'a>(pager: P, items: impl IntoIterator<Item = (u64, &'a [u8])>) -> Self {
        let items: Vec<(u64, &[u8])> = items.into_iter().collect();
        debug_assert!(
            {
                let mut keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
                keys.sort_unstable();
                keys.windows(2).all(|w| w[0] != w[1])
            },
            "bulk_build requires distinct keys"
        );
        let page_size = pager.page_size();
        let inline_budget = (page_size - BUCKET_HDR - REC_FIXED) / 4;
        // In-memory bucket model: item indices + the page bytes they occupy.
        struct BBucket {
            local_depth: u16,
            recs: Vec<usize>,
            bytes: usize,
        }
        let rec_bytes = |value: &[u8]| REC_FIXED + value.len().min(inline_budget);
        let mut buckets: Vec<BBucket> = (0..2)
            .map(|_| BBucket {
                local_depth: 1,
                recs: Vec::new(),
                bytes: 0,
            })
            .collect();
        let mut directory: Vec<usize> = vec![0, 1];
        let mut global_depth = 1u32;
        for (i, &(key, value)) in items.iter().enumerate() {
            let need = rec_bytes(value);
            loop {
                let slot = (hash_key(key) & ((1u64 << global_depth) - 1)) as usize;
                let b = directory[slot];
                if buckets[b].bytes + need <= page_size - BUCKET_HDR {
                    buckets[b].recs.push(i);
                    buckets[b].bytes += need;
                    break;
                }
                // Split `b`, mirroring `split_bucket`.
                if u32::from(buckets[b].local_depth) == global_depth {
                    assert!(
                        global_depth < 32,
                        "directory would exceed 2^32 entries; key distribution is degenerate"
                    );
                    let old = directory.clone();
                    directory.extend_from_slice(&old);
                    global_depth += 1;
                }
                let local_depth = buckets[b].local_depth;
                let bit = 1u64 << local_depth;
                let sibling = buckets.len();
                let (stay, move_out): (Vec<usize>, Vec<usize>) = buckets[b]
                    .recs
                    .iter()
                    .partition(|&&r| hash_key(items[r].0) & bit == 0);
                let sum = |recs: &[usize]| recs.iter().map(|&r| rec_bytes(items[r].1)).sum();
                buckets.push(BBucket {
                    local_depth: local_depth + 1,
                    bytes: sum(&move_out),
                    recs: move_out,
                });
                buckets[b].bytes = sum(&stay);
                buckets[b].recs = stay;
                buckets[b].local_depth = local_depth + 1;
                for (idx, s) in directory.iter_mut().enumerate() {
                    if *s == b && (idx as u64) & bit != 0 {
                        *s = sibling;
                    }
                }
            }
        }
        // Emission: bucket pages in creation order, each record's overflow
        // chain at its bucket-write point.
        let pages: Vec<PageId> = buckets
            .iter()
            .map(|b| Self::alloc_bucket(&pager, b.local_depth))
            .collect();
        let mut table = Self {
            pager,
            directory: directory.iter().map(|&b| pages[b]).collect(),
            global_depth,
            entries: items.len(),
            overflow_values: 0,
            len_cache: HashMap::new(),
        };
        for (bi, bucket) in buckets.iter().enumerate() {
            let records: Vec<Record> = bucket
                .recs
                .iter()
                .map(|&r| {
                    let (key, value) = items[r];
                    let (inline, overflow) = table.store_value(value);
                    Record {
                        key,
                        inline,
                        overflow,
                    }
                })
                .collect();
            table.write_bucket(pages[bi], bucket.local_depth, &records);
            table.len_cache.insert(pages[bi], records.len());
        }
        table
    }

    /// Inserts or replaces the value under `key`. Returns `true` if the key
    /// already existed (replacement).
    pub fn put(&mut self, key: u64, value: &[u8]) -> bool {
        let replaced = self.remove(key);
        loop {
            let bucket = self.bucket_of(key);
            let page = self.pager.read(bucket);
            let (local_depth, mut records) = Self::parse_bucket(&page);
            let (inline, overflow) = self.store_value(value);
            records.push(Record {
                key,
                inline,
                overflow,
            });
            if Self::bucket_bytes(&records) <= self.pager.page_size() - BUCKET_HDR {
                self.write_bucket(bucket, local_depth, &records);
                self.len_cache.insert(bucket, records.len());
                self.entries += 1;
                return replaced;
            }
            // Bucket full: roll back the tentative record, split, retry.
            let rec = records.pop().expect("just pushed");
            self.free_overflow(&rec);
            self.split_bucket(bucket);
        }
    }

    /// Splits the given bucket, doubling the directory when its local depth
    /// equals the global depth.
    fn split_bucket(&mut self, bucket: PageId) {
        let page = self.pager.read(bucket);
        let (local_depth, records) = Self::parse_bucket(&page);
        if u32::from(local_depth) == self.global_depth {
            assert!(
                self.global_depth < 32,
                "directory would exceed 2^32 entries; key distribution is degenerate"
            );
            let old = std::mem::take(&mut self.directory);
            self.directory = Vec::with_capacity(old.len() * 2);
            self.directory.extend_from_slice(&old);
            self.directory.extend_from_slice(&old);
            self.global_depth += 1;
        }
        let new_depth = local_depth + 1;
        let sibling = Self::alloc_bucket(&self.pager, new_depth);
        // Partition records by the newly significant hash bit.
        let bit = 1u64 << local_depth;
        let (stay, move_out): (Vec<Record>, Vec<Record>) = records
            .into_iter()
            .partition(|r| hash_key(r.key) & bit == 0);
        self.write_bucket(bucket, new_depth, &stay);
        self.write_bucket(sibling, new_depth, &move_out);
        self.len_cache.insert(bucket, stay.len());
        self.len_cache.insert(sibling, move_out.len());
        // Redirect directory slots: slots pointing at `bucket` whose index
        // has the new bit set now point at the sibling.
        for (idx, slot) in self.directory.iter_mut().enumerate() {
            if *slot == bucket && (idx as u64) & bit != 0 {
                *slot = sibling;
            }
        }
    }

    /// Fetches the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let bucket = self.bucket_of(key);
        let page = self.pager.read(bucket);
        let (_, records) = Self::parse_bucket(&page);
        records
            .iter()
            .find(|r| r.key == key)
            .map(|r| self.load_value(r))
    }

    /// Allocation-free variant of [`ExtHash::get`]: copies the value under
    /// `key` into `out` (cleared first), using `page_buf` as page scratch.
    /// Returns `true` if the key was present. Charges the same page reads as
    /// `get`; at steady state (buffers grown to their working size) it
    /// performs no heap allocation, which is what the PV-index's Step-2
    /// payload path relies on.
    pub fn get_into(&self, key: u64, page_buf: &mut Vec<u8>, out: &mut Vec<u8>) -> bool {
        let bucket = self.bucket_of(key);
        self.pager.read_into(bucket, page_buf);
        // Streaming parse of the bucket page — no `Record` vector. The
        // chunk-splitting form is total: a page shorter than its own record
        // count claims (corruption) parses as "key absent" instead of
        // panicking; well-formed pages take the exact same byte offsets.
        let count = match page_buf.get(..BUCKET_HDR) {
            Some(&[_, _, c0, c1]) => u16::from_le_bytes([c0, c1]) as usize,
            _ => 0,
        };
        let mut rest = page_buf.get(BUCKET_HDR..).unwrap_or_default();
        let mut off = BUCKET_HDR;
        let mut found: Option<(usize, usize, PageId)> = None;
        for _ in 0..count {
            let Some((k8, r)) = rest.split_first_chunk::<8>() else {
                break;
            };
            let Some((l4, r)) = r.split_first_chunk::<4>() else {
                break;
            };
            let Some((o8, r)) = r.split_first_chunk::<8>() else {
                break;
            };
            let k = u64::from_le_bytes(*k8);
            let inline_len = u32::from_le_bytes(*l4) as usize;
            let overflow = PageId(u64::from_le_bytes(*o8));
            let start = off + REC_FIXED;
            if k == key {
                found = Some((start, inline_len, overflow));
                break;
            }
            rest = r.get(inline_len..).unwrap_or_default();
            off = start + inline_len;
        }
        let Some((start, inline_len, overflow)) = found else {
            return false;
        };
        out.clear();
        let Some(inline) = page_buf.get(start..start + inline_len) else {
            return false;
        };
        out.extend_from_slice(inline);
        if !overflow.is_null() {
            // The bucket page content is no longer needed: reuse `page_buf`
            // for the overflow chain pages.
            let list = pv_storage::PageList::from_head(overflow);
            list.for_each_record(&self.pager, page_buf, |part| out.extend_from_slice(part));
        }
        true
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let bucket = self.bucket_of(key);
        let page = self.pager.read(bucket);
        let (local_depth, mut records) = Self::parse_bucket(&page);
        let Some(pos) = records.iter().position(|r| r.key == key) else {
            return false;
        };
        let victim = records.remove(pos);
        self.free_overflow(&victim);
        self.write_bucket(bucket, local_depth, &records);
        self.len_cache.insert(bucket, records.len());
        self.entries -= 1;
        true
    }

    /// True if `key` is present (cheaper than `get` for overflowed values).
    pub fn contains(&self, key: u64) -> bool {
        let bucket = self.bucket_of(key);
        let page = self.pager.read(bucket);
        let (_, records) = Self::parse_bucket(&page);
        records.iter().any(|r| r.key == key)
    }

    /// Returns every `(key, value)` pair (reads every bucket once, plus
    /// overflow pages).
    pub fn iter_all(&self) -> Vec<(u64, Vec<u8>)> {
        let mut distinct: Vec<PageId> = self.directory.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut out = Vec::with_capacity(self.entries);
        for b in distinct {
            let page = self.pager.read(b);
            let (_, records) = Self::parse_bucket(&page);
            for r in records {
                let v = self.load_value(&r);
                out.push((r.key, v));
            }
        }
        out
    }

    /// Serialises the table's in-memory state — directory, depths and
    /// counters — for an index snapshot. Bucket and overflow *pages* are not
    /// included: they belong to the pager, whose image is snapshotted
    /// separately by the caller.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u32(&mut out, self.global_depth);
        codec::put_u64(&mut out, self.entries as u64);
        codec::put_u64(&mut out, self.overflow_values as u64);
        for slot in &self.directory {
            codec::put_u64(&mut out, slot.0);
        }
        out
    }

    /// Rebuilds a table handle from [`ExtHash::to_snapshot`] bytes over a
    /// pager already holding the corresponding bucket pages.
    ///
    /// # Errors
    /// Truncation and implausible directory shapes are reported as
    /// [`codec::DecodeError`] instead of panicking.
    pub fn from_snapshot(pager: P, buf: &[u8]) -> Result<Self, codec::DecodeError> {
        let mut r = codec::Reader::new(buf);
        let global_depth = r.try_u32()?;
        if global_depth == 0 || global_depth > 32 {
            return Err(codec::DecodeError::Invalid {
                context: "extendible-hash snapshot global depth",
            });
        }
        let entries = r.try_u64()? as usize;
        let overflow_values = r.try_u64()? as usize;
        let dir_len = 1usize << global_depth;
        let mut directory = Vec::with_capacity(dir_len);
        for _ in 0..dir_len {
            let id = PageId(r.try_u64()?);
            if id.is_null() {
                return Err(codec::DecodeError::Invalid {
                    context: "extendible-hash snapshot directory entry",
                });
            }
            directory.push(id);
        }
        // The per-bucket length cache is a write-side optimisation; it
        // repopulates lazily as buckets are touched.
        Ok(Self {
            pager,
            directory,
            global_depth,
            entries,
            overflow_values,
            len_cache: HashMap::new(),
        })
    }

    /// Checks directory/bucket invariants (test helper).
    pub fn check_invariants(&self) {
        assert_eq!(self.directory.len(), 1 << self.global_depth);
        let mut total = 0usize;
        let mut distinct: Vec<PageId> = self.directory.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for b in distinct {
            let page = self.pager.read(b);
            let (local_depth, records) = Self::parse_bucket(&page);
            assert!(u32::from(local_depth) <= self.global_depth);
            // The bucket must be referenced by exactly 2^(global-local) slots.
            let refs = self.directory.iter().filter(|&&s| s == b).count();
            assert_eq!(refs, 1usize << (self.global_depth - u32::from(local_depth)));
            // Every record must hash into this bucket under its local depth.
            let mask = (1u64 << local_depth) - 1;
            let slot_low_bits = self
                .directory
                .iter()
                .position(|&s| s == b)
                .expect("bucket referenced") as u64
                & mask;
            for r in &records {
                assert_eq!(
                    hash_key(r.key) & mask,
                    slot_low_bits,
                    "record hashed into the wrong bucket"
                );
            }
            total += records.len();
        }
        assert_eq!(total, self.entries, "entry count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_storage::MemPager;

    fn table(page: usize) -> ExtHash<MemPager> {
        ExtHash::new(MemPager::new(page))
    }

    #[test]
    fn put_get_roundtrip() {
        let mut h = table(256);
        assert!(!h.put(1, b"one"));
        assert!(!h.put(2, b"two"));
        assert_eq!(h.get(1).unwrap(), b"one");
        assert_eq!(h.get(2).unwrap(), b"two");
        assert!(h.get(3).is_none());
        assert_eq!(h.len(), 2);
        h.check_invariants();
    }

    #[test]
    fn get_into_matches_get_including_overflow() {
        let mut h = table(256);
        h.put(1, b"inline value");
        // Larger than the inline budget of a 256-byte page: spills to an
        // overflow chain.
        let big: Vec<u8> = (0..900u32).map(|i| (i % 251) as u8).collect();
        h.put(2, &big);
        let mut page = Vec::new();
        let mut out = Vec::new();
        for key in [1u64, 2] {
            assert!(h.get_into(key, &mut page, &mut out));
            assert_eq!(out, h.get(key).unwrap(), "key {key}");
        }
        assert!(!h.get_into(99, &mut page, &mut out));
        // Same page traffic as `get`.
        let r0 = h.io_stats().snapshot().reads;
        let _ = h.get(2);
        let per_get = h.io_stats().snapshot().reads - r0;
        let r1 = h.io_stats().snapshot().reads;
        h.get_into(2, &mut page, &mut out);
        assert_eq!(h.io_stats().snapshot().reads - r1, per_get);
    }

    #[test]
    fn replace_value() {
        let mut h = table(256);
        h.put(7, b"first");
        assert!(h.put(7, b"second"));
        assert_eq!(h.get(7).unwrap(), b"second");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn grows_through_many_splits() {
        let mut h = table(256);
        for k in 0..2000u64 {
            h.put(k, format!("value-{k}").as_bytes());
        }
        h.check_invariants();
        assert_eq!(h.len(), 2000);
        assert!(h.stats().buckets > 10, "expected many buckets");
        for k in 0..2000u64 {
            assert_eq!(h.get(k).unwrap(), format!("value-{k}").as_bytes());
        }
    }

    #[test]
    fn bulk_build_replays_put_sequence() {
        for (n, page, seed_mul) in [
            (0usize, 256usize, 1u64),
            (50, 256, 37),
            (2000, 256, 1),
            (200, 512, 37),
        ] {
            let items: Vec<(u64, Vec<u8>)> = (0..n as u64)
                .map(|k| {
                    let len = (k as usize * seed_mul as usize) % 2000;
                    (k * 7 + 3, vec![k as u8; len])
                })
                .collect();
            let mut by_put = ExtHash::new(MemPager::new(page));
            for (k, v) in &items {
                by_put.put(*k, v);
            }
            let bulk = ExtHash::bulk_build(
                MemPager::new(page),
                items.iter().map(|(k, v)| (*k, v.as_slice())),
            );
            bulk.check_invariants();
            assert_eq!(bulk.stats(), by_put.stats(), "n={n} page={page}");
            // Physical page ids differ (the put path interleaves split and
            // overflow allocations), but the directory *pattern* — which
            // slots share a bucket — and every bucket's (key, value) record
            // sequence must replay exactly.
            let pattern = |t: &ExtHash<MemPager>| -> Vec<usize> {
                let mut first: HashMap<PageId, usize> = HashMap::new();
                t.directory
                    .iter()
                    .map(|&p| {
                        let next = first.len();
                        *first.entry(p).or_insert(next)
                    })
                    .collect()
            };
            assert_eq!(pattern(&bulk), pattern(&by_put), "n={n} page={page}");
            let bucket_records = |t: &ExtHash<MemPager>| -> Vec<Vec<(u64, Vec<u8>)>> {
                let mut seen: Vec<PageId> = Vec::new();
                let mut out = Vec::new();
                for &p in &t.directory {
                    if seen.contains(&p) {
                        continue;
                    }
                    seen.push(p);
                    let (_, records) = ExtHash::<MemPager>::parse_bucket(&t.pager.read(p));
                    out.push(
                        records
                            .iter()
                            .map(|r| (r.key, t.load_value(r)))
                            .collect::<Vec<_>>(),
                    );
                }
                out
            };
            assert_eq!(
                bucket_records(&bulk),
                bucket_records(&by_put),
                "n={n} page={page}"
            );
            for (k, v) in &items {
                assert_eq!(bulk.get(*k).as_deref(), Some(v.as_slice()), "key {k}");
            }
            assert!(bulk.get(1).is_none());
        }
    }

    #[test]
    fn bulk_build_is_deterministic_bytes() {
        let items: Vec<(u64, Vec<u8>)> = (0..700u64)
            .map(|k| (k, vec![k as u8; (k as usize * 13) % 900]))
            .collect();
        let p1 = MemPager::new(256);
        let p2 = MemPager::new(256);
        let a = ExtHash::bulk_build(p1.clone(), items.iter().map(|(k, v)| (*k, v.as_slice())));
        let b = ExtHash::bulk_build(p2.clone(), items.iter().map(|(k, v)| (*k, v.as_slice())));
        assert_eq!(p1.image(), p2.image());
        assert_eq!(a.to_snapshot(), b.to_snapshot());
    }

    #[test]
    fn remove_and_reinsert() {
        let mut h = table(256);
        for k in 0..500u64 {
            h.put(k, &k.to_le_bytes());
        }
        for k in (0..500u64).step_by(2) {
            assert!(h.remove(k));
        }
        assert!(!h.remove(0));
        assert_eq!(h.len(), 250);
        h.check_invariants();
        for k in 0..500u64 {
            assert_eq!(h.get(k).is_some(), k % 2 == 1);
        }
        for k in (0..500u64).step_by(2) {
            h.put(k, b"back");
        }
        assert_eq!(h.len(), 500);
        h.check_invariants();
    }

    #[test]
    fn large_values_use_overflow_chains() {
        let mut h = table(256);
        let big = vec![0xABu8; 5000];
        h.put(42, &big);
        assert_eq!(h.stats().overflow_values, 1);
        assert_eq!(h.get(42).unwrap(), big);
        // Replacing with a small value must free the chain.
        h.put(42, b"small");
        assert_eq!(h.stats().overflow_values, 0);
        assert_eq!(h.get(42).unwrap(), b"small");
        h.check_invariants();
    }

    #[test]
    fn overflow_value_removal_frees_pages() {
        let pager = MemPager::new(256);
        let mut h = ExtHash::new(pager.clone());
        let big = vec![1u8; 4000];
        h.put(1, &big);
        let live_with_value = pager.live_pages();
        assert!(h.remove(1));
        assert!(
            pager.live_pages() < live_with_value,
            "overflow pages must be freed"
        );
        h.check_invariants();
    }

    #[test]
    fn mixed_value_sizes() {
        let mut h = table(512);
        for k in 0..200u64 {
            let len = (k as usize * 37) % 2000;
            h.put(k, &vec![k as u8; len]);
        }
        h.check_invariants();
        for k in 0..200u64 {
            let len = (k as usize * 37) % 2000;
            assert_eq!(h.get(k).unwrap(), vec![k as u8; len], "key {k}");
        }
    }

    #[test]
    fn iter_all_returns_everything() {
        let mut h = table(256);
        for k in 0..300u64 {
            h.put(k, &k.to_le_bytes());
        }
        let mut all = h.iter_all();
        all.sort_by_key(|(k, _)| *k);
        assert_eq!(all.len(), 300);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(v, &k.to_le_bytes());
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_lookups() {
        let pager = MemPager::new(256);
        let mut h = ExtHash::new(pager.clone());
        for k in 0..800u64 {
            h.put(k, format!("value-{k}").as_bytes());
        }
        h.put(900, &vec![7u8; 4000]); // one overflowed value
        let snap = h.to_snapshot();
        let restored = ExtHash::from_snapshot(pager.clone(), &snap).unwrap();
        assert_eq!(restored.len(), h.len());
        assert_eq!(restored.stats(), h.stats());
        restored.check_invariants();
        for k in 0..800u64 {
            assert_eq!(restored.get(k).unwrap(), format!("value-{k}").as_bytes());
        }
        assert_eq!(restored.get(900).unwrap(), vec![7u8; 4000]);
        // corruption surfaces as an error, not a panic
        assert!(ExtHash::<MemPager>::from_snapshot(pager.clone(), &snap[..10]).is_err());
        let mut bad = snap.clone();
        bad[0] = 60; // directory of 2^60 slots
        assert!(ExtHash::<MemPager>::from_snapshot(pager, &bad).is_err());
    }

    #[test]
    fn fork_shares_buckets_and_diverges_on_write() {
        let pager = MemPager::new(256);
        let mut h = ExtHash::new(pager.clone());
        for k in 0..600u64 {
            h.put(k, format!("value-{k}").as_bytes());
        }
        let fork_pager = pager.fork();
        let mut f = h.fork(fork_pager.clone());
        f.check_invariants();

        // Mutate only the fork.
        assert!(f.remove(17));
        f.put(9001, b"fork-only");
        f.put(3, b"rewritten");

        // The original is untouched.
        assert_eq!(h.get(17).unwrap(), b"value-17");
        assert!(h.get(9001).is_none());
        assert_eq!(h.get(3).unwrap(), b"value-3");
        assert_eq!(h.len(), 600);
        h.check_invariants();

        // The fork sees its own writes…
        assert!(f.get(17).is_none());
        assert_eq!(f.get(9001).unwrap(), b"fork-only");
        assert_eq!(f.get(3).unwrap(), b"rewritten");
        f.check_invariants();

        // …and copied only the few bucket pages it touched.
        assert!(
            (fork_pager.cow_copies() as usize) < pager.live_pages() / 4,
            "fork copied {} of {} pages — not structural sharing",
            fork_pager.cow_copies(),
            pager.live_pages()
        );
    }

    #[test]
    fn io_is_counted() {
        let mut h = table(256);
        let s0 = h.io_stats().snapshot();
        h.put(9, b"payload");
        let s1 = h.io_stats().snapshot();
        assert!(s1.since(&s0).total() > 0);
        h.get(9);
        let s2 = h.io_stats().snapshot();
        assert!(s2.since(&s1).reads >= 1);
    }

    #[test]
    fn empty_value_is_storable() {
        let mut h = table(256);
        h.put(5, b"");
        assert_eq!(h.get(5).unwrap(), b"");
        assert!(h.contains(5));
    }

    #[test]
    fn huge_value_replacing_huge_value() {
        let mut h = table(256);
        h.put(3, &vec![1u8; 3000]);
        h.put(3, &vec![2u8; 6000]);
        assert_eq!(h.stats().overflow_values, 1);
        assert_eq!(h.get(3).unwrap(), vec![2u8; 6000]);
    }
}
