//! The concurrent database facade: snapshot-isolated readers, a
//! non-blocking single writer, and pooled query sessions.
//!
//! The engines of this workspace answer queries through `&self` and mutate
//! through `&mut self` — a writer therefore used to stop the world for
//! every reader. The moving-query settings the roadmap targets (and the
//! Probabilistic Voronoi Diagram line of work in PAPERS.md) interleave
//! object updates with query traffic, so PR 5 wraps any engine in a
//! [`Db`] handle built on *snapshot publication*:
//!
//! * the current engine state lives behind an [`ArcSwap`] as an immutable
//!   [`Snapshot`] (engine + monotonically increasing version);
//! * **readers** ([`Db::query`], [`Db::query_batch`], [`Reader`],
//!   [`Session`]) pin the current `Arc` — one mutex-guarded pointer clone,
//!   O(1), never waiting on index work — and run the whole query against
//!   that pinned state. A query never observes a half-applied update;
//! * the **writer** ([`Db::insert`], [`Db::remove`], [`Db::rebuild`],
//!   [`Db::commit`]) forks a copy-on-write successor via
//!   [`WritableEngine::fork`], applies the mutation off to the side while
//!   readers keep serving from the old snapshot, and publishes the
//!   successor with a single atomic pointer swap;
//! * superseded snapshots are freed by reference counting the moment the
//!   last reader unpins them (asserted by the drop-ordering test in
//!   `tests/db_concurrency.rs`). The flip side of eager reclamation: the
//!   thread dropping that last pin — usually the writer at the next
//!   publication, but a long-lived reader if it outlives one — pays the
//!   O(index) deallocation. Readers never wait on the *writer's* work
//!   (forking, SE, page writes), but a reader unpinning a dead snapshot
//!   does pay its free; pin a [`Reader`] for bounded scopes if that tail
//!   matters.
//!
//! ```text
//!   readers                 ArcSwap slot                writer
//!   ───────                 ────────────                ──────
//!   pin ──────────────▶ Arc<Snapshot v3> ◀── fork ── Snapshot v3
//!   query on v3              │                          │ insert/remove
//!   pin ──────────────▶      │                          ▼
//!   query on v3              └── swap ◀── publish ── Snapshot v4
//!   (v3 freed when the last pin drops)
//! ```
//!
//! Forking is *page-level copy-on-write* (since PR 6): the PV-index forks
//! its simulated disk by cloning the page-pointer table, and a commit
//! touching k objects physically copies only the O(k·log n) pages it
//! writes — untouched pages stay shared with every pinned older snapshot.
//! Writers that apply many operations can still batch them in one
//! [`Db::commit`] closure — one fork, one publication. Readers are
//! wait-free with respect to all of that work: the only shared critical
//! section is the pointer swap itself.
//!
//! # Example
//!
//! ```
//! use pv_core::db::Db;
//! use pv_core::{LinearScan, QuerySpec};
//! use pv_geom::{HyperRect, Point};
//! use pv_uncertain::{UncertainDb, UncertainObject};
//!
//! let domain = HyperRect::cube(2, 0.0, 100.0);
//! let objects = (0..10u64)
//!     .map(|i| {
//!         let lo = vec![i as f64 * 9.0, 40.0];
//!         UncertainObject::uniform(i, HyperRect::new(lo.clone(), vec![lo[0] + 5.0, 46.0]), 12)
//!     })
//!     .collect();
//! let db = Db::new(LinearScan::new(&UncertainDb::new(domain.clone(), objects)));
//!
//! // Reads pin a consistent snapshot; writes publish a successor.
//! let q = Point::new(vec![2.0, 43.0]);
//! let before = db.query(&q, &QuerySpec::new().with_top_k(1))?;
//! db.insert(UncertainObject::uniform(
//!     99,
//!     HyperRect::new(vec![1.0, 42.0], vec![3.0, 44.0]),
//!     12,
//! ))?;
//! let after = db.query(&q, &QuerySpec::new().with_top_k(1))?;
//! assert_eq!(before.best().unwrap().0, 0);
//! assert_eq!(after.best().unwrap().0, 99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::{DbError, QueryError};
use crate::query::{
    BatchOutcome, BatchSlots, BatchStats, ProbNnEngine, QueryOutcome, QueryScratch, QuerySpec,
};
use crate::stats::{BuildStats, UpdateStats};
use pv_geom::Point;
use pv_uncertain::UncertainObject;
use std::fmt;
use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// A minimal atomically-swappable `Arc` slot, built on `std::sync` (the
/// workspace is offline, so the `arc-swap` crate is reimplemented in the
/// small).
///
/// `load` and `store` guard the slot with a mutex whose critical section is
/// a single `Arc` pointer clone or swap — a few nanoseconds, independent of
/// the engine behind the pointer. Readers therefore never wait on a
/// writer's *work* (forking, SE recomputation, page writes all happen
/// outside the lock); the only contention is pointer-sized. Lock poisoning
/// is neutralised (`Arc` clone/swap cannot leave the slot torn), so a
/// panicking thread cannot wedge the database.
#[derive(Debug)]
pub struct ArcSwap<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Wraps an initial value.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
        }
    }

    /// Returns a clone of the current `Arc` (pinning the value it points
    /// to until the clone is dropped).
    pub fn load(&self) -> Arc<T> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes `value`, returning the previously published `Arc`.
    pub fn store(&self, value: Arc<T>) -> Arc<T> {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, value)
    }
}

/// One published engine state: an immutable engine plus the monotonically
/// increasing version it was published at. Versions make snapshot isolation
/// *observable*: a reader can report exactly which published state answered
/// its query, which the concurrency stress test exploits.
#[derive(Debug)]
pub struct Snapshot<E> {
    version: u64,
    engine: E,
}

impl<E> Snapshot<E> {
    /// The publication version (`0` for the state [`Db::new`] wrapped).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The engine state.
    pub fn engine(&self) -> &E {
        &self.engine
    }
}

impl<E> Deref for Snapshot<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.engine
    }
}

/// A cheap read handle pinning one published [`Snapshot`].
///
/// Dereferences to the engine, so the whole read-only engine API
/// (`step1`, `execute`, statistics accessors, …) is available on the
/// pinned state. The snapshot stays alive — and every query through this
/// handle stays consistent — until the last clone of the handle drops,
/// even if the writer has long since published successors.
#[must_use = "a Reader pins a snapshot; drop it to release the state"]
#[derive(Debug, Clone)]
pub struct Reader<E> {
    snap: Arc<Snapshot<E>>,
}

impl<E> Reader<E> {
    /// The pinned snapshot's publication version.
    pub fn version(&self) -> u64 {
        self.snap.version
    }

    /// The pinned engine state.
    pub fn engine(&self) -> &E {
        &self.snap.engine
    }

    /// The underlying reference-counted snapshot (e.g. for
    /// `Arc::downgrade`-based lifetime assertions).
    pub fn pinned(&self) -> &Arc<Snapshot<E>> {
        &self.snap
    }
}

impl<E> Deref for Reader<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.snap.engine
    }
}

/// A query session owning pooled scratch memory.
///
/// [`Db::query`] allocates fresh buffers per call; a session keeps one
/// [`QueryScratch`], one [`QueryOutcome`] and one [`BatchSlots`] alive
/// across calls, so a steady-state serving loop runs **zero heap
/// allocations per query** — the PR-4 hot-path contract, preserved across
/// snapshot swaps because pinning a snapshot is just an `Arc` clone
/// (`tests/alloc_steady_state.rs` asserts this on the `Db` path).
///
/// Each call pins the *newest* published snapshot; two consecutive calls
/// may therefore answer from different versions. Pin a [`Reader`] instead
/// when a sequence of queries must share one consistent state.
#[must_use = "a Session pools scratch buffers; issue queries through it"]
pub struct Session<'db, E> {
    db: &'db Db<E>,
    scratch: QueryScratch,
    outcome: QueryOutcome,
    slots: BatchSlots,
}

impl<E: ProbNnEngine> fmt::Debug for Session<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("db", self.db)
            .finish_non_exhaustive()
    }
}

impl<'db, E: ProbNnEngine> Session<'db, E> {
    /// Executes `spec` at `q` against the newest published snapshot,
    /// reusing the session's buffers. The returned reference stays valid
    /// until the next call on this session.
    ///
    /// # Errors
    /// See [`ProbNnEngine::execute`].
    pub fn query(&mut self, q: &Point, spec: &QuerySpec) -> Result<&QueryOutcome, QueryError> {
        let snap = self.db.current.load();
        snap.engine
            .execute_into(q, spec, &mut self.scratch, &mut self.outcome)?;
        Ok(&self.outcome)
    }

    /// Executes `spec` at every point against the newest published
    /// snapshot, reusing the session's batch slots. Per-query outcomes are
    /// available via [`Session::outcomes`] until the next call.
    ///
    /// # Errors
    /// See [`ProbNnEngine::query_batch`].
    pub fn query_batch(
        &mut self,
        points: &[Point],
        spec: &QuerySpec,
    ) -> Result<BatchStats, QueryError>
    where
        E: Sync,
    {
        let snap = self.db.current.load();
        snap.engine.query_batch_into(points, spec, &mut self.slots)
    }

    /// The per-query outcomes of the latest **successful**
    /// [`Session::query_batch`] run, in input order. A failed call leaves
    /// the slots untouched (batch validation is up-front), so after an
    /// `Err` this still reflects the previous successful batch — check the
    /// `Result` before reading.
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.slots.outcomes
    }

    /// The database this session queries.
    pub fn db(&self) -> &'db Db<E> {
        self.db
    }
}

/// An engine that supports copy-on-write mutation through the [`Db`]
/// facade: fork an independent successor, apply fallible updates to it,
/// publish atomically.
///
/// The contract of [`WritableEngine::fork`] is *observational
/// independence*: no mutation of the fork may be observable through the
/// original, and vice versa. Sharing immutable state (`Arc`-shared pages,
/// persistent-structure arenas) is encouraged — that is what makes commits
/// cheap — as long as every write path copies before mutating anything a
/// sibling can still reach. `Db` relies on this for snapshot isolation;
/// `tests/cow_sharing.rs` checks it over randomized commit sequences.
pub trait WritableEngine: ProbNnEngine {
    /// An observationally independent copy of the engine to apply the next
    /// update batch against (copy-on-write sharing with `self` is fine).
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Inserts an object.
    ///
    /// # Errors
    /// [`DbError::DuplicateId`] when the id is already indexed;
    /// [`DbError::OutOfDomain`] when the engine tracks a domain and the
    /// object's region escapes it.
    fn apply_insert(&mut self, o: UncertainObject) -> Result<UpdateStats, DbError>;

    /// Removes an object by id.
    ///
    /// # Errors
    /// [`DbError::UnknownId`] when the id is not indexed.
    fn apply_remove(&mut self, id: u64) -> Result<UpdateStats, DbError>;

    /// Rebuilds the engine from its current object catalog (the paper's
    /// "Rebuild" maintenance competitor).
    fn apply_rebuild(&mut self) -> BuildStats;

    /// A freshly rebuilt successor over this engine's current object
    /// catalog, plus the build cost — what [`Db::rebuild`] publishes. The
    /// default forks and rebuilds the fork in place; engines whose rebuild
    /// already constructs an independent index straight from the catalog
    /// override this to skip the redundant fork (for the PV-index the fork
    /// is a full snapshot round-trip that a rebuild would immediately throw
    /// away).
    fn rebuilt(&self) -> (Self, BuildStats)
    where
        Self: Sized,
    {
        let mut fork = self.fork();
        let stats = fork.apply_rebuild();
        (fork, stats)
    }
}

/// An engine whose full state round-trips through a snapshot — the hook
/// [`Db::save`] / [`Db::open`] persist through, with failures surfaced as
/// [`DbError::Snapshot`].
///
/// The byte-level pair is the required surface: the durable write path
/// ([`crate::durable::DurableDb`]) routes snapshot bytes through an
/// injectable filesystem for atomic rotation and fault injection, so it
/// must be able to obtain them without touching `std::fs` itself. The
/// path-level pair has default implementations in terms of the bytes.
pub trait PersistentEngine: Sized {
    /// The engine's full state as one self-contained snapshot artifact
    /// (the versioned, checksummed envelope of `pv-storage::snapshot`).
    fn snapshot_bytes(&self) -> std::io::Result<Vec<u8>>;

    /// Restores an engine from bytes produced by
    /// [`PersistentEngine::snapshot_bytes`].
    ///
    /// # Errors
    /// Corruption and version skew yield an
    /// [`std::io::ErrorKind::InvalidData`] error wrapping the precise
    /// [`pv_storage::codec::DecodeError`].
    fn from_snapshot_bytes(bytes: &[u8]) -> std::io::Result<Self>;

    /// Serialises the engine to a snapshot file at `path`.
    fn save_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.snapshot_bytes()?)
    }

    /// Restores an engine from a snapshot written by
    /// [`PersistentEngine::save_to`].
    fn load_from(path: &Path) -> std::io::Result<Self> {
        Self::from_snapshot_bytes(&std::fs::read(path)?)
    }
}

/// A shared, concurrently-usable database handle over any query engine.
///
/// See the [module docs](self) for the concurrency model. `Db` is `Sync`
/// whenever the engine is `Send + Sync`: share one instance (or an
/// `Arc<Db<_>>`) across every serving thread.
#[must_use = "a Db serves queries; share it across threads"]
pub struct Db<E> {
    current: ArcSwap<Snapshot<E>>,
    /// Serialises writers. Readers never touch this lock.
    writer: Mutex<()>,
}

impl<E: ProbNnEngine> Db<E> {
    /// Wraps an engine as publication version 0.
    pub fn new(engine: E) -> Self {
        Self::at_version(engine, 0)
    }

    /// Wraps an engine at an explicit starting version — the recovery path
    /// of [`crate::durable::DurableDb`] uses this so versions survive a
    /// restart (a reader that recorded "answered at version 7" before a
    /// crash means the same state after one).
    pub fn at_version(engine: E, version: u64) -> Self {
        Self {
            current: ArcSwap::new(Arc::new(Snapshot { version, engine })),
            writer: Mutex::new(()),
        }
    }

    /// Pins the newest published snapshot as a cheap read handle.
    pub fn reader(&self) -> Reader<E> {
        Reader {
            snap: self.current.load(),
        }
    }

    /// Opens a query session with pooled scratch buffers (the
    /// allocation-free serving path).
    pub fn session(&self) -> Session<'_, E> {
        Session {
            db: self,
            scratch: QueryScratch::default(),
            outcome: QueryOutcome::default(),
            slots: BatchSlots::default(),
        }
    }

    /// The newest published version (0 until the first write commits).
    pub fn version(&self) -> u64 {
        self.current.load().version
    }

    /// Number of objects in the newest published snapshot.
    pub fn len(&self) -> usize {
        self.current.load().engine.len()
    }

    /// True when the newest published snapshot indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.current.load().engine.is_empty()
    }

    /// Dimensionality of the indexed data.
    pub fn dim(&self) -> usize {
        self.current.load().engine.dim()
    }

    /// Executes `spec` at `q` against the newest published snapshot with
    /// fresh buffers. Hot loops should prefer a [`Session`] (pooled
    /// buffers) or a pinned [`Reader`] (explicit snapshot control).
    ///
    /// # Errors
    /// See [`ProbNnEngine::execute`].
    pub fn query(&self, q: &Point, spec: &QuerySpec) -> Result<QueryOutcome, QueryError> {
        self.current.load().engine.execute(q, spec)
    }

    /// Executes `spec` at every point against one consistent snapshot.
    ///
    /// # Errors
    /// See [`ProbNnEngine::query_batch`].
    pub fn query_batch(
        &self,
        points: &[Point],
        spec: &QuerySpec,
    ) -> Result<BatchOutcome, QueryError>
    where
        E: Sync,
    {
        self.current.load().engine.query_batch(points, spec)
    }
}

impl<E: WritableEngine> Db<E> {
    /// Applies a batch of mutations to one copy-on-write successor and
    /// publishes it atomically — one [`WritableEngine::fork`] regardless of
    /// how many operations the closure applies. If the closure errors,
    /// nothing is published and the error is returned.
    ///
    /// Writers serialise on an internal lock; readers keep serving the old
    /// snapshot throughout and see the successor only after the closure
    /// returned `Ok` and the pointer swap completed.
    pub fn commit<T>(
        &self,
        mutate: impl FnOnce(&mut E) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = self.current.load();
        let mut successor = base.engine.fork();
        let out = mutate(&mut successor)?;
        self.publish(base.version, successor);
        drop(guard);
        Ok(out)
    }

    /// Publishes `successor` as `base_version + 1`. Must be called while
    /// holding the writer lock — the single place the publication protocol
    /// lives.
    fn publish(&self, base_version: u64, successor: E) {
        self.current.store(Arc::new(Snapshot {
            version: base_version + 1,
            engine: successor,
        }));
    }

    /// Inserts an object into a successor snapshot and publishes it.
    ///
    /// # Errors
    /// See [`WritableEngine::apply_insert`]; on error nothing is published.
    pub fn insert(&self, o: UncertainObject) -> Result<UpdateStats, DbError> {
        self.commit(|e| e.apply_insert(o))
    }

    /// Removes an object in a successor snapshot and publishes it.
    ///
    /// # Errors
    /// See [`WritableEngine::apply_remove`]; on error nothing is published.
    pub fn remove(&self, id: u64) -> Result<UpdateStats, DbError> {
        self.commit(|e| e.apply_remove(id))
    }

    /// Rebuilds the engine from its current object catalog in a successor
    /// snapshot and publishes it. Readers keep serving the old index for
    /// the whole (expensive) rebuild. Uses [`WritableEngine::rebuilt`]
    /// directly — no copy-on-write fork is paid, since a rebuild replaces
    /// the forked state wholesale anyway.
    pub fn rebuild(&self) -> BuildStats {
        let guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = self.current.load();
        let (successor, stats) = base.engine.rebuilt();
        self.publish(base.version, successor);
        drop(guard);
        stats
    }
}

impl<E: ProbNnEngine + PersistentEngine> Db<E> {
    /// Persists the newest published snapshot to `path`.
    ///
    /// # Errors
    /// [`DbError::Snapshot`] wrapping the underlying I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        self.current
            .load()
            .engine
            .save_to(path.as_ref())
            .map_err(DbError::from)
    }

    /// Opens a database from an engine snapshot file written by
    /// [`Db::save`] (or the engine's own `save`).
    ///
    /// # Errors
    /// [`DbError::Snapshot`] wrapping the underlying I/O failure or — for
    /// a corrupt file — the typed
    /// [`SnapshotError::Decode`](crate::error::SnapshotError) chain down to
    /// the codec-level [`pv_storage::codec::DecodeError`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DbError> {
        let engine = E::load_from(path.as_ref()).map_err(DbError::from)?;
        Ok(Self::new(engine))
    }
}

impl<E: ProbNnEngine> fmt::Debug for Db<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.current.load();
        f.debug_struct("Db")
            .field("engine", &snap.engine.engine_name())
            .field("version", &snap.version)
            .field("len", &snap.engine.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::LinearScan;
    use pv_geom::HyperRect;
    use pv_uncertain::UncertainDb;

    fn obj(id: u64, x: f64) -> UncertainObject {
        UncertainObject::uniform(id, HyperRect::new(vec![x, 0.0], vec![x + 2.0, 2.0]), 8)
    }

    fn small_db() -> Db<LinearScan> {
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let objects = (0..8u64).map(|i| obj(i, i as f64 * 10.0)).collect();
        Db::new(LinearScan::new(&UncertainDb::new(domain, objects)))
    }

    #[test]
    fn arc_swap_load_store() {
        let swap = ArcSwap::new(Arc::new(1u32));
        assert_eq!(*swap.load(), 1);
        let old = swap.store(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*swap.load(), 2);
    }

    #[test]
    fn reads_see_published_writes_in_order() {
        let db = small_db();
        assert_eq!(db.version(), 0);
        assert_eq!(db.len(), 8);
        db.insert(obj(100, 50.0)).unwrap();
        assert_eq!(db.version(), 1);
        assert_eq!(db.len(), 9);
        db.remove(100).unwrap();
        assert_eq!(db.version(), 2);
        assert_eq!(db.len(), 8);
    }

    #[test]
    fn readers_pin_old_snapshots() {
        let db = small_db();
        let pinned = db.reader();
        db.insert(obj(100, 50.0)).unwrap();
        db.insert(obj(101, 60.0)).unwrap();
        // The pinned reader still sees version 0 with 8 objects; a fresh
        // reader sees the latest.
        assert_eq!(pinned.version(), 0);
        assert_eq!(pinned.len(), 8);
        let fresh = db.reader();
        assert_eq!(fresh.version(), 2);
        assert_eq!(fresh.len(), 10);
    }

    #[test]
    fn failed_writes_publish_nothing() {
        let db = small_db();
        assert!(matches!(
            db.insert(obj(3, 1.0)),
            Err(DbError::DuplicateId(3))
        ));
        assert!(matches!(db.remove(777), Err(DbError::UnknownId(777))));
        // out of domain (LinearScan tracks the construction domain)
        assert!(matches!(
            db.insert(obj(50, 5000.0)),
            Err(DbError::OutOfDomain(50))
        ));
        assert_eq!(db.version(), 0, "failed writes must not publish");
        assert_eq!(db.len(), 8);
    }

    #[test]
    fn commit_batches_many_ops_into_one_publication() {
        let db = small_db();
        let n = db
            .commit(|e| {
                e.apply_insert(obj(200, 30.0))?;
                e.apply_insert(obj(201, 35.0))?;
                e.apply_remove(0)?;
                Ok(e.len())
            })
            .unwrap();
        assert_eq!(n, 9);
        assert_eq!(db.version(), 1, "one commit = one version");
        assert_eq!(db.len(), 9);
    }

    #[test]
    fn commit_rolls_back_on_error() {
        let db = small_db();
        let err = db.commit(|e| {
            e.apply_insert(obj(300, 30.0))?;
            e.apply_remove(999)?; // fails after a successful op
            Ok(())
        });
        assert!(matches!(err, Err(DbError::UnknownId(999))));
        assert_eq!(db.version(), 0);
        assert!(db
            .query(&Point::new(vec![31.0, 1.0]), &QuerySpec::new())
            .unwrap()
            .candidates
            .iter()
            .all(|&id| id != 300));
    }

    #[test]
    fn session_matches_fresh_queries() {
        let db = small_db();
        let mut session = db.session();
        let spec = QuerySpec::new().with_top_k(2);
        let points: Vec<Point> = (0..6)
            .map(|i| Point::new(vec![i as f64 * 13.0, 1.0]))
            .collect();
        for q in &points {
            let pooled = session.query(q, &spec).unwrap().answers.clone();
            let fresh = db.query(q, &spec).unwrap().answers;
            assert_eq!(pooled, fresh);
        }
        let stats = session
            .query_batch(&points, &spec.clone().with_batch_threads(1))
            .unwrap();
        assert_eq!(stats.queries, points.len());
        let batch = db.query_batch(&points, &spec).unwrap();
        for (a, b) in session.outcomes().iter().zip(batch.outcomes.iter()) {
            assert_eq!(a.answers, b.answers);
        }
    }

    #[test]
    fn query_errors_surface_through_the_facade() {
        let db = small_db();
        let bad = Point::new(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            db.query(&bad, &QuerySpec::new()),
            Err(QueryError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
        let mut session = db.session();
        assert!(session.query(&bad, &QuerySpec::new()).is_err());
    }

    #[test]
    fn rebuild_publishes_a_new_version() {
        let db = small_db();
        let stats = db.rebuild();
        let _ = stats; // LinearScan's rebuild is trivial; the publication matters
        assert_eq!(db.version(), 1);
        assert_eq!(db.len(), 8);
    }

    #[test]
    fn debug_formats_without_engine_debug_bound() {
        let db = small_db();
        let s = format!("{db:?}");
        assert!(s.contains("linear-scan") && s.contains("version"));
    }
}
