//! The unified query-engine API: request/response types and engine traits.
//!
//! The paper evaluates one query shape — a point PNNQ returning every object
//! with non-zero qualification probability — but the surrounding literature
//! (probability-threshold PNN, top-k PNN) and this repo's roadmap (batched,
//! multi-backend, concurrent serving) need a single engine-agnostic surface.
//! This module provides it:
//!
//! * [`QuerySpec`] — a builder describing *what to answer*: plain PNNQ,
//!   probability threshold, top-k, Step-1-only retrieval, an optional I/O
//!   budget, and batch parallelism;
//! * [`QueryOutcome`] / [`BatchOutcome`] — rich results: answers sorted by
//!   qualification probability, the raw Step-1 candidate set, per-phase
//!   [`Step1Stats`]/[`QueryStats`], and a truncation flag;
//! * [`Step1Engine`] — candidate retrieval (PNNQ Step 1), implemented by
//!   every index in the workspace;
//! * [`ProbNnEngine`] — full PNNQ. Engines implement two required hooks
//!   ([`ProbNnEngine::candidate_region`], [`ProbNnEngine::fetch_candidate`])
//!   plus, for the allocation-free hot path, the buffer-reusing overrides
//!   [`Step1Engine::step1_into`] and [`ProbNnEngine::fetch_dists_sq`], and
//!   inherit the entire Step-2 pipeline: squared-distance candidate
//!   ordering, early termination, the merged-CDF probability sweep, answer
//!   semantics, and batching
//!   ([`ProbNnEngine::query_batch`] / [`ProbNnEngine::query_batch_into`]
//!   with reusable [`BatchSlots`]).
//!
//! Every evaluation entry point is **fallible**: data-dependent misuse — a
//! query point of the wrong dimensionality, a query against an empty
//! engine, a [`ProbNnEngine::run`] call on a spec without a target — comes
//! back as a [`QueryError`] instead of a panic, so a serving layer (see
//! [`crate::db`]) can reject one bad request without taking the process
//! down. Spec-construction misuse (`with_top_k(0)`, a negative threshold)
//! stays a documented panic: it cannot depend on runtime data.
//!
//! # Answer semantics
//!
//! * default — every Step-1 candidate with its exact probability, zeros
//!   retained (the paper's semantics, plus filter observability);
//! * [`QuerySpec::with_threshold`]`(τ)` — answers with `p ≥ τ` and `p > 0`;
//! * [`QuerySpec::with_top_k`]`(k)` — the `k` highest-probability answers
//!   among those with `p > 0`.
//!
//! Raising `τ` yields a subset; `with_top_k(k)` is a prefix of
//! `with_top_k(k + 1)`; both agree with the
//! [`LinearScan`](crate::verify::LinearScan) ground truth
//! (`tests/answer_semantics.rs` at the workspace root checks the laws
//! across all four engines).
//!
//! The same spec runs unchanged on every engine — here against the
//! linear-scan ground truth:
//!
//! ```
//! use pv_core::query::{ProbNnEngine, QuerySpec};
//! use pv_core::verify::LinearScan;
//! use pv_geom::{HyperRect, Point};
//! use pv_uncertain::{UncertainDb, UncertainObject};
//!
//! let domain = HyperRect::cube(2, 0.0, 100.0);
//! let objects = (0..20u64)
//!     .map(|i| {
//!         let lo = vec![(i * 4) as f64, 10.0];
//!         let hi = vec![(i * 4 + 3) as f64, 13.0];
//!         UncertainObject::uniform(i, HyperRect::new(lo, hi), 16)
//!     })
//!     .collect();
//! let scan = LinearScan::new(&UncertainDb::new(domain, objects));
//!
//! let spec = QuerySpec::point(Point::new(vec![1.0, 11.0])).with_top_k(3);
//! let outcome = scan.run(&spec).unwrap();
//! assert!(!outcome.answers.is_empty() && outcome.answers.len() <= 3);
//! assert!(outcome.best().unwrap().1 > 0.0); // most likely NN, first
//!
//! // Malformed requests are values, not panics:
//! let bad = QuerySpec::point(Point::new(vec![1.0, 2.0, 3.0]));
//! assert!(scan.run(&bad).is_err()); // 3-D point, 2-D data
//! ```
//!
//! # Early termination
//!
//! When a threshold or top-k is requested, Step 2 visits candidates in
//! ascending `distmin` order and maintains `cutoff`, the smallest *farthest
//! instance distance* seen so far. A candidate `x` with
//! `distmin(x, q) > cutoff` is provably irrelevant: some fetched object `o`
//! has **all** instances strictly closer than all of `x`'s, so `P(x) = 0`;
//! and in every possible world that contributes probability mass to another
//! candidate the winning distance `d` satisfies `d < cutoff < distmin(x)`,
//! making `x`'s factor `P(dist(x, q) > d)` exactly `1`. Skipping `x`'s pdf
//! payload therefore changes no reported probability — the first
//! semantics-level optimization the old per-engine inherent methods could
//! not express. Because candidates are sorted by `distmin`, the first skip
//! ends the scan. (The driver compares `distmin²` against a squared cutoff —
//! the same argument, one `sqrt` cheaper.)

use crate::error::QueryError;
use crate::prob::{qualification_sweep_into, ProbScratch};
use crate::stats::{QueryStats, Step1Stats};
use pv_geom::{min_dist_sq, HyperRect, Point};
use pv_uncertain::UncertainObject;
use std::time::{Duration, Instant};

/// Engine-side reusable buffers: everything an engine needs to run Step 1
/// and fetch Step-2 payloads without touching the heap. Owned by
/// [`QueryScratch`], handed to [`Step1Engine::step1_into`] and
/// [`ProbNnEngine::fetch_dists_sq`]. Engines use whichever fields suit their
/// storage layout; unused fields stay empty and cost nothing.
#[derive(Debug, Default)]
pub struct FetchScratch {
    /// Raw page bytes (hash-bucket pages, overflow pages).
    pub page: Vec<u8>,
    /// Record/value bytes (secondary-index records).
    pub record: Vec<u8>,
    /// Instance-sampling buffers for the pdf payload path.
    pub samples: pv_uncertain::SampleScratch,
    /// Octree point-query descent buffers.
    pub octree: pv_octree::PointQueryScratch,
    /// Step-1 candidate triples `(id, distmin², distmax²)`.
    pub cand: Vec<(u64, f64, f64)>,
}

/// Per-thread reusable state for the Step-2 driver. Thread one instance
/// through repeated [`ProbNnEngine::execute_into`] calls (or let
/// [`ProbNnEngine::query_batch_into`] manage a set) and, once the buffers
/// have grown to the workload's working size, every query runs with **zero
/// heap allocations** — the property the counting-allocator test at the
/// workspace root asserts. The [`Session`](crate::db::Session) handle of
/// the concurrent [`Db`](crate::db::Db) facade pools one of these per
/// session so the contract survives snapshot swaps.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Candidates ordered by squared `distmin` (ascending, ties by id).
    order: Vec<(u64, f64)>,
    /// `(id, start, len)` spans into `dists`, in fetch order.
    spans: Vec<(u64, u32, u32)>,
    /// Flat buffer of per-candidate sorted squared instance distances.
    dists: Vec<f64>,
    /// Merged-CDF sweep state.
    prob: ProbScratch,
    /// Engine-side buffers.
    pub fetch: FetchScratch,
}

/// Reusable outcome + scratch storage for repeated
/// [`ProbNnEngine::query_batch_into`] runs. The outcome vectors are cleared
/// and refilled in place, so a steady-state batch loop re-running the same
/// workload performs no per-query heap allocation.
#[derive(Debug, Default)]
pub struct BatchSlots {
    /// Per-query outcomes of the latest run, in input order.
    pub outcomes: Vec<QueryOutcome>,
    scratches: Vec<QueryScratch>,
    /// One error slot per worker, reused across runs so the parallel path
    /// can report a worker failure without allocating a channel.
    errors: Vec<Option<QueryError>>,
}

impl BatchSlots {
    /// Empty slots; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A declarative description of one probabilistic-NN request.
///
/// Build with [`QuerySpec::point`] (single query) or [`QuerySpec::new`]
/// (a template for [`ProbNnEngine::query_batch`] /
/// [`ProbNnEngine::execute`]), then chain the `with_*` builder methods.
/// Each builder has a symmetric getter of the bare name
/// (`with_threshold(τ)` ↔ `threshold()`); the pre-PR-5 `get_*` getters
/// survive as deprecated shims.
///
/// ```
/// use pv_core::query::QuerySpec;
/// use pv_geom::Point;
///
/// let spec = QuerySpec::point(Point::new(vec![1.0, 2.0]))
///     .with_threshold(0.1)
///     .with_top_k(5)
///     .with_io_budget(64);
/// assert_eq!(spec.top_k(), Some(5));
/// assert_eq!(spec.threshold(), Some(0.1));
/// ```
#[must_use = "a QuerySpec does nothing until an engine executes it"]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpec {
    target: Option<Point>,
    threshold: Option<f64>,
    top_k: Option<usize>,
    step1_only: bool,
    io_budget: Option<u64>,
    batch_threads: Option<usize>,
}

impl QuerySpec {
    /// A spec with no target point — a template for
    /// [`ProbNnEngine::execute`] and [`ProbNnEngine::query_batch`], which
    /// supply the point(s) themselves.
    pub fn new() -> Self {
        Self::default()
    }

    /// A spec for a single PNNQ at `q`, runnable via
    /// [`ProbNnEngine::run`].
    pub fn point(q: Point) -> Self {
        Self {
            target: Some(q),
            ..Self::default()
        }
    }

    /// Keep only answers whose qualification probability is at least `tau`
    /// (and strictly positive). Enables Step-2 early termination.
    ///
    /// # Panics
    /// If `tau` is negative or not finite.
    pub fn with_threshold(mut self, tau: f64) -> Self {
        assert!(tau.is_finite() && tau >= 0.0, "threshold must be ≥ 0");
        self.threshold = Some(tau);
        self
    }

    /// Keep only the `k` highest-probability answers (positive probability
    /// only). Enables Step-2 early termination.
    ///
    /// # Panics
    /// If `k` is zero.
    pub fn with_top_k(mut self, k: usize) -> Self {
        assert!(k > 0, "top_k must be ≥ 1");
        self.top_k = Some(k);
        self
    }

    /// Stop after Step 1: [`QueryOutcome::candidates`] is populated,
    /// [`QueryOutcome::answers`] stays empty and no pdf payload is read.
    pub fn with_step1_only(mut self) -> Self {
        self.step1_only = true;
        self
    }

    /// Best-effort cap on total pages read per query (Step 1 + Step 2).
    /// Once the running count reaches the budget no further candidate
    /// payload is fetched and the outcome is flagged
    /// [`truncated`](QueryOutcome::truncated); probabilities computed from a
    /// truncated candidate set are upper bounds, not exact values.
    ///
    /// Engines that meter I/O through a shared pager (PV-index, UV-index)
    /// count concurrent queries' page reads against each other's budgets, so
    /// under a parallel [`ProbNnEngine::query_batch`] the truncation point —
    /// and therefore the answer set — can vary run to run. Combine a budget
    /// with [`QuerySpec::with_batch_threads`]`(1)` when reproducible
    /// budgeted results matter.
    pub fn with_io_budget(mut self, pages: u64) -> Self {
        self.io_budget = Some(pages);
        self
    }

    /// Worker threads for [`ProbNnEngine::query_batch`] (default: one per
    /// available core, capped at the batch size). `1` forces sequential
    /// execution.
    pub fn with_batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = Some(threads.max(1));
        self
    }

    /// The target point, if one was set via [`QuerySpec::point`].
    pub fn target(&self) -> Option<&Point> {
        self.target.as_ref()
    }

    /// The probability threshold, if any.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// The top-k cap, if any.
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// True when the spec stops after Step 1.
    pub fn is_step1_only(&self) -> bool {
        self.step1_only
    }

    /// The per-query I/O budget, if any.
    pub fn io_budget(&self) -> Option<u64> {
        self.io_budget
    }

    /// The requested batch parallelism, if any.
    pub fn batch_threads(&self) -> Option<usize> {
        self.batch_threads
    }

    /// Deprecated alias of [`QuerySpec::threshold`].
    #[deprecated(since = "0.5.0", note = "renamed to `threshold()`")]
    pub fn get_threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Deprecated alias of [`QuerySpec::top_k`].
    #[deprecated(since = "0.5.0", note = "renamed to `top_k()`")]
    pub fn get_top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Deprecated alias of [`QuerySpec::io_budget`].
    #[deprecated(since = "0.5.0", note = "renamed to `io_budget()`")]
    pub fn get_io_budget(&self) -> Option<u64> {
        self.io_budget
    }

    /// Deprecated alias of [`QuerySpec::batch_threads`].
    #[deprecated(since = "0.5.0", note = "renamed to `batch_threads()`")]
    pub fn get_batch_threads(&self) -> Option<usize> {
        self.batch_threads
    }

    /// True when the answer semantics allow dropping zero-probability
    /// candidates — the precondition for Step-2 early termination.
    fn prunes(&self) -> bool {
        self.threshold.is_some() || self.top_k.is_some()
    }
}

/// The result of one query executed through [`ProbNnEngine`].
#[must_use = "a QueryOutcome carries the answers and per-phase statistics"]
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// The Step-1 candidate set (ids ascending) — populated for every spec,
    /// including [`QuerySpec::with_step1_only`].
    pub candidates: Vec<u64>,
    /// Final answers `(id, qualification probability)`, sorted by
    /// probability descending (ties: id ascending). Empty for
    /// Step-1-only specs.
    pub answers: Vec<(u64, f64)>,
    /// Per-phase cost breakdown.
    pub stats: QueryStats,
    /// True when an [`QuerySpec::with_io_budget`] stopped Step 2 before
    /// every relevant candidate was processed (answers are then
    /// approximate).
    pub truncated: bool,
    /// Candidates whose pdf payload was never fetched: proven-zero
    /// candidates removed by early termination, plus any cut by the I/O
    /// budget.
    pub skipped_payloads: usize,
}

impl QueryOutcome {
    /// The most likely nearest neighbor, if any answer qualified.
    pub fn best(&self) -> Option<(u64, f64)> {
        self.answers.first().copied()
    }

    /// The qualification probability of `id`, if it is among the answers.
    pub fn probability_of(&self, id: u64) -> Option<f64> {
        self.answers
            .iter()
            .find(|&&(aid, _)| aid == id)
            .map(|&(_, p)| p)
    }

    /// Answer ids in reported (probability-descending) order.
    pub fn answer_ids(&self) -> Vec<u64> {
        self.answers.iter().map(|&(id, _)| id).collect()
    }

    /// Clears the outcome for reuse, keeping the vector capacities.
    fn reset(&mut self) {
        self.candidates.clear();
        self.answers.clear();
        self.stats = QueryStats::default();
        self.truncated = false;
        self.skipped_payloads = 0;
    }
}

/// Aggregated cost of a [`ProbNnEngine::query_batch`] run.
///
/// `io_reads` sums the per-outcome totals; engines meter I/O through shared
/// atomic counters, so under parallel execution a page read can be
/// attributed to more than one concurrent query — `wall_time` is the
/// authoritative throughput figure, per-query I/O is exact only at
/// `threads == 1`.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the whole batch.
    pub wall_time: Duration,
    /// Summed per-query total I/O (see the type-level note).
    pub io_reads: u64,
    /// Total answers across the batch.
    pub answers: usize,
    /// Queries flagged [`QueryOutcome::truncated`].
    pub truncated: usize,
}

impl BatchStats {
    /// Batch throughput in queries per second. Returns `0.0` (not `inf` or
    /// NaN) when the measured wall time is zero — sub-resolution clocks on
    /// tiny CI batches must not poison downstream aggregation.
    #[must_use]
    pub fn queries_per_sec(&self) -> f64 {
        let s = self.wall_time.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.queries as f64 / s
        }
    }
}

/// The result of a batch execution: one [`QueryOutcome`] per input point (in
/// input order) plus aggregated statistics.
#[must_use = "a BatchOutcome carries the per-query outcomes and batch statistics"]
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Per-query outcomes, in input order.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregated cost.
    pub stats: BatchStats,
}

/// PNNQ Step 1: retrieval of every object with a non-zero chance of being
/// the query point's nearest neighbor (possibly over-approximated by engines
/// with approximate cells, e.g. the UV-index).
pub trait Step1Engine {
    /// Short engine identifier for reports (`"pv-index"`, `"rtree"`, …).
    fn engine_name(&self) -> &'static str;

    /// Dimensionality of the indexed data. Drives the
    /// [`QueryError::DimensionMismatch`] validation in the shared driver.
    fn dim(&self) -> usize;

    /// Number of indexed objects. Drives the
    /// [`QueryError::EmptyDatabase`] validation in the shared driver.
    fn len(&self) -> usize;

    /// True when no object is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retrieves the candidate ids (ascending) with retrieval statistics.
    ///
    /// Step 1 is infallible by contract: callers reach it through the
    /// validated [`ProbNnEngine::execute_into`] driver (or validate
    /// themselves when calling it directly).
    fn step1(&self, q: &Point) -> (Vec<u64>, Step1Stats);

    /// Buffer-reusing Step 1: writes the candidate ids (ascending) into
    /// `ids` (cleared first) and returns the retrieval statistics. Engines
    /// override this with an allocation-free retrieval path; the default
    /// wraps [`Step1Engine::step1`] and merely recycles the output vector.
    ///
    /// The per-phase statistics must be measured with a single clock /
    /// I/O-counter pair around the whole retrieval — never inside the
    /// candidate loop (see [`ProbNnEngine::execute_into`]).
    fn step1_into(&self, q: &Point, ids: &mut Vec<u64>, scratch: &mut FetchScratch) -> Step1Stats {
        let _ = scratch;
        let (got, stats) = self.step1(q);
        ids.clear();
        ids.extend_from_slice(&got);
        stats
    }
}

/// Full probabilistic-NN query evaluation over a [`Step1Engine`].
///
/// Implementors provide the two data-access hooks; the whole Step-2
/// pipeline — input validation, candidate ordering, early termination,
/// probability computation, answer semantics and batching — is inherited.
pub trait ProbNnEngine: Step1Engine {
    /// The uncertainty region of a Step-1 candidate, served by reference
    /// from the engine's in-memory catalog (no I/O is charged; used for
    /// candidate ordering and pruning).
    fn candidate_region(&self, id: u64) -> &HyperRect;

    /// Fetches a candidate's full payload, returning the object and the
    /// number of pages the fetch charged (index pages actually read plus
    /// the pdf-payload pages of the storage model). This is the maintenance
    /// / inspection path; the query driver uses
    /// [`ProbNnEngine::fetch_dists_sq`], which never materialises the
    /// object.
    fn fetch_candidate(&self, id: u64) -> (UncertainObject, u64);

    /// Appends candidate `id`'s **squared** instance distances to `q` onto
    /// `out` and returns the pages the fetch charged (real index page reads
    /// plus the modelled pdf-payload pages) — the same accounting contract
    /// as [`ProbNnEngine::fetch_candidate`]. Engines with a shared pager
    /// meter their reads with a *narrow* per-fetch counter bracket, so under
    /// a parallel batch a concurrent query's reads can only leak into the
    /// attribution during the fetch itself, not across the whole Step-2
    /// phase. Engines override this with a decode-into-buffer path; the
    /// default materialises the object via
    /// [`ProbNnEngine::fetch_candidate`] — correct, but allocating.
    fn fetch_dists_sq(
        &self,
        id: u64,
        q: &Point,
        out: &mut Vec<f64>,
        scratch: &mut FetchScratch,
    ) -> u64 {
        let (obj, io) = self.fetch_candidate(id);
        obj.dists_sq_into(q, &mut scratch.samples, out);
        io
    }

    /// Validates `q` against the engine: dimensionality must match and at
    /// least one object must be indexed. Shared by every evaluation entry
    /// point; call it directly before a raw [`Step1Engine::step1`] when
    /// bypassing the driver.
    fn validate_point(&self, q: &Point) -> Result<(), QueryError> {
        if self.is_empty() {
            return Err(QueryError::EmptyDatabase);
        }
        let expected = self.dim();
        if q.dim() != expected {
            return Err(QueryError::DimensionMismatch {
                expected,
                got: q.dim(),
            });
        }
        Ok(())
    }

    /// Executes `spec` at point `q`.
    ///
    /// Convenience wrapper over [`ProbNnEngine::execute_into`] with fresh
    /// buffers; batch callers should reuse a [`QueryScratch`] (or use
    /// [`ProbNnEngine::query_batch_into`]) to amortise them away.
    ///
    /// # Errors
    /// [`QueryError::DimensionMismatch`] when `q` does not match the
    /// indexed data's dimensionality; [`QueryError::EmptyDatabase`] when
    /// nothing is indexed.
    fn execute(&self, q: &Point, spec: &QuerySpec) -> Result<QueryOutcome, QueryError> {
        let mut out = QueryOutcome::default();
        self.execute_into(q, spec, &mut QueryScratch::default(), &mut out)?;
        Ok(out)
    }

    /// Executes `spec` at point `q`, writing the result into `out` (cleared
    /// first) and reusing every buffer in `scratch` — the allocation-free
    /// query driver. On error `out` is left cleared.
    ///
    /// Step 2 works entirely in **squared** distances (ordering, the early
    /// termination cutoff and the probability kernel are all invariant
    /// under the monotone square), visits candidates in ascending
    /// `distmin²` order, and computes the probabilities with the merged-CDF
    /// sweep ([`qualification_sweep_into`]). Each phase is *timed* with a
    /// single `Instant` pair (the clock is never read inside the candidate
    /// loop); I/O is the sum of the per-fetch charges reported by
    /// [`ProbNnEngine::fetch_dists_sq`], keeping attribution narrow under
    /// concurrent batches.
    ///
    /// # Errors
    /// Same contract as [`ProbNnEngine::execute`].
    fn execute_into(
        &self,
        q: &Point,
        spec: &QuerySpec,
        scratch: &mut QueryScratch,
        out: &mut QueryOutcome,
    ) -> Result<(), QueryError> {
        out.reset();
        self.validate_point(q)?;
        out.stats.step1 = self.step1_into(q, &mut out.candidates, &mut scratch.fetch);
        if spec.is_step1_only() {
            return Ok(());
        }

        let t1 = Instant::now();
        // Visit candidates in ascending distmin² order so that (a) early
        // termination can stop at the first provably-irrelevant candidate
        // and (b) an I/O budget keeps the most promising ones.
        scratch.order.clear();
        for &id in out.candidates.iter() {
            scratch
                .order
                .push((id, min_dist_sq(self.candidate_region(id), q)));
        }
        scratch
            .order
            .sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let prune = spec.prunes();
        let mut cutoff_sq = f64::INFINITY; // min over fetched of max instance dist²
        let mut pc_io = 0u64;
        scratch.spans.clear();
        scratch.dists.clear();
        for (i, &(id, mind_sq)) in scratch.order.iter().enumerate() {
            if prune && mind_sq > cutoff_sq {
                // Sorted ascending: every remaining candidate is proven
                // irrelevant too (see the module-level soundness argument).
                out.skipped_payloads = scratch.order.len() - i;
                break;
            }
            if let Some(budget) = spec.io_budget() {
                if out.stats.step1.io_reads + pc_io >= budget {
                    out.truncated = true;
                    out.skipped_payloads = scratch.order.len() - i;
                    break;
                }
            }
            let start = scratch.dists.len() as u32;
            pc_io += self.fetch_dists_sq(id, q, &mut scratch.dists, &mut scratch.fetch);
            // `start ≤ len` always holds (the fetch only appends), so the
            // slice is `Some`; its sorted last element is the candidate's
            // farthest instance, which tightens the prune cutoff.
            if let Some(new_dists) = scratch.dists.get_mut(start as usize..) {
                new_dists.sort_unstable_by(f64::total_cmp);
                if let Some(&farthest_sq) = new_dists.last() {
                    cutoff_sq = cutoff_sq.min(farthest_sq);
                }
            }
            scratch
                .spans
                .push((id, start, scratch.dists.len() as u32 - start));
        }

        qualification_sweep_into(
            &scratch.spans,
            &scratch.dists,
            &mut scratch.prob,
            &mut out.answers,
        );
        out.answers
            .sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if let Some(tau) = spec.threshold() {
            out.answers.retain(|&(_, p)| p >= tau && p > 0.0);
        }
        if let Some(k) = spec.top_k() {
            out.answers.retain(|&(_, p)| p > 0.0);
            out.answers.truncate(k);
        }
        out.stats.pc_time = t1.elapsed();
        out.stats.pc_io_reads = pc_io;
        Ok(())
    }

    /// Executes a spec built with [`QuerySpec::point`].
    ///
    /// (Named `run` rather than `query` for historical reasons: the engines
    /// once carried inherent `query` methods, removed after a deprecation
    /// cycle, and the trait method was named to never collide with them.)
    ///
    /// # Errors
    /// [`QueryError::MissingTarget`] when the spec has no target point,
    /// plus the [`ProbNnEngine::execute`] contract.
    fn run(&self, spec: &QuerySpec) -> Result<QueryOutcome, QueryError> {
        let q = spec.target().ok_or(QueryError::MissingTarget)?;
        self.execute(q, spec)
    }

    /// Executes `spec` at every point of `points`, in parallel by default
    /// (`std::thread::scope` over chunks, like the parallel index build);
    /// `&self` queries are already shareable across threads. Control the
    /// worker count with [`QuerySpec::with_batch_threads`].
    ///
    /// Each worker reuses one [`QueryScratch`] across its whole chunk; for a
    /// serving loop that runs batch after batch, keep a [`BatchSlots`] and
    /// call [`ProbNnEngine::query_batch_into`] to also recycle the outcome
    /// storage.
    ///
    /// # Errors
    /// The whole batch is validated up front: the first offending point (or
    /// an empty engine) fails the call before any query runs, so there are
    /// no partial results.
    fn query_batch(&self, points: &[Point], spec: &QuerySpec) -> Result<BatchOutcome, QueryError>
    where
        Self: Sync,
    {
        let mut slots = BatchSlots::new();
        let stats = self.query_batch_into(points, spec, &mut slots)?;
        Ok(BatchOutcome {
            outcomes: slots.outcomes,
            stats,
        })
    }

    /// Buffer-reusing batch execution: like [`ProbNnEngine::query_batch`]
    /// but writing into `slots`, whose outcome vectors and per-worker
    /// scratches persist across calls. At steady state (a warmed `slots`
    /// re-running a same-shaped workload) the whole batch performs **zero
    /// per-query heap allocations** with `with_batch_threads(1)`; with more
    /// threads only the worker spawns allocate.
    ///
    /// # Errors
    /// Validated up front like [`ProbNnEngine::query_batch`]; on a
    /// validation error `slots` is left untouched. A per-query failure
    /// during execution (defensive — up-front validation covers every
    /// current [`QueryError`]) is propagated too, with the outcomes written
    /// so far left in place.
    fn query_batch_into(
        &self,
        points: &[Point],
        spec: &QuerySpec,
        slots: &mut BatchSlots,
    ) -> Result<BatchStats, QueryError>
    where
        Self: Sync,
    {
        let t0 = Instant::now();
        for p in points {
            self.validate_point(p)?;
        }
        let threads = spec
            .batch_threads()
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .clamp(1, points.len().max(1));
        // Chunk rounding can need fewer workers than requested (e.g. 10
        // points over 8 threads → 5 chunks of 2); report the count actually
        // used.
        let chunk = points.len().div_ceil(threads).max(1);
        let workers = points.len().div_ceil(chunk).max(1);
        slots
            .outcomes
            .resize_with(points.len(), QueryOutcome::default);
        if slots.scratches.len() < workers {
            slots.scratches.resize_with(workers, QueryScratch::default);
        }
        if workers <= 1 {
            // `scratches` was just resized to at least one entry, so
            // `first_mut` is `Some`; errors propagate directly.
            if let Some(scratch) = slots.scratches.first_mut() {
                for (q, out) in points.iter().zip(slots.outcomes.iter_mut()) {
                    self.execute_into(q, spec, scratch, out)?;
                }
            }
        } else {
            slots.errors.clear();
            slots.errors.resize_with(workers, || None);
            std::thread::scope(|scope| {
                for (((ps, outs), scratch), err) in points
                    .chunks(chunk)
                    .zip(slots.outcomes.chunks_mut(chunk))
                    .zip(slots.scratches.iter_mut())
                    .zip(slots.errors.iter_mut())
                {
                    scope.spawn(move || {
                        for (q, out) in ps.iter().zip(outs.iter_mut()) {
                            if let Err(e) = self.execute_into(q, spec, scratch, out) {
                                *err = Some(e);
                                return;
                            }
                        }
                    });
                }
            });
            if let Some(e) = slots.errors.iter_mut().find_map(Option::take) {
                return Err(e);
            }
        }
        Ok(BatchStats {
            queries: points.len(),
            threads: workers,
            wall_time: t0.elapsed(),
            io_reads: slots.outcomes.iter().map(|o| o.stats.total_io()).sum(),
            answers: slots.outcomes.iter().map(|o| o.answers.len()).sum(),
            truncated: slots.outcomes.iter().filter(|o| o.truncated).count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::LinearScan;
    use pv_uncertain::{Pdf, UncertainDb};
    use std::sync::Arc;

    fn explicit(id: u64, lo: &[f64], hi: &[f64], pts: &[&[f64]]) -> UncertainObject {
        UncertainObject {
            id,
            region: HyperRect::new(lo.to_vec(), hi.to_vec()),
            pdf: Pdf::Explicit(Arc::new(
                pts.iter().map(|p| Point::new(p.to_vec())).collect(),
            )),
        }
    }

    /// near: huge region [0,10] but instances at 1 and 2; far: region [5,6]
    /// with instances at 5 and 6. Step 1 keeps both (distmax(near) = 10),
    /// yet far's distmin (5) exceeds near's farthest instance (2), so a
    /// pruning spec must skip far's payload and still be exact.
    fn skip_db() -> UncertainDb {
        let domain = HyperRect::new(vec![0.0], vec![20.0]);
        let near = explicit(1, &[0.0], &[10.0], &[&[1.0], &[2.0]]);
        let far = explicit(2, &[5.0], &[6.0], &[&[5.0], &[6.0]]);
        UncertainDb::new(domain, vec![near, far])
    }

    #[test]
    fn step1_only_skips_step2() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let out = scan
            .execute(&q, &QuerySpec::new().with_step1_only())
            .unwrap();
        assert_eq!(out.candidates, vec![1, 2]);
        assert!(out.answers.is_empty());
        assert_eq!(out.stats.pc_io_reads, 0);
    }

    #[test]
    fn default_spec_retains_zero_probability_candidates() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let out = scan.execute(&q, &QuerySpec::new()).unwrap();
        assert_eq!(out.answers, vec![(1, 1.0), (2, 0.0)]);
        assert_eq!(out.skipped_payloads, 0);
        assert!(!out.truncated);
    }

    #[test]
    fn early_termination_skips_irrelevant_payloads_exactly() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let full = scan.execute(&q, &QuerySpec::new()).unwrap();
        let pruned = scan
            .execute(&q, &QuerySpec::new().with_threshold(1e-9))
            .unwrap();
        assert_eq!(pruned.answers, vec![(1, 1.0)]);
        assert_eq!(pruned.skipped_payloads, 1);
        assert!(pruned.stats.pc_io_reads < full.stats.pc_io_reads);
        // the retained probability is untouched by the skip
        assert_eq!(pruned.probability_of(1), full.probability_of(1));
    }

    #[test]
    fn threshold_is_monotone_and_top_k_is_a_prefix() {
        let domain = HyperRect::new(vec![0.0], vec![100.0]);
        // interleaved instances give a spread of probabilities
        let objs = vec![
            explicit(1, &[1.0], &[7.0], &[&[1.0], &[4.0], &[7.0]]),
            explicit(2, &[2.0], &[8.0], &[&[2.0], &[5.0], &[8.0]]),
            explicit(3, &[3.0], &[9.0], &[&[3.0], &[6.0], &[9.0]]),
        ];
        let db = UncertainDb::new(domain, objs);
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let mut prev = scan
            .execute(&q, &QuerySpec::new().with_threshold(0.0))
            .unwrap()
            .answers;
        for tau in [0.1, 0.3, 0.6, 0.9] {
            let cur = scan
                .execute(&q, &QuerySpec::new().with_threshold(tau))
                .unwrap()
                .answers;
            assert!(
                cur.iter().all(|a| prev.contains(a)),
                "threshold {tau} not a subset"
            );
            prev = cur;
        }
        let mut prefix: Vec<(u64, f64)> = Vec::new();
        for k in 1..=4 {
            let cur = scan
                .execute(&q, &QuerySpec::new().with_top_k(k))
                .unwrap()
                .answers;
            assert!(cur.len() <= k);
            assert_eq!(&cur[..prefix.len()], &prefix[..], "top_k({k}) prefix");
            prefix = cur;
        }
    }

    #[test]
    fn io_budget_truncates_and_flags() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let out = scan
            .execute(&q, &QuerySpec::new().with_io_budget(1))
            .unwrap();
        assert!(out.truncated);
        assert!(out.answers.len() <= out.candidates.len());
        let roomy = scan
            .execute(&q, &QuerySpec::new().with_io_budget(1_000))
            .unwrap();
        assert!(!roomy.truncated);
        assert_eq!(roomy.answers.len(), 2);
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let points: Vec<Point> = (0..16).map(|i| Point::new(vec![i as f64])).collect();
        let spec = QuerySpec::new().with_top_k(2);
        let seq = scan
            .query_batch(&points, &spec.clone().with_batch_threads(1))
            .unwrap();
        let par = scan
            .query_batch(&points, &spec.clone().with_batch_threads(4))
            .unwrap();
        assert_eq!(seq.stats.threads, 1);
        assert_eq!(par.stats.threads, 4);
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(par.outcomes.iter()) {
            assert_eq!(a.answers, b.answers);
            assert_eq!(a.candidates, b.candidates);
        }
        assert_eq!(seq.stats.queries, 16);
        assert_eq!(seq.stats.answers, par.stats.answers);
    }

    #[test]
    fn query_batch_into_reuses_slots_and_matches_fresh_runs() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let points: Vec<Point> = (0..9).map(|i| Point::new(vec![i as f64])).collect();
        let spec = QuerySpec::new().with_top_k(2).with_batch_threads(1);
        let mut slots = BatchSlots::new();
        let first = scan.query_batch_into(&points, &spec, &mut slots).unwrap();
        assert_eq!(first.queries, 9);
        let fresh = scan.query_batch(&points, &spec).unwrap();
        for (a, b) in slots.outcomes.iter().zip(fresh.outcomes.iter()) {
            assert_eq!(a.answers, b.answers);
            assert_eq!(a.candidates, b.candidates);
        }
        // Re-running into the same slots must fully overwrite the previous
        // outcomes, and shrinking the workload must shrink the outcome list.
        let shorter = &points[..4];
        let second = scan.query_batch_into(shorter, &spec, &mut slots).unwrap();
        assert_eq!(second.queries, 4);
        assert_eq!(slots.outcomes.len(), 4);
        for (out, q) in slots.outcomes.iter().zip(shorter.iter()) {
            assert_eq!(out.answers, scan.execute(q, &spec).unwrap().answers);
        }
    }

    #[test]
    fn execute_into_with_reused_scratch_matches_execute() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let mut scratch = QueryScratch::default();
        let mut out = QueryOutcome::default();
        for spec in [
            QuerySpec::new(),
            QuerySpec::new().with_threshold(0.1),
            QuerySpec::new().with_top_k(1),
            QuerySpec::new().with_step1_only(),
        ] {
            for i in 0..8 {
                let q = Point::new(vec![i as f64 * 1.5]);
                scan.execute_into(&q, &spec, &mut scratch, &mut out)
                    .unwrap();
                let fresh = scan.execute(&q, &spec).unwrap();
                assert_eq!(out.answers, fresh.answers);
                assert_eq!(out.candidates, fresh.candidates);
                assert_eq!(out.truncated, fresh.truncated);
                assert_eq!(out.skipped_payloads, fresh.skipped_payloads);
            }
        }
    }

    #[test]
    fn run_uses_the_spec_target() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let spec = QuerySpec::point(Point::new(vec![0.0])).with_top_k(1);
        let out = scan.run(&spec).unwrap();
        assert_eq!(out.best(), Some((1, 1.0)));
        assert_eq!(out.answer_ids(), vec![1]);
    }

    #[test]
    fn run_without_target_is_a_typed_error() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        assert_eq!(
            scan.run(&QuerySpec::new()).unwrap_err(),
            QueryError::MissingTarget
        );
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error() {
        let db = skip_db(); // 1-D data
        let scan = LinearScan::new(&db);
        let q2 = Point::new(vec![0.0, 1.0]);
        assert_eq!(
            scan.execute(&q2, &QuerySpec::new()).unwrap_err(),
            QueryError::DimensionMismatch {
                expected: 1,
                got: 2
            }
        );
        // batch validation is up-front: a bad point anywhere fails the call
        let points = vec![Point::new(vec![0.0]), q2];
        assert!(scan.query_batch(&points, &QuerySpec::new()).is_err());
    }

    #[test]
    fn empty_database_is_a_typed_error() {
        let domain = HyperRect::new(vec![0.0], vec![10.0]);
        let scan = LinearScan::new(&UncertainDb::new(domain, vec![]));
        assert_eq!(
            scan.execute(&Point::new(vec![1.0]), &QuerySpec::new())
                .unwrap_err(),
            QueryError::EmptyDatabase
        );
    }

    #[test]
    fn queries_per_sec_guards_zero_duration() {
        let stats = BatchStats {
            queries: 100,
            wall_time: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(stats.queries_per_sec(), 0.0);
        assert!(stats.queries_per_sec().is_finite());
        let real = BatchStats {
            queries: 100,
            wall_time: Duration::from_millis(500),
            ..Default::default()
        };
        assert!((real.queries_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_getter_shims_still_answer() {
        let spec = QuerySpec::new()
            .with_threshold(0.25)
            .with_top_k(3)
            .with_io_budget(9)
            .with_batch_threads(2);
        assert_eq!(spec.get_threshold(), spec.threshold());
        assert_eq!(spec.get_top_k(), spec.top_k());
        assert_eq!(spec.get_io_budget(), spec.io_budget());
        assert_eq!(spec.get_batch_threads(), spec.batch_threads());
    }
}
