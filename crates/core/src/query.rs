//! The unified query-engine API: request/response types and engine traits.
//!
//! The paper evaluates one query shape — a point PNNQ returning every object
//! with non-zero qualification probability — but the surrounding literature
//! (probability-threshold PNN, top-k PNN) and this repo's roadmap (batched,
//! multi-backend serving) need a single engine-agnostic surface. This module
//! provides it:
//!
//! * [`QuerySpec`] — a builder describing *what to answer*: plain PNNQ,
//!   probability threshold, top-k, Step-1-only retrieval, an optional I/O
//!   budget, and batch parallelism;
//! * [`QueryOutcome`] / [`BatchOutcome`] — rich results: answers sorted by
//!   qualification probability, the raw Step-1 candidate set, per-phase
//!   [`Step1Stats`]/[`QueryStats`], and a truncation flag;
//! * [`Step1Engine`] — candidate retrieval (PNNQ Step 1), implemented by
//!   every index in the workspace;
//! * [`ProbNnEngine`] — full PNNQ. Engines implement two small hooks
//!   ([`ProbNnEngine::candidate_region`], [`ProbNnEngine::fetch_candidate`])
//!   and inherit the entire Step-2 pipeline, including answer semantics,
//!   early termination and parallel [`ProbNnEngine::query_batch`].
//!
//! # Answer semantics
//!
//! * default — every Step-1 candidate with its exact probability, zeros
//!   retained (the paper's semantics, plus filter observability);
//! * [`QuerySpec::threshold`]`(τ)` — answers with `p ≥ τ` and `p > 0`;
//! * [`QuerySpec::top_k`]`(k)` — the `k` highest-probability answers among
//!   those with `p > 0`.
//!
//! Raising `τ` yields a subset; `top_k(k)` is a prefix of `top_k(k + 1)`;
//! both agree with the [`LinearScan`](crate::verify::LinearScan) ground
//! truth (`tests/answer_semantics.rs` at the workspace root checks the laws
//! across all four engines).
//!
//! The same spec runs unchanged on every engine — here against the
//! linear-scan ground truth:
//!
//! ```
//! use pv_core::query::{ProbNnEngine, QuerySpec};
//! use pv_core::verify::LinearScan;
//! use pv_geom::{HyperRect, Point};
//! use pv_uncertain::{UncertainDb, UncertainObject};
//!
//! let domain = HyperRect::cube(2, 0.0, 100.0);
//! let objects = (0..20u64)
//!     .map(|i| {
//!         let lo = vec![(i * 4) as f64, 10.0];
//!         let hi = vec![(i * 4 + 3) as f64, 13.0];
//!         UncertainObject::uniform(i, HyperRect::new(lo, hi), 16)
//!     })
//!     .collect();
//! let scan = LinearScan::new(&UncertainDb::new(domain, objects));
//!
//! let spec = QuerySpec::point(Point::new(vec![1.0, 11.0])).top_k(3);
//! let outcome = scan.run(&spec);
//! assert!(!outcome.answers.is_empty() && outcome.answers.len() <= 3);
//! assert!(outcome.best().unwrap().1 > 0.0); // most likely NN, first
//! ```
//!
//! # Early termination
//!
//! When a threshold or top-k is requested, Step 2 visits candidates in
//! ascending `distmin` order and maintains `cutoff`, the smallest *farthest
//! instance distance* seen so far. A candidate `x` with
//! `distmin(x, q) > cutoff` is provably irrelevant: some fetched object `o`
//! has **all** instances strictly closer than all of `x`'s, so `P(x) = 0`;
//! and in every possible world that contributes probability mass to another
//! candidate the winning distance `d` satisfies `d < cutoff < distmin(x)`,
//! making `x`'s factor `P(dist(x, q) > d)` exactly `1`. Skipping `x`'s pdf
//! payload therefore changes no reported probability — the first
//! semantics-level optimization the old per-engine inherent methods could
//! not express. Because candidates are sorted by `distmin`, the first skip
//! ends the scan.

use crate::prob::qualification_from_sorted;
use crate::stats::{QueryStats, Step1Stats};
use pv_geom::{min_dist, HyperRect, Point};
use pv_uncertain::UncertainObject;
use std::time::{Duration, Instant};

/// A declarative description of one probabilistic-NN request.
///
/// Build with [`QuerySpec::point`] (single query) or [`QuerySpec::new`]
/// (a template for [`ProbNnEngine::query_batch`] /
/// [`ProbNnEngine::execute`]), then chain the builder methods:
///
/// ```
/// use pv_core::query::QuerySpec;
/// use pv_geom::Point;
///
/// let spec = QuerySpec::point(Point::new(vec![1.0, 2.0]))
///     .threshold(0.1)
///     .top_k(5)
///     .io_budget(64);
/// assert_eq!(spec.get_top_k(), Some(5));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpec {
    target: Option<Point>,
    threshold: Option<f64>,
    top_k: Option<usize>,
    step1_only: bool,
    io_budget: Option<u64>,
    batch_threads: Option<usize>,
}

impl QuerySpec {
    /// A spec with no target point — a template for
    /// [`ProbNnEngine::execute`] and [`ProbNnEngine::query_batch`], which
    /// supply the point(s) themselves.
    pub fn new() -> Self {
        Self::default()
    }

    /// A spec for a single PNNQ at `q`, runnable via
    /// [`ProbNnEngine::run`].
    pub fn point(q: Point) -> Self {
        Self {
            target: Some(q),
            ..Self::default()
        }
    }

    /// Keep only answers whose qualification probability is at least `tau`
    /// (and strictly positive). Enables Step-2 early termination.
    ///
    /// # Panics
    /// If `tau` is negative or not finite.
    pub fn threshold(mut self, tau: f64) -> Self {
        assert!(tau.is_finite() && tau >= 0.0, "threshold must be ≥ 0");
        self.threshold = Some(tau);
        self
    }

    /// Keep only the `k` highest-probability answers (positive probability
    /// only). Enables Step-2 early termination.
    ///
    /// # Panics
    /// If `k` is zero.
    pub fn top_k(mut self, k: usize) -> Self {
        assert!(k > 0, "top_k must be ≥ 1");
        self.top_k = Some(k);
        self
    }

    /// Stop after Step 1: [`QueryOutcome::candidates`] is populated,
    /// [`QueryOutcome::answers`] stays empty and no pdf payload is read.
    pub fn step1_only(mut self) -> Self {
        self.step1_only = true;
        self
    }

    /// Best-effort cap on total pages read per query (Step 1 + Step 2).
    /// Once the running count reaches the budget no further candidate
    /// payload is fetched and the outcome is flagged
    /// [`truncated`](QueryOutcome::truncated); probabilities computed from a
    /// truncated candidate set are upper bounds, not exact values.
    ///
    /// Engines that meter I/O through a shared pager (PV-index, UV-index)
    /// count concurrent queries' page reads against each other's budgets, so
    /// under a parallel [`ProbNnEngine::query_batch`] the truncation point —
    /// and therefore the answer set — can vary run to run. Combine a budget
    /// with [`QuerySpec::batch_threads`]`(1)` when reproducible budgeted
    /// results matter.
    pub fn io_budget(mut self, pages: u64) -> Self {
        self.io_budget = Some(pages);
        self
    }

    /// Worker threads for [`ProbNnEngine::query_batch`] (default: one per
    /// available core, capped at the batch size). `1` forces sequential
    /// execution.
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = Some(threads.max(1));
        self
    }

    /// The target point, if one was set via [`QuerySpec::point`].
    pub fn target(&self) -> Option<&Point> {
        self.target.as_ref()
    }

    /// The probability threshold, if any.
    pub fn get_threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// The top-k cap, if any.
    pub fn get_top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// True when the spec stops after Step 1.
    pub fn is_step1_only(&self) -> bool {
        self.step1_only
    }

    /// The per-query I/O budget, if any.
    pub fn get_io_budget(&self) -> Option<u64> {
        self.io_budget
    }

    /// The requested batch parallelism, if any.
    pub fn get_batch_threads(&self) -> Option<usize> {
        self.batch_threads
    }

    /// True when the answer semantics allow dropping zero-probability
    /// candidates — the precondition for Step-2 early termination.
    fn prunes(&self) -> bool {
        self.threshold.is_some() || self.top_k.is_some()
    }
}

/// The result of one query executed through [`ProbNnEngine`].
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// The Step-1 candidate set (ids ascending) — populated for every spec,
    /// including [`QuerySpec::step1_only`].
    pub candidates: Vec<u64>,
    /// Final answers `(id, qualification probability)`, sorted by
    /// probability descending (ties: id ascending). Empty for
    /// Step-1-only specs.
    pub answers: Vec<(u64, f64)>,
    /// Per-phase cost breakdown.
    pub stats: QueryStats,
    /// True when an [`QuerySpec::io_budget`] stopped Step 2 before every
    /// relevant candidate was processed (answers are then approximate).
    pub truncated: bool,
    /// Candidates whose pdf payload was never fetched: proven-zero
    /// candidates removed by early termination, plus any cut by the I/O
    /// budget.
    pub skipped_payloads: usize,
}

impl QueryOutcome {
    /// The most likely nearest neighbor, if any answer qualified.
    pub fn best(&self) -> Option<(u64, f64)> {
        self.answers.first().copied()
    }

    /// The qualification probability of `id`, if it is among the answers.
    pub fn probability_of(&self, id: u64) -> Option<f64> {
        self.answers
            .iter()
            .find(|&&(aid, _)| aid == id)
            .map(|&(_, p)| p)
    }

    /// Answer ids in reported (probability-descending) order.
    pub fn answer_ids(&self) -> Vec<u64> {
        self.answers.iter().map(|&(id, _)| id).collect()
    }
}

/// Aggregated cost of a [`ProbNnEngine::query_batch`] run.
///
/// `io_reads` sums the per-outcome totals; engines meter I/O through shared
/// atomic counters, so under parallel execution a page read can be
/// attributed to more than one concurrent query — `wall_time` is the
/// authoritative throughput figure, per-query I/O is exact only at
/// `threads == 1`.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the whole batch.
    pub wall_time: Duration,
    /// Summed per-query total I/O (see the type-level note).
    pub io_reads: u64,
    /// Total answers across the batch.
    pub answers: usize,
    /// Queries flagged [`QueryOutcome::truncated`].
    pub truncated: usize,
}

impl BatchStats {
    /// Batch throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        let s = self.wall_time.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.queries as f64 / s
        }
    }
}

/// The result of a batch execution: one [`QueryOutcome`] per input point (in
/// input order) plus aggregated statistics.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Per-query outcomes, in input order.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregated cost.
    pub stats: BatchStats,
}

impl BatchOutcome {
    fn collect(outcomes: Vec<QueryOutcome>, wall_time: Duration, threads: usize) -> Self {
        let stats = BatchStats {
            queries: outcomes.len(),
            threads,
            wall_time,
            io_reads: outcomes.iter().map(|o| o.stats.total_io()).sum(),
            answers: outcomes.iter().map(|o| o.answers.len()).sum(),
            truncated: outcomes.iter().filter(|o| o.truncated).count(),
        };
        Self { outcomes, stats }
    }
}

/// PNNQ Step 1: retrieval of every object with a non-zero chance of being
/// the query point's nearest neighbor (possibly over-approximated by engines
/// with approximate cells, e.g. the UV-index).
pub trait Step1Engine {
    /// Short engine identifier for reports (`"pv-index"`, `"rtree"`, …).
    fn engine_name(&self) -> &'static str;

    /// Retrieves the candidate ids (ascending) with retrieval statistics.
    fn step1(&self, q: &Point) -> (Vec<u64>, Step1Stats);
}

/// Full probabilistic-NN query evaluation over a [`Step1Engine`].
///
/// Implementors provide the two data-access hooks; the whole Step-2
/// pipeline — candidate ordering, early termination, probability
/// computation, answer semantics and batching — is inherited.
pub trait ProbNnEngine: Step1Engine {
    /// The uncertainty region of a Step-1 candidate, served by reference
    /// from the engine's in-memory catalog (no I/O is charged; used for
    /// candidate ordering and pruning).
    fn candidate_region(&self, id: u64) -> &HyperRect;

    /// Fetches a candidate's full payload, returning the object and the
    /// number of pages the fetch charged (index pages actually read plus
    /// the pdf-payload pages of the storage model).
    fn fetch_candidate(&self, id: u64) -> (UncertainObject, u64);

    /// Executes `spec` at point `q`.
    fn execute(&self, q: &Point, spec: &QuerySpec) -> QueryOutcome {
        let (ids, step1) = self.step1(q);
        let mut stats = QueryStats {
            step1,
            pc_time: Duration::ZERO,
            pc_io_reads: 0,
        };
        if spec.is_step1_only() {
            return QueryOutcome {
                candidates: ids,
                stats,
                ..QueryOutcome::default()
            };
        }

        let t1 = Instant::now();
        // Visit candidates in ascending distmin order so that (a) early
        // termination can stop at the first provably-irrelevant candidate
        // and (b) an I/O budget keeps the most promising ones.
        let mut order: Vec<(u64, f64)> = ids
            .iter()
            .map(|&id| (id, min_dist(self.candidate_region(id), q)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let prune = spec.prunes();
        let mut cutoff = f64::INFINITY; // min over fetched of max instance dist
        let mut pc_io = 0u64;
        let mut truncated = false;
        let mut skipped = 0usize;
        let mut fetched: Vec<(u64, Vec<f64>)> = Vec::with_capacity(order.len());
        for (i, &(id, mind)) in order.iter().enumerate() {
            if prune && mind > cutoff {
                // Sorted ascending: every remaining candidate is proven
                // irrelevant too (see the module-level soundness argument).
                skipped = order.len() - i;
                break;
            }
            if let Some(budget) = spec.get_io_budget() {
                if stats.step1.io_reads + pc_io >= budget {
                    truncated = true;
                    skipped = order.len() - i;
                    break;
                }
            }
            let (obj, io) = self.fetch_candidate(id);
            pc_io += io;
            let mut dists: Vec<f64> = obj.samples().iter().map(|s| s.dist(q)).collect();
            dists.sort_unstable_by(f64::total_cmp);
            if let Some(&dmax) = dists.last() {
                cutoff = cutoff.min(dmax);
            }
            fetched.push((id, dists));
        }

        let mut answers = qualification_from_sorted(&fetched);
        answers.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if let Some(tau) = spec.get_threshold() {
            answers.retain(|&(_, p)| p >= tau && p > 0.0);
        }
        if let Some(k) = spec.get_top_k() {
            answers.retain(|&(_, p)| p > 0.0);
            answers.truncate(k);
        }
        stats.pc_time = t1.elapsed();
        stats.pc_io_reads = pc_io;
        QueryOutcome {
            candidates: ids,
            answers,
            stats,
            truncated,
            skipped_payloads: skipped,
        }
    }

    /// Executes a spec built with [`QuerySpec::point`].
    ///
    /// (Named `run` rather than `query` for historical reasons: the engines
    /// once carried inherent `query` methods, removed after a deprecation
    /// cycle, and the trait method was named to never collide with them.)
    ///
    /// # Panics
    /// If the spec has no target point.
    fn run(&self, spec: &QuerySpec) -> QueryOutcome {
        let q = spec
            .target()
            .expect("QuerySpec has no target point; build it with QuerySpec::point, or pass the point explicitly via execute/query_batch");
        self.execute(q, spec)
    }

    /// Executes `spec` at every point of `points`, in parallel by default
    /// (`std::thread::scope` over chunks, like the parallel index build);
    /// `&self` queries are already shareable across threads. Control the
    /// worker count with [`QuerySpec::batch_threads`].
    fn query_batch(&self, points: &[Point], spec: &QuerySpec) -> BatchOutcome
    where
        Self: Sync,
    {
        let t0 = Instant::now();
        let threads = spec
            .get_batch_threads()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, points.len().max(1));
        let (outcomes, workers): (Vec<QueryOutcome>, usize) = if threads <= 1 {
            (points.iter().map(|q| self.execute(q, spec)).collect(), 1)
        } else {
            // Chunk rounding can need fewer workers than requested
            // (e.g. 10 points over 8 threads → 5 chunks of 2); report the
            // count actually spawned.
            let chunk = points.len().div_ceil(threads);
            let workers = points.len().div_ceil(chunk);
            let chunk_results: Vec<Vec<QueryOutcome>> = std::thread::scope(|scope| {
                let handles: Vec<_> = points
                    .chunks(chunk)
                    .map(|ps| {
                        scope.spawn(move || {
                            ps.iter().map(|q| self.execute(q, spec)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch query worker panicked"))
                    .collect()
            });
            (chunk_results.into_iter().flatten().collect(), workers)
        };
        BatchOutcome::collect(outcomes, t0.elapsed(), workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::LinearScan;
    use pv_uncertain::{Pdf, UncertainDb};
    use std::sync::Arc;

    fn explicit(id: u64, lo: &[f64], hi: &[f64], pts: &[&[f64]]) -> UncertainObject {
        UncertainObject {
            id,
            region: HyperRect::new(lo.to_vec(), hi.to_vec()),
            pdf: Pdf::Explicit(Arc::new(
                pts.iter().map(|p| Point::new(p.to_vec())).collect(),
            )),
        }
    }

    /// near: huge region [0,10] but instances at 1 and 2; far: region [5,6]
    /// with instances at 5 and 6. Step 1 keeps both (distmax(near) = 10),
    /// yet far's distmin (5) exceeds near's farthest instance (2), so a
    /// pruning spec must skip far's payload and still be exact.
    fn skip_db() -> UncertainDb {
        let domain = HyperRect::new(vec![0.0], vec![20.0]);
        let near = explicit(1, &[0.0], &[10.0], &[&[1.0], &[2.0]]);
        let far = explicit(2, &[5.0], &[6.0], &[&[5.0], &[6.0]]);
        UncertainDb::new(domain, vec![near, far])
    }

    #[test]
    fn step1_only_skips_step2() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let out = scan.execute(&q, &QuerySpec::new().step1_only());
        assert_eq!(out.candidates, vec![1, 2]);
        assert!(out.answers.is_empty());
        assert_eq!(out.stats.pc_io_reads, 0);
    }

    #[test]
    fn default_spec_retains_zero_probability_candidates() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let out = scan.execute(&q, &QuerySpec::new());
        assert_eq!(out.answers, vec![(1, 1.0), (2, 0.0)]);
        assert_eq!(out.skipped_payloads, 0);
        assert!(!out.truncated);
    }

    #[test]
    fn early_termination_skips_irrelevant_payloads_exactly() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let full = scan.execute(&q, &QuerySpec::new());
        let pruned = scan.execute(&q, &QuerySpec::new().threshold(1e-9));
        assert_eq!(pruned.answers, vec![(1, 1.0)]);
        assert_eq!(pruned.skipped_payloads, 1);
        assert!(pruned.stats.pc_io_reads < full.stats.pc_io_reads);
        // the retained probability is untouched by the skip
        assert_eq!(pruned.probability_of(1), full.probability_of(1));
    }

    #[test]
    fn threshold_is_monotone_and_top_k_is_a_prefix() {
        let domain = HyperRect::new(vec![0.0], vec![100.0]);
        // interleaved instances give a spread of probabilities
        let objs = vec![
            explicit(1, &[1.0], &[7.0], &[&[1.0], &[4.0], &[7.0]]),
            explicit(2, &[2.0], &[8.0], &[&[2.0], &[5.0], &[8.0]]),
            explicit(3, &[3.0], &[9.0], &[&[3.0], &[6.0], &[9.0]]),
        ];
        let db = UncertainDb::new(domain, objs);
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let mut prev = scan.execute(&q, &QuerySpec::new().threshold(0.0)).answers;
        for tau in [0.1, 0.3, 0.6, 0.9] {
            let cur = scan.execute(&q, &QuerySpec::new().threshold(tau)).answers;
            assert!(
                cur.iter().all(|a| prev.contains(a)),
                "threshold {tau} not a subset"
            );
            prev = cur;
        }
        let mut prefix: Vec<(u64, f64)> = Vec::new();
        for k in 1..=4 {
            let cur = scan.execute(&q, &QuerySpec::new().top_k(k)).answers;
            assert!(cur.len() <= k);
            assert_eq!(&cur[..prefix.len()], &prefix[..], "top_k({k}) prefix");
            prefix = cur;
        }
    }

    #[test]
    fn io_budget_truncates_and_flags() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let q = Point::new(vec![0.0]);
        let out = scan.execute(&q, &QuerySpec::new().io_budget(1));
        assert!(out.truncated);
        assert!(out.answers.len() <= out.candidates.len());
        let roomy = scan.execute(&q, &QuerySpec::new().io_budget(1_000));
        assert!(!roomy.truncated);
        assert_eq!(roomy.answers.len(), 2);
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let points: Vec<Point> = (0..16).map(|i| Point::new(vec![i as f64])).collect();
        let spec = QuerySpec::new().top_k(2);
        let seq = scan.query_batch(&points, &spec.clone().batch_threads(1));
        let par = scan.query_batch(&points, &spec.clone().batch_threads(4));
        assert_eq!(seq.stats.threads, 1);
        assert_eq!(par.stats.threads, 4);
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(par.outcomes.iter()) {
            assert_eq!(a.answers, b.answers);
            assert_eq!(a.candidates, b.candidates);
        }
        assert_eq!(seq.stats.queries, 16);
        assert_eq!(seq.stats.answers, par.stats.answers);
    }

    #[test]
    fn run_uses_the_spec_target() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let spec = QuerySpec::point(Point::new(vec![0.0])).top_k(1);
        let out = scan.run(&spec);
        assert_eq!(out.best(), Some((1, 1.0)));
        assert_eq!(out.answer_ids(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "no target point")]
    fn run_without_target_panics() {
        let db = skip_db();
        let scan = LinearScan::new(&db);
        let _ = scan.run(&QuerySpec::new());
    }
}
