//! Tuning parameters of the PV-index (Table I of the paper).

/// `chooseCSet` strategy (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CSetStrategy {
    /// Return the whole database `S` as the candidate set. Correct but
    /// extremely slow (the paper measures ~10³ hours at 20k objects);
    /// included as the ALL baseline of Fig. 10(b).
    All,
    /// Fixed Selection: the `k` objects whose mean positions are closest to
    /// the mean of `o` (paper default `k = 200`).
    Fixed {
        /// Number of nearest means to select.
        k: usize,
    },
    /// Incremental Selection: examine NNs of `o` in ascending mean distance,
    /// skipping objects whose uncertainty regions overlap `u(o)`, until
    /// every one of the `2^d` partitions around `o` has seen at least
    /// `k_partition` candidates or `k_global` NNs were examined
    /// (paper defaults: 10 and 200).
    Incremental {
        /// Per-partition candidate quota.
        k_partition: usize,
        /// Global cap on examined nearest neighbors.
        k_global: usize,
    },
}

impl Default for CSetStrategy {
    fn default() -> Self {
        CSetStrategy::Incremental {
            k_partition: 10,
            k_global: 200,
        }
    }
}

/// All tunables of the PV-index, with the defaults of Table I.
#[derive(Debug, Clone, Copy)]
pub struct PvParams {
    /// SE termination threshold `Δ` (domain units; paper default 1).
    pub delta: f64,
    /// Partition budget `m_max` of the domination-count estimation
    /// (paper default 10).
    pub mmax: usize,
    /// `chooseCSet` strategy (paper default: IS).
    pub cset: CSetStrategy,
    /// Disk page size in bytes (paper: 4 KiB).
    pub page_size: usize,
    /// Main-memory budget for non-leaf primary-index nodes (paper: 5 MB).
    pub mem_budget: usize,
    /// R*-tree fanout for the bootstrap index (paper: 100).
    pub rtree_fanout: usize,
    /// Number of worker threads for bulk UBR construction (1 = serial;
    /// not part of the paper, exposed for the parallel-build ablation).
    pub build_threads: usize,
    /// UBR compression (the paper's §VIII "compression" future-work item):
    /// when set, every stored UBR is snapped *outward* onto a grid of this
    /// many steps per dimension and serialised as 2-byte cell indices.
    /// Step 1 stays exact (enlargement preserves `B(o) ⊇ V(o)`; the min/max
    /// filter removes the extra candidates) at a small I/O premium.
    pub ubr_quantize_steps: Option<u16>,
    /// `chooseCSet` strategy for commit-path SE runs (PR 6). Updates run SE
    /// with a leaner candidate set than builds: by Lemma 7 any non-empty
    /// C-set keeps `B(o) ⊇ V(o)`, so the only cost is a slightly looser
    /// rectangle — which the amortized maintenance queue later tightens.
    /// This is what lets a single-object commit finish in ~1 ms instead of
    /// paying the build-grade candidate set on the serving path.
    pub update_cset: CSetStrategy,
    /// Deferred UBR refreshes paid per commit (PR 6). Insertions leave
    /// neighbour UBRs untouched (a new object only shrinks PV-cells, so old
    /// rectangles stay conservative) and deletions grow them by a cheap
    /// rectangle union; the affected ids are queued and up to this many are
    /// re-tightened by warm-started SE per subsequent commit. Correctness
    /// never depends on the queue draining — only query-time pruning
    /// tightness does.
    pub update_budget: usize,
    /// Approximate-UBR mode (PR 8): when positive, SE terminates boundary
    /// refinement once the per-axis uncertainty gap drops below this value
    /// instead of `delta`, inflating every stored UBR by at most this much
    /// per axis side. UBRs are conservative by construction (Lemma 7), so a
    /// looser rectangle stays sound: Step 1 admits a few extra candidates
    /// and Step-2 qualification — hence every answer — is unchanged, while
    /// SE pays far fewer partition refinements. `0.0` (the default) is the
    /// exact mode. Set through [`PvParams::approx_ubr`].
    pub approx_epsilon: f64,
}

impl Default for PvParams {
    fn default() -> Self {
        Self {
            delta: 1.0,
            mmax: 10,
            cset: CSetStrategy::default(),
            page_size: 4096,
            mem_budget: 5 * 1024 * 1024,
            rtree_fanout: 100,
            build_threads: 1,
            ubr_quantize_steps: None,
            update_cset: CSetStrategy::Incremental {
                k_partition: 2,
                k_global: 16,
            },
            update_budget: 1,
            approx_epsilon: 0.0,
        }
    }
}

impl PvParams {
    /// Paper defaults but with FS candidate selection.
    pub fn with_fs(k: usize) -> Self {
        Self {
            cset: CSetStrategy::Fixed { k },
            ..Default::default()
        }
    }

    /// Paper defaults but with the ALL candidate set.
    pub fn with_all() -> Self {
        Self {
            cset: CSetStrategy::All,
            ..Default::default()
        }
    }

    /// Opt into approximate-UBR construction: SE stops refining each UBR
    /// boundary once its uncertainty gap is below `epsilon` (instead of
    /// `delta`), trading UBR tightness — at most `epsilon` of inflation per
    /// axis side — for far fewer refinement passes. Answers remain exact;
    /// see [`PvParams::approx_epsilon`].
    ///
    /// # Panics
    /// If `epsilon` is negative, NaN or infinite (cannot depend on runtime
    /// data).
    pub fn approx_ubr(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "approx_ubr epsilon must be finite and non-negative"
        );
        self.approx_epsilon = epsilon;
        self
    }

    /// The SE termination threshold in effect: `delta`, relaxed to
    /// `approx_epsilon` when the approximate mode dominates it. Every SE
    /// call site (build and update paths) goes through this, so approx-built
    /// indexes also maintain their looseness bound across commits.
    pub fn effective_delta(&self) -> f64 {
        self.delta.max(self.approx_epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let p = PvParams::default();
        assert_eq!(p.delta, 1.0);
        assert_eq!(p.mmax, 10);
        assert_eq!(p.page_size, 4096);
        assert_eq!(p.mem_budget, 5 * 1024 * 1024);
        assert_eq!(p.rtree_fanout, 100);
        assert_eq!(
            p.cset,
            CSetStrategy::Incremental {
                k_partition: 10,
                k_global: 200
            }
        );
    }

    #[test]
    fn strategy_constructors() {
        assert_eq!(PvParams::with_fs(50).cset, CSetStrategy::Fixed { k: 50 });
        assert_eq!(PvParams::with_all().cset, CSetStrategy::All);
    }

    #[test]
    fn approx_mode_relaxes_effective_delta() {
        let exact = PvParams::default();
        assert_eq!(exact.approx_epsilon, 0.0);
        assert_eq!(exact.effective_delta(), exact.delta);
        let approx = PvParams::default().approx_ubr(5.0);
        assert_eq!(approx.effective_delta(), 5.0);
        // An epsilon below delta never tightens the threshold.
        assert_eq!(PvParams::default().approx_ubr(0.25).effective_delta(), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_epsilon_panics() {
        let _ = PvParams::default().approx_ubr(-1.0);
    }
}
