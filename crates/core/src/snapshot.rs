//! Persistent index snapshots: build once, serve from disk forever after.
//!
//! [`crate::PvIndex::build`] is by far the most expensive operation in the
//! suite (every object pays a full SE run), yet the artifact it produces is
//! exactly what the paper envisions living on disk. This module serialises a
//! built [`PvIndex`] — simulated-disk image, octree UV-partition arena,
//! extendible-hash directory, object/UBR catalogs, parameters and build
//! statistics — into a single versioned, checksummed file that loads back in
//! O(file read), answering byte-identical to the freshly built index.
//!
//! File layout (shared [`pv_storage::snapshot`] envelope):
//!
//! ```text
//! "PVSN" | kind | version: u16 | payload … | fnv1a64 checksum: u64
//! ```
//!
//! PV-index payload (kind `PVIX`, version 1), in order: [`PvParams`],
//! domain, [`BuildStats`], object catalog (ids ascending), UBR catalog (same
//! order), raw [`MemPager`] image, octree arena
//! ([`pv_octree::Octree::to_snapshot`]) and hash directory
//! ([`pv_exthash::ExtHash::to_snapshot`]). The R-tree baseline (kind
//! `PVRT`) stores its object catalog and re-runs the deterministic bulk
//! load; the UV-index snapshot lives in `pv-uvindex` (kind `PVUV`) and is
//! built from the rect/duration helpers exported here.
//!
//! Corruption — truncation, bit flips, wrong file kind, future versions —
//! surfaces as a [`DecodeError`] (wrapped in
//! [`std::io::ErrorKind::InvalidData`] by the path-based `save`/`load`
//! wrappers), never as a panic.

use crate::baseline::RTreeBaseline;
use crate::cset::build_mean_tree;
use crate::params::{CSetStrategy, PvParams};
use crate::stats::{BuildStats, SeStats};
use crate::PvIndex;
use pv_exthash::ExtHash;
use pv_geom::HyperRect;
use pv_octree::Octree;
use pv_storage::codec::{self, DecodeError};
use pv_storage::snapshot::{open_snapshot, SnapshotWriter};
use pv_storage::{MemPager, Pager};
use pv_uncertain::UncertainObject;
use std::collections::HashMap;
use std::time::Duration;

/// Artifact kind of PV-index snapshots.
pub const PV_INDEX_KIND: [u8; 4] = *b"PVIX";
/// Artifact kind of R-tree baseline snapshots.
pub const RTREE_KIND: [u8; 4] = *b"PVRT";
/// Highest PV-index snapshot version this build reads and the version it
/// writes. Version 3 (PR 8) is *canonical*: the disk image is re-emitted
/// from the logical state at save time, wall-clock durations are zeroed and
/// `build_threads` is no longer stored, so any two logically equal indexes —
/// bulk- or legacy-built, at any thread count — serialise to identical
/// bytes. Version-2 files embedded the build-order-dependent page image and
/// are rejected rather than mis-decoded (their params layout also differs).
pub const PV_INDEX_VERSION: u16 = 3;
/// Highest R-tree baseline snapshot version this build reads/writes.
/// Version 2 (PR 5) added the stored domain; version-1 files (no domain,
/// different byte layout) are rejected rather than mis-decoded.
pub const RTREE_VERSION: u16 = 2;

// ---------------------------------------------------------------------------
// Shared field codecs (also used by the UV-index snapshot in `pv-uvindex`).
// ---------------------------------------------------------------------------

/// Serialises a rectangle as `2d × f64` corners (dimension known from
/// context).
pub fn put_rect(out: &mut Vec<u8>, r: &HyperRect) {
    for &x in r.lo() {
        codec::put_f64(out, x);
    }
    for &x in r.hi() {
        codec::put_f64(out, x);
    }
}

/// Reads a rectangle written by [`put_rect`].
pub fn try_rect(r: &mut codec::Reader, dim: usize) -> Result<HyperRect, DecodeError> {
    let lo: Vec<f64> = (0..dim).map(|_| r.try_f64()).collect::<Result<_, _>>()?;
    let hi: Vec<f64> = (0..dim).map(|_| r.try_f64()).collect::<Result<_, _>>()?;
    Ok(HyperRect::new(lo, hi))
}

/// Serialises a duration as nanoseconds (u64, saturating).
pub fn put_duration(out: &mut Vec<u8>, d: Duration) {
    codec::put_u64(out, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

/// Reads a duration written by [`put_duration`].
pub fn try_duration(r: &mut codec::Reader) -> Result<Duration, DecodeError> {
    Ok(Duration::from_nanos(r.try_u64()?))
}

/// Serialises construction statistics (they describe the snapshotted build,
/// so a warm restart can still report how expensive the cold build was).
pub fn put_build_stats(out: &mut Vec<u8>, bs: &BuildStats) {
    put_duration(out, bs.total_time);
    put_duration(out, bs.insert_time);
    codec::put_u64(out, bs.ubr_count as u64);
    put_duration(out, bs.se.cset_time);
    put_duration(out, bs.se.refine_time);
    codec::put_u64(out, bs.se.cset_size as u64);
    codec::put_u64(out, bs.se.slab_tests);
    codec::put_u64(out, bs.se.shrinks);
    codec::put_u64(out, bs.se.expands);
    codec::put_u64(out, bs.se.dom_tests);
    codec::put_u64(out, bs.se.partitions);
}

/// Reads construction statistics written by [`put_build_stats`].
pub fn try_build_stats(r: &mut codec::Reader) -> Result<BuildStats, DecodeError> {
    Ok(BuildStats {
        total_time: try_duration(r)?,
        insert_time: try_duration(r)?,
        ubr_count: r.try_u64()? as usize,
        se: SeStats {
            cset_time: try_duration(r)?,
            refine_time: try_duration(r)?,
            cset_size: r.try_u64()? as usize,
            slab_tests: r.try_u64()?,
            shrinks: r.try_u64()?,
            expands: r.try_u64()?,
            dom_tests: r.try_u64()?,
            partitions: r.try_u64()?,
        },
    })
}

/// Serialises the raw disk image of a [`MemPager`] — live pages verbatim,
/// freed slots as holes — so page ids survive the round trip.
pub fn put_pager_image(out: &mut Vec<u8>, pager: &MemPager) {
    let image = pager.image();
    codec::put_u32_len(out, pager.page_size());
    codec::put_u64(out, image.len() as u64);
    for slot in image {
        match slot {
            Some(page) => {
                codec::put_u8(out, 1);
                out.extend_from_slice(&page);
            }
            None => codec::put_u8(out, 0),
        }
    }
}

/// Reconstructs a [`MemPager`] from an image written by
/// [`put_pager_image`].
pub fn try_pager_image(r: &mut codec::Reader) -> Result<MemPager, DecodeError> {
    let page_size = r.try_u32()? as usize;
    // Mirror MemPager::new's own lower bound so corruption here is an error,
    // not a downstream panic. No upper bound: any page size a pager was
    // actually built with must load back (oversized values from corruption
    // fail as Truncated when the page bytes aren't there).
    if page_size < 64 {
        return Err(DecodeError::Invalid {
            context: "pager image page size",
        });
    }
    let slots = r.try_u64()? as usize;
    let mut image = Vec::with_capacity(slots.min(1 << 20));
    for _ in 0..slots {
        match r.try_u8()? {
            1 => image.push(Some(r.try_take(page_size)?)),
            0 => image.push(None),
            t => {
                return Err(DecodeError::UnknownTag {
                    context: "pager image slot",
                    tag: t.into(),
                })
            }
        }
    }
    Ok(MemPager::from_image(page_size, image))
}

/// Serialises an object catalog in ascending-id order (deterministic bytes
/// for identical indexes) and returns that order, so callers writing
/// parallel per-object sequences (UBRs) provably match the reader's pairing.
fn put_objects(out: &mut Vec<u8>, objects: &HashMap<u64, UncertainObject>) -> Vec<u64> {
    let mut ids: Vec<u64> = objects.keys().copied().collect();
    ids.sort_unstable();
    codec::put_u64(out, ids.len() as u64);
    for id in &ids {
        codec::put_bytes(out, &objects[id].encode());
    }
    ids
}

/// Reads a catalog written by `put_objects`, returning objects in stored
/// (ascending-id) order.
fn try_objects(r: &mut codec::Reader) -> Result<Vec<UncertainObject>, DecodeError> {
    let n = r.try_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let rec = r.try_bytes()?;
        out.push(UncertainObject::try_decode(&rec)?);
    }
    Ok(out)
}

fn put_params(out: &mut Vec<u8>, p: &PvParams) {
    codec::put_f64(out, p.delta);
    codec::put_u32_len(out, p.mmax);
    put_cset(out, p.cset);
    codec::put_u32_len(out, p.page_size);
    codec::put_u64(out, p.mem_budget as u64);
    codec::put_u32_len(out, p.rtree_fanout);
    // Snapshot v3 deliberately omits `build_threads`: the thread count
    // shapes nothing in the artifact (builds are deterministic across it),
    // and storing it would make otherwise-identical indexes differ.
    match p.ubr_quantize_steps {
        None => codec::put_u16(out, 0),
        Some(steps) => {
            codec::put_u16(out, 1);
            codec::put_u16(out, steps);
        }
    }
    // Snapshot v2 (PR 6): commit-path maintenance tuning. The budget is a
    // full u64 since v3 — `usize::MAX` is a legitimate "unbounded" setting
    // and must survive a snapshot round trip (the u32 prefix panicked on it).
    put_cset(out, p.update_cset);
    codec::put_u64(out, p.update_budget as u64);
    // Snapshot v3 (PR 8): approximate-UBR threshold, so a loaded index keeps
    // relaxing SE the same way on its update paths.
    codec::put_f64(out, p.approx_epsilon);
}

fn put_cset(out: &mut Vec<u8>, strategy: CSetStrategy) {
    match strategy {
        CSetStrategy::All => codec::put_u16(out, 0),
        CSetStrategy::Fixed { k } => {
            codec::put_u16(out, 1);
            codec::put_u32_len(out, k);
        }
        CSetStrategy::Incremental {
            k_partition,
            k_global,
        } => {
            codec::put_u16(out, 2);
            codec::put_u32_len(out, k_partition);
            codec::put_u32_len(out, k_global);
        }
    }
}

fn try_cset(r: &mut codec::Reader) -> Result<CSetStrategy, DecodeError> {
    Ok(match r.try_u16()? {
        0 => CSetStrategy::All,
        1 => CSetStrategy::Fixed {
            k: r.try_u32()? as usize,
        },
        2 => CSetStrategy::Incremental {
            k_partition: r.try_u32()? as usize,
            k_global: r.try_u32()? as usize,
        },
        t => {
            return Err(DecodeError::UnknownTag {
                context: "cset strategy",
                tag: t,
            })
        }
    })
}

fn try_params(r: &mut codec::Reader) -> Result<PvParams, DecodeError> {
    let delta = r.try_f64()?;
    let mmax = r.try_u32()? as usize;
    let cset = try_cset(r)?;
    let page_size = r.try_u32()? as usize;
    let mem_budget = r.try_u64()? as usize;
    let rtree_fanout = r.try_u32()? as usize;
    let ubr_quantize_steps = match r.try_u16()? {
        0 => None,
        1 => Some(r.try_u16()?),
        t => {
            return Err(DecodeError::UnknownTag {
                context: "quantize option",
                tag: t,
            })
        }
    };
    let update_cset = try_cset(r)?;
    let update_budget = r.try_u64()? as usize;
    let approx_epsilon = r.try_f64()?;
    if !(approx_epsilon.is_finite() && approx_epsilon >= 0.0) {
        return Err(DecodeError::Invalid {
            context: "approx epsilon",
        });
    }
    Ok(PvParams {
        delta,
        mmax,
        cset,
        page_size,
        mem_budget,
        rtree_fanout,
        // Not stored (v3): the thread count is a build-machine choice, not
        // index state. A loaded index defaults to serial rebuilds.
        build_threads: 1,
        ubr_quantize_steps,
        update_cset,
        update_budget,
        approx_epsilon,
    })
}

// ---------------------------------------------------------------------------
// PV-index snapshots.
// ---------------------------------------------------------------------------

/// Serialises a built [`PvIndex`] into snapshot bytes (kind `PVIX`).
///
/// The serialisation is **canonical**: instead of dumping the live pager
/// (whose page ids record the build's allocation history), the octree leaves
/// and the secondary hash table are re-emitted onto a fresh disk in a fixed
/// order — leaf records id-sorted, hash records re-encoded from the id
/// catalogs — and all wall-clock durations are zeroed. Two logically equal
/// indexes therefore produce identical bytes regardless of how they were
/// built (bulk vs. per-object insertion, any `build_threads`), which is what
/// the build-equivalence suite asserts on.
pub fn pv_index_to_bytes(index: &PvIndex) -> Vec<u8> {
    let mut w = SnapshotWriter::new(PV_INDEX_KIND, PV_INDEX_VERSION);
    let out = w.buf();
    put_params(out, &index.params);
    codec::put_u16_len(out, index.dim);
    put_rect(out, &index.domain);
    let stats = BuildStats {
        total_time: Duration::ZERO,
        insert_time: Duration::ZERO,
        ubr_count: index.build_stats.ubr_count,
        se: SeStats {
            cset_time: Duration::ZERO,
            refine_time: Duration::ZERO,
            ..index.build_stats.se
        },
    };
    put_build_stats(out, &stats);
    let ids = put_objects(out, &index.objects);
    for id in &ids {
        put_rect(out, &index.ubrs[id]);
    }
    // Canonical disk image: octree leaves first (records id-sorted within
    // each leaf), then the hash table bulk-built from id-sorted re-encoded
    // records. Allocation order on the fresh pager is thereby a pure
    // function of the logical state.
    let fresh = MemPager::new(index.params.page_size);
    let octree = index.octree.reemit_canonical(fresh.clone());
    let records: Vec<(u64, Vec<u8>)> = ids
        .iter()
        .map(|id| {
            (
                *id,
                crate::index::encode_secondary(
                    &index.ubrs[id],
                    &index.objects[id],
                    &index.domain,
                    index.params.ubr_quantize_steps,
                ),
            )
        })
        .collect();
    let secondary = ExtHash::bulk_build(
        fresh.clone(),
        records.iter().map(|(id, r)| (*id, r.as_slice())),
    );
    put_pager_image(out, &fresh);
    codec::put_bytes(out, &octree.to_snapshot());
    codec::put_bytes(out, &secondary.to_snapshot());
    w.finish()
}

/// Reconstructs a [`PvIndex`] from [`pv_index_to_bytes`] output.
///
/// The octree, hash table and disk image come back exactly as saved, so
/// queries read the same pages — and return the same answers — as against
/// the original index. Only the `chooseCSet` bootstrap R-tree (not used by
/// queries) is rebuilt, deterministically, from the stored catalog.
///
/// # Errors
/// Any corruption or version skew as a [`DecodeError`]; never panics.
pub fn pv_index_from_bytes(bytes: &[u8]) -> Result<PvIndex, DecodeError> {
    let (mut r, version) =
        open_snapshot(bytes, PV_INDEX_KIND, "PV-index snapshot", PV_INDEX_VERSION)?;
    if version < PV_INDEX_VERSION {
        // Pre-v3 files store `build_threads` inside the params block and a
        // non-canonical page image; their bytes cannot be decoded by this
        // layout, so reject cleanly instead of reading garbage.
        return Err(DecodeError::UnsupportedVersion {
            context: "PV-index snapshot",
            found: version,
            supported: PV_INDEX_VERSION,
        });
    }
    let params = try_params(&mut r)?;
    let dim = r.try_u16()? as usize;
    if dim == 0 || dim > 16 {
        return Err(DecodeError::Invalid {
            context: "PV-index snapshot dimensionality",
        });
    }
    let domain = try_rect(&mut r, dim)?;
    let build_stats = try_build_stats(&mut r)?;
    let object_list = try_objects(&mut r)?;
    let mut ubrs = HashMap::with_capacity(object_list.len());
    for o in &object_list {
        if o.region.dim() != dim {
            return Err(DecodeError::Invalid {
                context: "PV-index snapshot object dimensionality",
            });
        }
        ubrs.insert(o.id, try_rect(&mut r, dim)?);
    }
    let pager = try_pager_image(&mut r)?;
    let octree = Octree::from_snapshot(pager.clone(), &r.try_bytes()?)?;
    let secondary = ExtHash::from_snapshot(pager.clone(), &r.try_bytes()?)?;

    let regions: HashMap<u64, HyperRect> = object_list
        .iter()
        .map(|o| (o.id, o.region.clone()))
        .collect();
    // The bootstrap mean-position R-tree only feeds chooseCSet during
    // updates; rebuilding it from the id-sorted catalog is deterministic and
    // touches no query path.
    let mean_tree = build_mean_tree(
        object_list.iter().map(|o| (o.id, o.region.clone())),
        dim,
        params.rtree_fanout,
    );
    Ok(PvIndex {
        params,
        domain,
        dim,
        octree,
        secondary,
        pager,
        objects: object_list.into_iter().map(|o| (o.id, o)).collect(),
        regions,
        ubrs,
        mean_tree,
        build_stats,
        // The maintenance queue is a runtime tightness hint, not logical
        // state: a loaded index starts with nothing queued.
        stale: Default::default(),
    })
}

// ---------------------------------------------------------------------------
// R-tree baseline snapshots.
// ---------------------------------------------------------------------------

/// Serialises an [`RTreeBaseline`] (kind `PVRT`): domain, object catalog
/// and the bulk-load parameters — the tree itself is deterministic to
/// rebuild and orders of magnitude cheaper than the objects' SE-free bulk
/// load.
pub fn rtree_baseline_to_bytes(b: &RTreeBaseline) -> Vec<u8> {
    let mut w = SnapshotWriter::new(RTREE_KIND, RTREE_VERSION);
    let out = w.buf();
    codec::put_u16_len(out, b.tree.dim());
    codec::put_u32_len(out, b.fanout);
    codec::put_u32_len(out, b.page_size);
    put_rect(out, &b.domain);
    put_objects(out, &b.objects);
    w.finish()
}

/// Reconstructs an [`RTreeBaseline`] from [`rtree_baseline_to_bytes`]
/// output.
///
/// # Errors
/// Any corruption or version skew as a [`DecodeError`]; never panics.
pub fn rtree_baseline_from_bytes(bytes: &[u8]) -> Result<RTreeBaseline, DecodeError> {
    let (mut r, version) = open_snapshot(bytes, RTREE_KIND, "R-tree snapshot", RTREE_VERSION)?;
    if version < RTREE_VERSION {
        // Version 1 lacks the domain field, so its bytes cannot be decoded
        // by this layout; reject cleanly instead of reading garbage.
        return Err(DecodeError::UnsupportedVersion {
            context: "R-tree snapshot",
            found: version,
            supported: RTREE_VERSION,
        });
    }
    let dim = r.try_u16()? as usize;
    let fanout = r.try_u32()? as usize;
    let page_size = r.try_u32()? as usize;
    if dim == 0 || dim > 16 {
        return Err(DecodeError::Invalid {
            context: "R-tree snapshot dimensionality",
        });
    }
    if fanout < 4 {
        return Err(DecodeError::Invalid {
            context: "R-tree snapshot fanout",
        });
    }
    let domain = try_rect(&mut r, dim)?;
    let object_list = try_objects(&mut r)?;
    let entries: Vec<pv_rtree::Entry> = object_list
        .iter()
        .map(|o| pv_rtree::Entry {
            rect: o.region.clone(),
            id: o.id,
        })
        .collect();
    let tree = pv_rtree::RTree::bulk_load(dim, pv_rtree::RTreeParams::with_fanout(fanout), entries);
    Ok(RTreeBaseline {
        tree,
        objects: object_list.into_iter().map(|o| (o.id, o)).collect(),
        page_size,
        fanout,
        domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ProbNnEngine, QuerySpec, Step1Engine};
    use pv_workload::{queries, synthetic, SyntheticConfig};

    fn db(n: usize, dim: usize, seed: u64) -> pv_uncertain::UncertainDb {
        synthetic(&SyntheticConfig {
            n,
            dim,
            max_side: 180.0,
            samples: 12,
            seed,
        })
    }

    #[test]
    fn pv_index_roundtrips_bit_for_bit() {
        let db = db(220, 2, 91);
        let index = PvIndex::build(&db, PvParams::default());
        let bytes = pv_index_to_bytes(&index);
        let loaded = pv_index_from_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.dim(), index.dim());
        assert_eq!(
            loaded.build_stats().ubr_count,
            index.build_stats().ubr_count
        );
        for q in queries::uniform(index.domain(), 30, 17) {
            assert_eq!(
                loaded.execute(&q, &QuerySpec::new()).unwrap().answers,
                index.execute(&q, &QuerySpec::new()).unwrap().answers,
                "loaded index diverged at {q:?}"
            );
        }
        // a snapshot of the loaded index is byte-identical: the format is
        // canonical (id-sorted catalogs, verbatim page image)
        assert_eq!(pv_index_to_bytes(&loaded), bytes);
    }

    #[test]
    fn pv_index_roundtrip_3d_quantized() {
        let db = db(150, 3, 92);
        let index = PvIndex::build(
            &db,
            PvParams {
                ubr_quantize_steps: Some(4_096),
                ..Default::default()
            },
        );
        let loaded = pv_index_from_bytes(&pv_index_to_bytes(&index)).unwrap();
        assert_eq!(loaded.params().ubr_quantize_steps, Some(4_096));
        for q in queries::uniform(index.domain(), 15, 19) {
            assert_eq!(loaded.step1(&q).0, index.step1(&q).0);
        }
    }

    #[test]
    fn loaded_index_still_accepts_updates() {
        let db = db(150, 2, 93);
        let index = PvIndex::build(&db, PvParams::default());
        let mut loaded = pv_index_from_bytes(&pv_index_to_bytes(&index)).unwrap();
        // mutate the loaded copy: removals and inserts must keep Step 1 exact
        let mut objects = db.objects.clone();
        for id in (0..150u64).step_by(13) {
            assert!(loaded.remove(id).is_ok());
        }
        objects.retain(|o| o.id % 13 != 0);
        let extra = self::db(15, 2, 931);
        for (i, mut o) in extra.objects.into_iter().enumerate() {
            o.id = 70_000 + i as u64;
            objects.push(o.clone());
            loaded.insert(o).unwrap();
        }
        for q in queries::uniform(loaded.domain(), 20, 23) {
            let (got, _) = loaded.step1(&q);
            assert_eq!(got, crate::verify::possible_nn(objects.iter(), &q));
        }
    }

    #[test]
    fn rtree_baseline_roundtrips() {
        let db = db(200, 3, 94);
        let baseline = RTreeBaseline::build(&db, 16, 4096);
        let loaded = rtree_baseline_from_bytes(&rtree_baseline_to_bytes(&baseline)).unwrap();
        assert_eq!(loaded.len(), baseline.len());
        for q in queries::uniform(&db.domain, 25, 29) {
            assert_eq!(
                loaded.execute(&q, &QuerySpec::new()).unwrap().answers,
                baseline.execute(&q, &QuerySpec::new()).unwrap().answers
            );
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let db = db(30, 2, 95);
        let baseline = RTreeBaseline::build(&db, 8, 4096);
        let bytes = rtree_baseline_to_bytes(&baseline);
        assert!(matches!(
            pv_index_from_bytes(&bytes),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn save_load_through_files() {
        let db = db(80, 2, 96);
        let index = PvIndex::build(&db, PvParams::default());
        let path = std::env::temp_dir().join(format!("pv_snapshot_{}.pvix", std::process::id()));
        index.save(&path).unwrap();
        let loaded = PvIndex::load(&path).unwrap();
        let q = queries::uniform(index.domain(), 1, 31)[0].clone();
        assert_eq!(
            loaded.execute(&q, &QuerySpec::new()).unwrap().answers,
            index.execute(&q, &QuerySpec::new()).unwrap().answers
        );
        // truncated file loads as InvalidData, not a panic
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = PvIndex::load(&path).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
