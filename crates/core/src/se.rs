//! The Shrink-and-Expand (SE) algorithm — §V, Algorithm 1 of the paper.
//!
//! SE computes an Uncertain Bounding Rectangle `B(o) ⊇ V(o)` by maintaining
//! two rectangles sandwiching the (unknown) MBR `M(o)` of the PV-cell:
//!
//! * the **upper bound** `h(o)`, initialised to the domain `D`, which only
//!   ever *shrinks* — a boundary slab is cut away once it is proven disjoint
//!   from the non-dominated intersection `I(Cset, o) ⊇ V(o)`;
//! * the **lower bound** `l(o)`, initialised to `u(o) ⊆ V(o)` (Lemma 5),
//!   which only ever *expands*, and serves purely as a guide for placing the
//!   next bisecting plane.
//!
//! Each pass halves the gap between `h` and `l` in every one of the `2d`
//! directions, so the loop runs at most `⌈log2(|D|max/Δ)⌉` passes. On exit
//! `h(o)` is returned: because shrinking is the only operation that ever
//! removes volume and each removal is justified by the (conservative)
//! domination-count test, the invariant `h(o) ⊇ V(o)` holds throughout —
//! this is the soundness property the integration tests verify.
//!
//! The warm-started variants of §VI-B are obtained through [`SeBounds`]:
//! deletion recomputation starts from `l = B(S,o)` (the cell can only grow,
//! and even an overshooting `l` is harmless because only `h` carries the
//! correctness guarantee), insertion recomputation starts from
//! `h = B(S,o)` (the cell can only shrink).
//!
//! **Approximate-UBR mode (PR 8).** Callers opting into
//! [`PvParams::approx_ubr`](crate::PvParams::approx_ubr) simply pass a
//! relaxed threshold (`effective_delta() = max(Δ, ε)`) — SE itself needs no
//! code change. The refinement schedule is deterministic and *prefix-closed*
//! in the threshold: a larger threshold runs the identical sequence of
//! shrink/expand passes and merely terminates earlier, so the approximate
//! `h(o)` is a superset of the exact one (soundness is preserved; Lemma 7's
//! conservatism never depended on Δ), with at most the effective threshold
//! of slack per boundary side on top of the exact rectangle's own `Δ` bound.

use crate::cset::CandidateSet;
use crate::stats::SeStats;
use pv_geom::{DominationRun, DominationStats, HyperRect};
use pv_uncertain::UncertainObject;
use std::time::Instant;

/// Initial bounds for an SE run.
#[derive(Debug, Clone, Default)]
pub struct SeBounds {
    /// Lower bound `l(o)`; defaults to `u(o)`.
    pub lower: Option<HyperRect>,
    /// Upper bound `h(o)`; defaults to the domain `D`.
    pub upper: Option<HyperRect>,
}

impl SeBounds {
    /// Fresh construction: `l = u(o)`, `h = D`.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// Warm start for deletion maintenance: the old UBR seeds the lower
    /// bound (the PV-cell cannot shrink when an object disappears, Lemma 9).
    pub fn after_deletion(old_ubr: HyperRect) -> Self {
        Self {
            lower: Some(old_ubr),
            upper: None,
        }
    }

    /// Warm start for insertion maintenance: the old UBR seeds the upper
    /// bound (the PV-cell cannot grow when an object appears, Lemma 9).
    pub fn after_insertion(old_ubr: HyperRect) -> Self {
        Self {
            lower: None,
            upper: Some(old_ubr),
        }
    }
}

/// Runs SE for `o` against a previously selected candidate set, returning
/// the UBR and per-run statistics.
///
/// `delta` is the termination threshold `Δ` and `mmax` the partition budget
/// of the domination-count estimation (Table I).
pub fn compute_ubr(
    o: &UncertainObject,
    domain: &HyperRect,
    cset: &CandidateSet,
    delta: f64,
    mmax: usize,
) -> (HyperRect, SeStats) {
    se_core(
        &o.region,
        o.region.clone(),
        domain.clone(),
        domain,
        cset,
        delta,
        mmax,
    )
}

/// The SE loop. `target` is the true uncertainty region `u(o)` used by all
/// domination tests (the only thing soundness depends on); `l0`/`h0` are the
/// initial bounds, which the warm-started variants may seed with old UBRs.
#[allow(clippy::too_many_arguments)]
fn se_core(
    target: &HyperRect,
    l0: HyperRect,
    h0: HyperRect,
    domain: &HyperRect,
    cset: &CandidateSet,
    delta: f64,
    mmax: usize,
) -> (HyperRect, SeStats) {
    let started = Instant::now();
    let d = domain.dim();
    let mut stats = SeStats {
        cset_size: cset.len(),
        ..Default::default()
    };
    let dom_stats = DominationStats::default();
    // One run per SE invocation: flattens the candidate set once and carries
    // the move-to-front candidate order across slab tests (see
    // `DominationRun`); results are identical to the stateless form.
    let mut dom_run = DominationRun::new(&cset.regions, target);

    let mut h = h0;
    let mut l = l0;
    // Warm starts may hand us an `l` outside `h` (never happens with the
    // paper's own bounds, but clamp defensively).
    clamp_into(&mut l, &h);

    // Gap for direction (j, high?) — distance between the h and l planes.
    let gap = |h: &HyperRect, l: &HyperRect, j: usize, high: bool| -> f64 {
        if high {
            h.hi()[j] - l.hi()[j]
        } else {
            l.lo()[j] - h.lo()[j]
        }
    };
    let max_gap = |h: &HyperRect, l: &HyperRect| -> f64 {
        (0..d)
            .flat_map(|j| [gap(h, l, j, false), gap(h, l, j, true)])
            .fold(0.0, f64::max)
    };

    // Each pass halves every directional gap, so the bound below is the
    // paper's log(|D|max/Δ) iteration count (+ slack for float edge cases).
    let max_passes = {
        let span = domain.max_extent().max(1.0);
        (span / delta.max(1e-9)).log2().ceil() as usize + 4
    };

    for _pass in 0..max_passes {
        if max_gap(&h, &l) < delta {
            break;
        }
        // Every slab this pass tests is contained in the current `h`, and
        // `h` only ever shrinks — candidates dominating nowhere in `h` can
        // never discharge a piece again and are dropped for the whole rest
        // of the run (result-preserving, see `DominationRun::prune_for`).
        dom_run.prune_for(&h, Some(&dom_stats));
        for j in 0..d {
            for high in [false, true] {
                let g = gap(&h, &l, j, high);
                if g <= 0.0 {
                    continue;
                }
                // Mid-plane between h's and l's boundary in this direction.
                let (slab, mid) = if high {
                    let mid = 0.5 * (h.hi()[j] + l.hi()[j]);
                    let mut slab = h.clone();
                    slab.lo_mut()[j] = mid;
                    (slab, mid)
                } else {
                    let mid = 0.5 * (h.lo()[j] + l.lo()[j]);
                    let mut slab = h.clone();
                    slab.hi_mut()[j] = mid;
                    (slab, mid)
                };
                stats.slab_tests += 1;
                let empty = dom_run.region_fully_dominated(&slab, mmax, Some(&dom_stats));
                if empty {
                    // Shrink h: the slab cannot touch V(o).
                    stats.shrinks += 1;
                    if high {
                        h.hi_mut()[j] = mid;
                    } else {
                        h.lo_mut()[j] = mid;
                    }
                } else {
                    // Expand l up to the mid-plane.
                    stats.expands += 1;
                    if high {
                        l.hi_mut()[j] = mid;
                    } else {
                        l.lo_mut()[j] = mid;
                    }
                }
            }
        }
    }

    stats.dom_tests = dom_stats.dom_tests.get();
    stats.partitions = dom_stats.partitions.get();
    stats.refine_time = started.elapsed();
    (h, stats)
}

/// Variant taking explicit initial bounds (incremental maintenance, §VI-B).
///
/// The bounds only reposition the starting rectangles — all domination
/// tests still run against the true `u(o)`, so `h` keeps the conservative
/// invariant regardless of the seeds (this is the paper's footnote 4:
/// "Even if `B(S,o)` is larger than `M(S′,o)`, SE is still correct").
pub fn compute_ubr_with_bounds(
    o: &UncertainObject,
    domain: &HyperRect,
    cset: &CandidateSet,
    delta: f64,
    mmax: usize,
    bounds: SeBounds,
) -> (HyperRect, SeStats) {
    let h0 = bounds.upper.unwrap_or_else(|| domain.clone());
    let l0 = bounds.lower.unwrap_or_else(|| o.region.clone());
    se_core(&o.region, l0, h0, domain, cset, delta, mmax)
}

fn clamp_into(inner: &mut HyperRect, outer: &HyperRect) {
    let (ilo, ihi) = inner.corners_mut();
    for (((l, h), &ol), &oh) in ilo.iter_mut().zip(ihi).zip(outer.lo()).zip(outer.hi()) {
        *l = l.max(ol);
        *h = h.min(oh).max(*l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cset::{build_mean_tree, choose_cset};
    use crate::params::CSetStrategy;
    use pv_geom::{max_dist, min_dist, HyperRect, Point};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashMap;

    fn mk(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    /// Random 2-D database in [0,100]^2.
    fn random_db(n: usize, seed: u64) -> (HyperRect, Vec<UncertainObject>) {
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let lo: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..95.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.5..5.0)).collect();
                UncertainObject::uniform(i as u64, HyperRect::new(lo, hi), 8)
            })
            .collect();
        (domain, objects)
    }

    fn full_cset(o: &UncertainObject, objects: &[UncertainObject]) -> CandidateSet {
        let regions: HashMap<u64, HyperRect> =
            objects.iter().map(|x| (x.id, x.region.clone())).collect();
        let tree = build_mean_tree(regions.iter().map(|(&id, r)| (id, r.clone())), 2, 16);
        choose_cset(o, CSetStrategy::All, &tree, &regions)
    }

    /// Region-based possible-NN test: o can be the NN of p iff
    /// distmin(o,p) <= min over all o' of distmax(o',p).
    fn can_be_nn(o: &UncertainObject, objects: &[UncertainObject], p: &Point) -> bool {
        let tau = objects
            .iter()
            .map(|x| max_dist(&x.region, p))
            .fold(f64::INFINITY, f64::min);
        min_dist(&o.region, p) <= tau
    }

    #[test]
    fn single_object_keeps_the_whole_domain() {
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let o = UncertainObject::uniform(0, mk(&[40.0, 40.0], &[42.0, 42.0]), 8);
        let cset = CandidateSet {
            ids: vec![],
            regions: vec![],
        };
        let (ubr, _) = compute_ubr(&o, &domain, &cset, 1.0, 10);
        assert_eq!(ubr, domain, "no candidate can shrink anything");
    }

    #[test]
    fn two_distant_objects_split_the_domain() {
        // o on the left, a on the right: V(o) is roughly the left part; the
        // UBR must contain u(o) and exclude the far right margin.
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let o = UncertainObject::uniform(0, mk(&[10.0, 49.0], &[12.0, 51.0]), 8);
        let a = mk(&[90.0, 49.0], &[92.0, 51.0]);
        let cset = CandidateSet {
            ids: vec![1],
            regions: vec![a],
        };
        let (ubr, stats) = compute_ubr(&o, &domain, &cset, 0.5, 32);
        assert!(ubr.contains_rect(&o.region));
        // The bisector in x is near (10+92)/2 = 51 (shifted by uncertainty);
        // the UBR's right face must be far left of the domain edge...
        assert!(ubr.hi()[0] < 70.0, "ubr = {ubr:?}");
        // ...but must not cut into the true PV-cell: sample points left of
        // the bisector must stay inside.
        assert!(ubr.hi()[0] > 50.0, "ubr = {ubr:?}");
        assert!(stats.shrinks > 0);
    }

    #[test]
    fn ubr_contains_u_o_always() {
        let (domain, objects) = random_db(60, 1);
        for o in objects.iter().take(10) {
            let cset = full_cset(o, &objects);
            let (ubr, _) = compute_ubr(o, &domain, &cset, 1.0, 10);
            assert!(ubr.contains_rect(&o.region), "u(o) ⊆ V(o) ⊆ B(o)");
        }
    }

    #[test]
    fn ubr_is_conservative_wrt_possible_nn_points() {
        // Soundness: every point where o can be the NN must lie in B(o).
        let (domain, objects) = random_db(40, 2);
        let mut rng = StdRng::seed_from_u64(77);
        for o in objects.iter().take(8) {
            let cset = full_cset(o, &objects);
            let (ubr, _) = compute_ubr(o, &domain, &cset, 0.5, 10);
            for _ in 0..400 {
                let p = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
                if can_be_nn(o, &objects, &p) {
                    assert!(
                        ubr.contains_point(&p),
                        "point {p:?} is a possible-NN location outside B({})",
                        o.id
                    );
                }
            }
        }
    }

    #[test]
    fn smaller_delta_gives_tighter_or_equal_ubr() {
        let (domain, objects) = random_db(50, 3);
        let o = &objects[0];
        let cset = full_cset(o, &objects);
        let (coarse, _) = compute_ubr(o, &domain, &cset, 50.0, 10);
        let (fine, _) = compute_ubr(o, &domain, &cset, 0.1, 10);
        assert!(
            coarse.volume() >= fine.volume() - 1e-9,
            "coarse {} < fine {}",
            coarse.volume(),
            fine.volume()
        );
        // and the fine result is still conservative wrt the coarse lower
        // bound: both contain u(o)
        assert!(fine.contains_rect(&o.region));
    }

    #[test]
    fn larger_mmax_never_hurts_tightness() {
        let (domain, objects) = random_db(50, 4);
        let o = &objects[7];
        let cset = full_cset(o, &objects);
        let (small, _) = compute_ubr(o, &domain, &cset, 1.0, 2);
        let (large, _) = compute_ubr(o, &domain, &cset, 1.0, 40);
        assert!(large.volume() <= small.volume() + 1e-9);
    }

    #[test]
    fn termination_within_log_bound() {
        let (domain, objects) = random_db(80, 5);
        let o = &objects[3];
        let cset = full_cset(o, &objects);
        let (_, stats) = compute_ubr(o, &domain, &cset, 1.0, 10);
        // 2d directions × (log2(100/1) + slack) passes
        let bound = 2 * 2 * ((100.0f64).log2().ceil() as u64 + 5);
        assert!(
            stats.slab_tests <= bound,
            "slab tests {} exceed bound {bound}",
            stats.slab_tests
        );
    }

    #[test]
    fn warm_start_deletion_matches_fresh_run() {
        // After a deletion the PV-cell grows; seeding l with the old UBR
        // must still produce a conservative rectangle (equal or larger than
        // the fresh run's, never smaller than the true cell).
        let (domain, objects) = random_db(40, 6);
        let o = &objects[5];
        // database without object 11 ≈ post-deletion state
        let remaining: Vec<UncertainObject> =
            objects.iter().filter(|x| x.id != 11).cloned().collect();
        let cset_before = full_cset(o, &objects);
        let (old_ubr, _) = compute_ubr(o, &domain, &cset_before, 0.5, 10);
        let cset_after = full_cset(o, &remaining);
        let (fresh, _) = compute_ubr(o, &domain, &cset_after, 0.5, 10);
        let (warm, _) = compute_ubr_with_bounds(
            o,
            &domain,
            &cset_after,
            0.5,
            10,
            SeBounds::after_deletion(old_ubr),
        );
        // Both must be conservative; warm may be slightly looser but must
        // contain the fresh result's guarantee region u(o).
        assert!(warm.contains_rect(&o.region));
        assert!(fresh.contains_rect(&o.region));
        // Warm must contain every possible-NN point too (spot check).
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..300 {
            let p = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            if can_be_nn(o, &remaining, &p) {
                assert!(warm.contains_point(&p));
            }
        }
    }

    #[test]
    fn warm_start_insertion_shrinks_within_old_ubr() {
        let (domain, mut objects) = random_db(40, 7);
        let o = objects[5].clone();
        let cset_before = full_cset(&o, &objects);
        let (old_ubr, _) = compute_ubr(&o, &domain, &cset_before, 0.5, 10);
        // insert a new object near o: the cell can only shrink
        let newbie = UncertainObject::uniform(
            999,
            mk(
                &[o.region.lo()[0] + 6.0, o.region.lo()[1]],
                &[o.region.lo()[0] + 8.0, o.region.lo()[1] + 2.0],
            ),
            8,
        );
        objects.push(newbie);
        let cset_after = full_cset(&o, &objects);
        let (warm, _) = compute_ubr_with_bounds(
            &o,
            &domain,
            &cset_after,
            0.5,
            10,
            SeBounds::after_insertion(old_ubr.clone()),
        );
        assert!(old_ubr.contains_rect(&warm), "insertion can only shrink");
        assert!(warm.contains_rect(&o.region));
        let mut rng = StdRng::seed_from_u64(321);
        for _ in 0..300 {
            let p = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            if can_be_nn(&o, &objects, &p) {
                assert!(warm.contains_point(&p));
            }
        }
    }

    #[test]
    fn three_dimensional_se() {
        let domain = HyperRect::cube(3, 0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(8);
        let objects: Vec<UncertainObject> = (0..50)
            .map(|i| {
                let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..95.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.5..4.0)).collect();
                UncertainObject::uniform(i as u64, HyperRect::new(lo, hi), 8)
            })
            .collect();
        let o = &objects[0];
        let regions: HashMap<u64, HyperRect> =
            objects.iter().map(|x| (x.id, x.region.clone())).collect();
        let tree = build_mean_tree(regions.iter().map(|(&id, r)| (id, r.clone())), 3, 16);
        let cset = choose_cset(o, CSetStrategy::default(), &tree, &regions);
        let (ubr, stats) = compute_ubr(o, &domain, &cset, 1.0, 10);
        assert!(ubr.contains_rect(&o.region));
        assert!(ubr.volume() < domain.volume(), "should shrink somewhere");
        assert!(stats.shrinks > 0);
    }
}
