//! Crash-safe durability: the write-ahead-logged, snapshot-rotated `Db`.
//!
//! [`Db`] commits are volatile — a crash between a commit
//! and a manual [`Db::save`](crate::db::Db::save) loses every acknowledged
//! write. [`DurableDb`] closes that gap with the classic WAL + checkpoint
//! protocol over a directory it owns:
//!
//! ```text
//! <dir>/wal                  append-only commit log (pv-storage::wal)
//! <dir>/snap.<v>.pvix        current snapshot generation (engine at v)
//! <dir>/snap.<v'>.tmp        in-flight rotation (removed at recovery)
//! ```
//!
//! **Commit path.** Each [`DurableDb::commit`] applies its operation batch
//! to a copy-on-write fork (validating every operation *before* anything
//! touches disk), appends the encoded batch to the WAL, fsyncs per the
//! [`SyncPolicy`], and only then publishes the successor snapshot to
//! readers. An operation batch is therefore acknowledged if and only if it
//! is in the log; a crash at any byte of the append leaves a torn tail the
//! next replay truncates away — exactly the unacknowledged suffix.
//!
//! **Rotation (compaction).** When the log passes the [`DurableOptions`]
//! watermarks, the current engine state is written to `snap.<v>.tmp`,
//! fsynced, atomically renamed over the previous generation, the directory
//! entry fsynced, and the log truncated back to its header. Every step is
//! crash-safe: until the `rename(2)` commits, recovery uses the old
//! generation plus the full log; after it, replay skips records the new
//! generation already contains.
//!
//! **Recovery.** [`DurableDb::open`] removes leftover `.tmp` files, loads
//! the newest `snap.<v>.pvix`, replays the WAL's surviving records with
//! version > v through the engine's own `apply_insert`/`apply_remove`, and
//! resumes at the recovered version. Damage beyond the tolerated crash
//! signatures is never guessed around — see
//! [`RecoveryError`] for the taxonomy.
//!
//! All file I/O runs through an injectable [`Fs`], so the
//! crash-consistency torture suite (`tests/crash_consistency.rs`) can cut
//! writes at every byte and prove the "exactly some acknowledged-prefix
//! version" invariant holds.
//!
//! ```
//! use pv_core::durable::{DbOp, DurableDb, DurableOptions};
//! use pv_core::{LinearScan, QuerySpec};
//! use pv_geom::{HyperRect, Point};
//! use pv_uncertain::{UncertainDb, UncertainObject};
//!
//! let dir = std::env::temp_dir().join(format!("pv_durable_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let domain = HyperRect::cube(2, 0.0, 100.0);
//! let objects = (0..4u64)
//!     .map(|i| {
//!         let lo = vec![i as f64 * 20.0, 40.0];
//!         UncertainObject::uniform(i, HyperRect::new(lo.clone(), vec![lo[0] + 5.0, 46.0]), 8)
//!     })
//!     .collect();
//! let scan = LinearScan::new(&UncertainDb::new(domain, objects));
//!
//! // Create: snapshot generation 0 + empty WAL hit disk before returning.
//! let db = DurableDb::create(&dir, scan, DurableOptions::default())?;
//! let commit = db.insert(UncertainObject::uniform(
//!     99,
//!     HyperRect::new(vec![1.0, 41.0], vec![3.0, 43.0]),
//!     8,
//! ))?;
//! assert!(commit.synced, "EveryCommit policy: acknowledged = crash-durable");
//! drop(db);
//!
//! // Reopen: the acknowledged insert survives.
//! let (db, report) = DurableDb::<LinearScan>::open(&dir, DurableOptions::default())?;
//! assert_eq!(report.replayed_commits, 1);
//! assert_eq!(db.db().version(), 1);
//! let hit = db.db().query(&Point::new(vec![2.0, 42.0]), &QuerySpec::new().with_top_k(1))?;
//! assert_eq!(hit.best().unwrap().0, 99);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::db::{Db, PersistentEngine, WritableEngine};
use crate::error::{DbError, RecoveryError, SnapshotError};
use crate::stats::UpdateStats;
use pv_storage::codec::{self, DecodeError};
use pv_storage::fsio::{Fs, RetryPolicy, StdFs};
use pv_storage::wal::{TornTail, Wal};
use pv_uncertain::UncertainObject;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// One engine-level mutation, as logged and replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum DbOp {
    /// Insert an object.
    Insert(UncertainObject),
    /// Remove the object with this id.
    Remove(u64),
}

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// Encodes an operation batch as a WAL record body.
pub fn encode_ops(ops: &[DbOp]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32_len(&mut out, ops.len());
    for op in ops {
        match op {
            DbOp::Insert(o) => {
                codec::put_u8(&mut out, OP_INSERT);
                codec::put_bytes(&mut out, &o.encode());
            }
            DbOp::Remove(id) => {
                codec::put_u8(&mut out, OP_REMOVE);
                codec::put_u64(&mut out, *id);
            }
        }
    }
    out
}

/// Decodes a WAL record body written by [`encode_ops`].
pub fn decode_ops(bytes: &[u8]) -> Result<Vec<DbOp>, DecodeError> {
    let mut r = codec::Reader::new(bytes);
    let n = r.try_u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        match r.try_u8()? {
            OP_INSERT => {
                let rec = r.try_bytes()?;
                ops.push(DbOp::Insert(UncertainObject::try_decode(&rec)?));
            }
            OP_REMOVE => ops.push(DbOp::Remove(r.try_u64()?)),
            t => {
                return Err(DecodeError::UnknownTag {
                    context: "durable operation",
                    tag: t.into(),
                })
            }
        }
    }
    if r.remaining() != 0 {
        return Err(DecodeError::Invalid {
            context: "durable operation batch (trailing bytes)",
        });
    }
    Ok(ops)
}

/// When acknowledged commits are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every commit: an `Ok` means the write survives any
    /// crash. The default — and the policy the durability guarantees in
    /// the module docs are stated for.
    EveryCommit,
    /// `fsync` after every `n`-th commit: bounded loss window in exchange
    /// for amortised fsync cost (group commit).
    EveryN(u32),
    /// Only [`DurableDb::sync`] fsyncs. Acknowledged-but-unsynced commits
    /// can be lost to a crash — recovery still lands on an acknowledged
    /// *prefix*, just maybe not the newest.
    Manual,
}

/// Tuning for a [`DurableDb`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Fsync cadence for the commit path.
    pub sync: SyncPolicy,
    /// Rotate the snapshot once the log holds this many commits.
    pub compact_after_commits: u64,
    /// Rotate the snapshot once the log reaches this many bytes.
    pub compact_after_bytes: u64,
    /// Retry budget for transient I/O faults on the durable path.
    pub retry: RetryPolicy,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::EveryCommit,
            compact_after_commits: 1024,
            compact_after_bytes: 16 << 20,
            retry: RetryPolicy::default(),
        }
    }
}

/// What [`DurableDb::open`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Version of the snapshot generation recovery started from.
    pub snapshot_version: u64,
    /// WAL commits replayed on top of it.
    pub replayed_commits: u64,
    /// The version the database resumed at.
    pub recovered_version: u64,
    /// Highest version an fsync-point marker guarantees durable. Every
    /// commit ≤ this was acknowledged *and* synced, and all of them were
    /// recovered (the zero-loss guarantee).
    pub synced_version: u64,
    /// The torn WAL tail that was truncated away, if the crash left one.
    pub torn_tail: Option<TornTail>,
    /// Leftover `snap.*.tmp` files from an interrupted rotation, removed.
    pub removed_tmp_files: usize,
}

/// The result of one durable commit.
#[derive(Debug)]
#[must_use = "check whether the commit was synced and whether compaction failed"]
pub struct DurableCommit {
    /// The version the batch published.
    pub version: u64,
    /// Per-operation engine statistics, in batch order.
    pub stats: Vec<UpdateStats>,
    /// True when this commit is already fsynced (per the [`SyncPolicy`]).
    pub synced: bool,
    /// A snapshot rotation was triggered by the watermarks and failed.
    /// The commit itself *is* durable; the log just keeps growing until a
    /// later rotation (or an explicit [`DurableDb::compact`]) succeeds.
    pub compaction_error: Option<DbError>,
}

struct DurableState {
    wal: Wal,
    /// Version of the current `snap.<v>.pvix` generation.
    snapshot_version: u64,
    /// Commits acknowledged since the last fsync (for [`SyncPolicy::EveryN`]).
    unsynced_commits: u32,
    /// Set when a failed WAL append could not be rolled back; all further
    /// writes are refused with [`DbError::Poisoned`].
    poisoned: bool,
}

/// A [`Db`] whose commits survive crashes: write-ahead logged, fsynced per
/// policy, and periodically checkpointed via atomic snapshot rotation.
///
/// Reads go through the inner [`Db`] ([`DurableDb::db`]) and keep all of
/// its properties — snapshot isolation, pooled sessions, wait-free readers.
/// Writes **must** go through [`DurableDb::commit`] (or the
/// [`DurableDb::insert`]/[`DurableDb::remove`] wrappers): writing through
/// the inner `Db` directly would publish state the log does not contain.
pub struct DurableDb<E> {
    db: Db<E>,
    dir: PathBuf,
    fs: Arc<dyn Fs>,
    opts: DurableOptions,
    /// Also the writer lock: every durable mutation holds it end-to-end,
    /// so the WAL order and the publication order are the same order.
    state: Mutex<DurableState>,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal")
}

fn snap_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("snap.{version}.pvix"))
}

fn snap_tmp_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("snap.{version}.tmp"))
}

/// Parses `snap.<v>.pvix` names; returns the generation version.
fn parse_snap_name(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("snap.")?
        .strip_suffix(".pvix")?
        .parse()
        .ok()
}

fn is_tmp_name(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("snap.") && n.ends_with(".tmp"))
}

impl<E: WritableEngine + PersistentEngine> DurableDb<E> {
    /// Initialises `dir` as a durable database holding `engine` at version
    /// 0: the initial snapshot generation and an empty WAL are fully on
    /// disk (fsynced) before this returns. Any previous durable state in
    /// `dir` is replaced.
    ///
    /// # Errors
    /// [`DbError::Snapshot`] / [`DbError::Wal`] on I/O failure; nothing
    /// usable is left behind on error.
    pub fn create(dir: impl AsRef<Path>, engine: E, opts: DurableOptions) -> Result<Self, DbError> {
        Self::create_with_fs(Arc::new(StdFs), dir, engine, opts)
    }

    /// [`DurableDb::create`] over an injectable filesystem (the fault
    /// harness's entry point).
    pub fn create_with_fs(
        fs: Arc<dyn Fs>,
        dir: impl AsRef<Path>,
        engine: E,
        opts: DurableOptions,
    ) -> Result<Self, DbError> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        // Clear any stale generations so recovery cannot resurrect them.
        if let Ok(files) = fs.list(&dir) {
            for f in files {
                if parse_snap_name(&f).is_some() || is_tmp_name(&f) {
                    let _ = fs.remove(&f);
                }
            }
        }
        let bytes = engine.snapshot_bytes()?;
        let tmp = snap_tmp_path(&dir, 0);
        fs.write(&tmp, &bytes)?;
        fs.sync(&tmp)?;
        fs.rename(&tmp, &snap_path(&dir, 0))?;
        fs.sync_dir(&dir)?;
        let wal = Wal::create(Arc::clone(&fs), &wal_path(&dir), opts.retry)?;
        Ok(Self {
            db: Db::new(engine),
            dir,
            fs,
            opts,
            state: Mutex::new(DurableState {
                wal,
                snapshot_version: 0,
                unsynced_commits: 0,
                poisoned: false,
            }),
        })
    }

    /// Recovers a durable database from `dir`: loads the newest snapshot
    /// generation, replays the WAL's surviving suffix, and reports what
    /// was found (including tolerated crash signatures — a torn log tail,
    /// leftover rotation temporaries).
    ///
    /// # Errors
    /// See [`RecoveryError`]; recovery never guesses around damage it
    /// cannot classify as a crash signature.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::open_with_fs(Arc::new(StdFs), dir, opts)
    }

    /// [`DurableDb::open`] over an injectable filesystem.
    pub fn open_with_fs(
        fs: Arc<dyn Fs>,
        dir: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        let dir = dir.as_ref().to_path_buf();
        let files = fs.list(&dir)?;

        // An interrupted rotation can leave `snap.<v>.tmp`; it was never
        // renamed in, so it is not part of the durable state.
        let mut removed_tmp_files = 0;
        let mut newest: Option<(u64, PathBuf)> = None;
        for f in &files {
            if is_tmp_name(f) {
                fs.remove(f)?;
                removed_tmp_files += 1;
            } else if let Some(v) = parse_snap_name(f) {
                if newest.as_ref().is_none_or(|(best, _)| v > *best) {
                    newest = Some((v, f.clone()));
                }
            }
        }
        let (snapshot_version, snap) =
            newest.ok_or(RecoveryError::MissingGeneration { dir: dir.clone() })?;

        let bytes = fs.read(&snap)?;
        let mut engine = E::from_snapshot_bytes(&bytes).map_err(|e| RecoveryError::Snapshot {
            path: snap.clone(),
            source: SnapshotError::from(e),
        })?;

        let (wal, replay) = Wal::open(Arc::clone(&fs), &wal_path(&dir), opts.retry)?;
        let mut version = snapshot_version;
        let mut replayed_commits = 0u64;
        for rec in &replay.records {
            if rec.version <= snapshot_version {
                // Rotation raced the crash: the generation already holds
                // this commit, the log just was not truncated yet.
                continue;
            }
            if rec.version != version + 1 {
                return Err(RecoveryError::VersionGap {
                    expected: version + 1,
                    found: rec.version,
                });
            }
            let ops = decode_ops(&rec.body).map_err(|e| RecoveryError::BadRecord {
                version: rec.version,
                source: e,
            })?;
            for op in ops {
                let applied = match op {
                    DbOp::Insert(o) => engine.apply_insert(o),
                    DbOp::Remove(id) => engine.apply_remove(id),
                };
                applied.map_err(|e| RecoveryError::Apply {
                    version: rec.version,
                    source: Box::new(e),
                })?;
            }
            version = rec.version;
            replayed_commits += 1;
        }

        let report = RecoveryReport {
            snapshot_version,
            replayed_commits,
            recovered_version: version,
            synced_version: replay.synced_version.max(snapshot_version),
            torn_tail: replay.torn_tail,
            removed_tmp_files,
        };
        Ok((
            Self {
                db: Db::at_version(engine, version),
                dir,
                fs,
                opts,
                state: Mutex::new(DurableState {
                    wal,
                    snapshot_version,
                    unsynced_commits: 0,
                    poisoned: false,
                }),
            },
            report,
        ))
    }

    /// Applies one operation batch durably: validate on a copy-on-write
    /// fork, append to the WAL, fsync per policy, publish to readers —
    /// in that order, so an `Ok` means the batch is logged (and, under
    /// [`SyncPolicy::EveryCommit`], crash-durable), and an `Err` means no
    /// reader will ever observe it and no replay will ever apply it.
    ///
    /// # Errors
    /// Engine validation errors ([`DbError::DuplicateId`], …) leave disk
    /// untouched. [`DbError::Wal`] means the append or fsync failed and
    /// was rolled back. [`DbError::Poisoned`] means a previous rollback
    /// failed — reopen to recover.
    pub fn commit(&self, ops: &[DbOp]) -> Result<DurableCommit, DbError> {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let state = &mut *guard;
        if state.poisoned {
            return Err(DbError::Poisoned);
        }
        let version = self.db.version() + 1;
        let body = encode_ops(ops);
        let mut synced = false;
        let mark = state.wal.mark();
        let wal = &mut state.wal;
        let unsynced = &mut state.unsynced_commits;
        let sync_policy = self.opts.sync;
        let result = self.db.commit(|e| {
            // 1. Validate and apply every operation on the fork. Any
            //    engine error aborts before a byte is written.
            let mut stats = Vec::with_capacity(ops.len());
            for op in ops {
                stats.push(match op {
                    DbOp::Insert(o) => e.apply_insert(o.clone())?,
                    DbOp::Remove(id) => e.apply_remove(*id)?,
                });
            }
            // 2. Log, then 3. sync per policy. Only after both does
            //    Db::commit publish the fork.
            wal.append_commit(version, &body)?;
            match sync_policy {
                SyncPolicy::EveryCommit => {
                    wal.sync()?;
                    synced = true;
                }
                SyncPolicy::EveryN(n) => {
                    *unsynced += 1;
                    if *unsynced >= n {
                        wal.sync()?;
                        *unsynced = 0;
                        synced = true;
                    }
                }
                SyncPolicy::Manual => {}
            }
            Ok(stats)
        });

        let stats = match result {
            Ok(stats) => stats,
            Err(e) => {
                // Engine validation errors abort before the append — disk
                // was never touched, so there is nothing to verify or roll
                // back (and a transient stat failure must not poison a
                // database whose log is pristine).
                if !matches!(e, DbError::Wal(_)) {
                    return Err(e);
                }
                // If the commit record reached the log but a later step
                // failed (the fsync-marker append, or the fsync itself),
                // this `Err` would otherwise be replayed by the next
                // recovery — and the next commit would reuse its version
                // and trip the WAL's monotonicity assert. Roll the log
                // back to its pre-append state, durably.
                let rolled_back = if state.wal.last_version() == version {
                    state.wal.rollback_to(mark).is_ok()
                } else {
                    true
                };
                // The WAL rolls failed appends back internally; verify it
                // managed to. A mismatch means torn bytes are on disk with
                // no live bookkeeping for them — refuse further writes.
                if !rolled_back
                    || self
                        .opts
                        .retry
                        .run(|| self.fs.len(state.wal.path()))
                        .map_or(true, |on_disk| on_disk != state.wal.bytes())
                {
                    state.poisoned = true;
                }
                return Err(e);
            }
        };

        let compaction_error = if state.wal.commits() >= self.opts.compact_after_commits
            || state.wal.bytes() >= self.opts.compact_after_bytes
        {
            self.compact_locked(state).err()
        } else {
            None
        };
        Ok(DurableCommit {
            version,
            stats,
            synced,
            compaction_error,
        })
    }

    /// Durably inserts one object (a single-operation [`DurableDb::commit`]).
    pub fn insert(&self, o: UncertainObject) -> Result<DurableCommit, DbError> {
        self.commit(&[DbOp::Insert(o)])
    }

    /// Durably removes one object (a single-operation [`DurableDb::commit`]).
    pub fn remove(&self, id: u64) -> Result<DurableCommit, DbError> {
        self.commit(&[DbOp::Remove(id)])
    }

    /// Forces every acknowledged commit to stable storage now, regardless
    /// of the [`SyncPolicy`].
    pub fn sync(&self) -> Result<(), DbError> {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.poisoned {
            return Err(DbError::Poisoned);
        }
        guard.wal.sync()?;
        guard.unsynced_commits = 0;
        Ok(())
    }

    /// Rotates the current engine state into a new snapshot generation and
    /// truncates the log — the checkpoint the watermarks trigger
    /// automatically. Safe to call at any point; a crash anywhere inside
    /// leaves a recoverable directory.
    pub fn compact(&self) -> Result<(), DbError> {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.poisoned {
            return Err(DbError::Poisoned);
        }
        self.compact_locked(&mut guard)
    }

    fn compact_locked(&self, state: &mut DurableState) -> Result<(), DbError> {
        let reader = self.db.reader();
        let version = reader.version();
        if version == state.snapshot_version && state.wal.commits() == 0 {
            return Ok(());
        }
        // Unsynced commits must be durable before the generation that
        // contains them replaces the log that also contains them.
        if state.wal.synced_version() < state.wal.last_version() {
            state.wal.sync()?;
            state.unsynced_commits = 0;
        }
        let bytes = reader.engine().snapshot_bytes()?;
        let tmp = snap_tmp_path(&self.dir, version);
        self.fs.write(&tmp, &bytes)?;
        self.fs.sync(&tmp)?;
        self.fs.rename(&tmp, &snap_path(&self.dir, version))?;
        self.fs.sync_dir(&self.dir)?;
        // The new generation is the recovery root from here on; the old
        // one and the log contents are redundant. Removal is best-effort
        // (recovery always picks the newest generation).
        if version != state.snapshot_version {
            let _ = self
                .fs
                .remove(&snap_path(&self.dir, state.snapshot_version));
        }
        state.snapshot_version = version;
        state.wal.reset()?;
        Ok(())
    }

    /// The inner concurrent [`Db`]: use it for everything read-side
    /// (queries, sessions, pinned readers). Do **not** write through it —
    /// [`Db::insert`] and friends on the inner handle bypass the log, and
    /// such writes are lost on the next recovery.
    pub fn db(&self) -> &Db<E> {
        &self.db
    }

    /// The directory holding the log and snapshot generations.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes currently in the write-ahead log (file header included).
    pub fn wal_bytes(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .wal
            .bytes()
    }

    /// Version of the current on-disk snapshot generation.
    pub fn snapshot_version(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot_version
    }

    /// True when a failed rollback has poisoned the write path.
    pub fn is_poisoned(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .poisoned
    }
}

impl<E: WritableEngine + PersistentEngine> Db<E> {
    /// Opens (recovers) a durable database from `dir` with default
    /// [`DurableOptions`] — sugar for [`DurableDb::open`].
    pub fn open_durable(
        dir: impl AsRef<Path>,
    ) -> Result<(DurableDb<E>, RecoveryReport), RecoveryError> {
        DurableDb::open(dir, DurableOptions::default())
    }
}

impl<E: crate::query::ProbNnEngine> fmt::Debug for DurableDb<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableDb")
            .field("db", &self.db)
            .field("dir", &self.dir)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::LinearScan;
    use pv_geom::{HyperRect, Point};
    use pv_storage::fault::{FaultFs, FaultKind, FaultPlan};
    use pv_uncertain::UncertainDb;

    fn obj(id: u64, x: f64) -> UncertainObject {
        UncertainObject::uniform(id, HyperRect::new(vec![x, 0.0], vec![x + 2.0, 2.0]), 8)
    }

    fn scan() -> LinearScan {
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let objects = (0..6u64).map(|i| obj(i, i as f64 * 10.0)).collect();
        LinearScan::new(&UncertainDb::new(domain, objects))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pv_durable_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn ops_roundtrip_through_the_codec() {
        let ops = vec![
            DbOp::Insert(obj(41, 3.0)),
            DbOp::Remove(2),
            DbOp::Insert(obj(42, 7.0)),
        ];
        let bytes = encode_ops(&ops);
        assert_eq!(decode_ops(&bytes).unwrap(), ops);
        assert!(matches!(
            decode_ops(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_ops(&trailing),
            Err(DecodeError::Invalid { .. })
        ));
    }

    #[test]
    fn create_commit_reopen_recovers_everything() {
        let dir = tmp_dir("roundtrip");
        let db = DurableDb::create(&dir, scan(), DurableOptions::default()).unwrap();
        let c1 = db.insert(obj(100, 50.0)).unwrap();
        assert_eq!(c1.version, 1);
        assert!(c1.synced);
        let c2 = db
            .commit(&[DbOp::Remove(0), DbOp::Insert(obj(101, 60.0))])
            .unwrap();
        assert_eq!(c2.version, 2);
        assert_eq!(c2.stats.len(), 2);
        drop(db);

        let (db, report) = DurableDb::<LinearScan>::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.snapshot_version, 0);
        assert_eq!(report.replayed_commits, 2);
        assert_eq!(report.recovered_version, 2);
        assert_eq!(report.synced_version, 2);
        assert!(report.torn_tail.is_none());
        assert_eq!(db.db().version(), 2);
        assert_eq!(db.db().len(), 7);
        // And the recovered state keeps accepting versioned commits.
        assert_eq!(db.insert(obj(102, 70.0)).unwrap().version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_ops_leave_disk_untouched() {
        let dir = tmp_dir("validate");
        let db = DurableDb::create(&dir, scan(), DurableOptions::default()).unwrap();
        let before = db.wal_bytes();
        // Second op fails validation: nothing may reach the log.
        let err = db.commit(&[DbOp::Insert(obj(200, 30.0)), DbOp::Remove(999)]);
        assert!(matches!(err, Err(DbError::UnknownId(999))));
        assert_eq!(db.wal_bytes(), before);
        assert_eq!(db.db().version(), 0);
        let (db, report) = DurableDb::<LinearScan>::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.recovered_version, 0);
        assert_eq!(db.db().len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rotates_and_truncates() {
        let dir = tmp_dir("compact");
        let opts = DurableOptions {
            compact_after_commits: 3,
            ..DurableOptions::default()
        };
        let db = DurableDb::create(&dir, scan(), opts).unwrap();
        for i in 0..3u64 {
            let c = db.insert(obj(100 + i, 50.0 + i as f64)).unwrap();
            assert!(c.compaction_error.is_none());
        }
        assert_eq!(db.snapshot_version(), 3, "watermark rotated at commit 3");
        assert!(snap_path(&dir, 3).exists());
        assert!(!snap_path(&dir, 0).exists(), "old generation removed");
        // Log is empty again; recovery comes straight from the generation.
        let (db, report) = DurableDb::<LinearScan>::open(&dir, opts).unwrap();
        assert_eq!(report.snapshot_version, 3);
        assert_eq!(report.replayed_commits, 0);
        assert_eq!(db.db().len(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_is_rolled_back_and_not_recovered() {
        let dir = tmp_dir("torn");
        let fs = Arc::new(FaultFs::new(StdFs, FaultPlan::none()));
        let opts = DurableOptions {
            retry: RetryPolicy::none(),
            ..DurableOptions::default()
        };
        let db =
            DurableDb::create_with_fs(Arc::clone(&fs) as Arc<dyn Fs>, &dir, scan(), opts).unwrap();
        let _ = db.insert(obj(100, 50.0)).unwrap();
        // Tear the *next* WAL append mid-record.
        let next_op = fs.ops();
        fs.set_plan(FaultPlan::single(
            next_op + 1,
            FaultKind::TornWrite { keep: 7 },
        ));
        let err = db.insert(obj(101, 60.0));
        assert!(matches!(err, Err(DbError::Wal(_))), "{err:?}");
        assert!(!db.is_poisoned(), "rollback succeeded");
        assert_eq!(db.db().version(), 1, "failed commit was not published");
        // The next commit works, and recovery sees a consistent history.
        let _ = db.insert(obj(102, 70.0)).unwrap();
        drop(db);
        let (db, report) = DurableDb::<LinearScan>::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.recovered_version, 2);
        assert!(db
            .db()
            .query(&Point::new(vec![61.0, 1.0]), &crate::QuerySpec::new())
            .unwrap()
            .candidates
            .iter()
            .all(|&id| id != 101));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_fsync_rolls_the_appended_record_back() {
        // The commit record lands in the log, then the fsync fails: the
        // record must be durably removed again — otherwise recovery would
        // replay an unacknowledged commit and the next commit would reuse
        // its version and trip the WAL's monotonicity assert.
        let dir = tmp_dir("fsync_fail");
        let fs = Arc::new(FaultFs::new(StdFs, FaultPlan::none()));
        let opts = DurableOptions {
            retry: RetryPolicy::none(),
            ..DurableOptions::default()
        };
        let db =
            DurableDb::create_with_fs(Arc::clone(&fs) as Arc<dyn Fs>, &dir, scan(), opts).unwrap();
        let _ = db.insert(obj(100, 50.0)).unwrap();

        // A commit's op sequence is: len, append (commit record), len,
        // append (sync marker), sync. Fail the sync itself.
        let next_op = fs.ops();
        fs.set_plan(FaultPlan::single(next_op + 4, FaultKind::NoSpace));
        let err = db.insert(obj(101, 60.0));
        assert!(matches!(err, Err(DbError::Wal(_))), "{err:?}");
        assert!(!db.is_poisoned(), "rollback succeeded");
        assert_eq!(db.db().version(), 1);

        // And the same for a failure of the sync-marker append.
        let next_op = fs.ops();
        fs.set_plan(FaultPlan::single(next_op + 3, FaultKind::NoSpace));
        let err = db.insert(obj(101, 60.0));
        assert!(matches!(err, Err(DbError::Wal(_))), "{err:?}");
        assert!(!db.is_poisoned(), "rollback succeeded");

        // The next commit must not panic and must reuse the version.
        let c = db.insert(obj(102, 70.0)).unwrap();
        assert_eq!(c.version, 2);
        drop(db);

        // Recovery replays exactly the acknowledged commits; the one whose
        // fsync failed is gone.
        let (db, report) = DurableDb::<LinearScan>::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.recovered_version, 2);
        assert!(db
            .db()
            .query(&Point::new(vec![61.0, 1.0]), &crate::QuerySpec::new())
            .unwrap()
            .candidates
            .iter()
            .all(|&id| id != 101));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_rollback_poisons_instead_of_panicking_later() {
        let dir = tmp_dir("poison");
        let fs = Arc::new(FaultFs::new(StdFs, FaultPlan::none()));
        let opts = DurableOptions {
            retry: RetryPolicy::none(),
            ..DurableOptions::default()
        };
        let db =
            DurableDb::create_with_fs(Arc::clone(&fs) as Arc<dyn Fs>, &dir, scan(), opts).unwrap();
        let _ = db.insert(obj(100, 50.0)).unwrap();

        // Fail the commit fsync (op +4), then the rollback's truncate
        // (op +6: rollback runs len, truncate, sync) — the unacknowledged
        // record stays on disk, so the writer must refuse to continue.
        let next_op = fs.ops();
        fs.set_plan(FaultPlan::new(vec![
            pv_storage::fault::ScheduledFault {
                op: next_op + 4,
                kind: FaultKind::NoSpace,
            },
            pv_storage::fault::ScheduledFault {
                op: next_op + 6,
                kind: FaultKind::FailOnce,
            },
        ]));
        let err = db.insert(obj(101, 60.0));
        assert!(matches!(err, Err(DbError::Wal(_))), "{err:?}");
        assert!(db.is_poisoned(), "unrolled-back append must poison");
        assert!(matches!(
            db.insert(obj(102, 70.0)),
            Err(DbError::Poisoned)
        ));
        // Reopening recovers (the leftover record is acknowledged-looking
        // but consistent, so replay accepts it — zero-loss still holds for
        // everything that was acknowledged).
        drop(db);
        let (db, _) = DurableDb::<LinearScan>::open(&dir, DurableOptions::default()).unwrap();
        assert!(db.insert(obj(103, 80.0)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_errors_skip_the_disk_probe() {
        // A pure engine validation error never touches the log; even if
        // every subsequent stat fails, the database must stay writable.
        let dir = tmp_dir("probe_skip");
        let fs = Arc::new(FaultFs::new(StdFs, FaultPlan::none()));
        let opts = DurableOptions {
            retry: RetryPolicy::none(),
            ..DurableOptions::default()
        };
        let db =
            DurableDb::create_with_fs(Arc::clone(&fs) as Arc<dyn Fs>, &dir, scan(), opts).unwrap();
        // Make the next several fs ops fail: a probe here would poison.
        let next_op = fs.ops();
        fs.set_plan(FaultPlan::new(
            (0..4)
                .map(|i| pv_storage::fault::ScheduledFault {
                    op: next_op + i,
                    kind: FaultKind::FailOnce,
                })
                .collect(),
        ));
        let err = db.remove(999);
        assert!(matches!(err, Err(DbError::UnknownId(999))));
        assert!(!db.is_poisoned(), "validation errors never touch disk");
        fs.set_plan(FaultPlan::none());
        assert!(db.insert(obj(110, 55.0)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_faults_are_absorbed() {
        let dir = tmp_dir("transient");
        let fs = Arc::new(FaultFs::new(StdFs, FaultPlan::none()));
        let db = DurableDb::create_with_fs(
            Arc::clone(&fs) as Arc<dyn Fs>,
            &dir,
            scan(),
            DurableOptions::default(),
        )
        .unwrap();
        let next_op = fs.ops();
        fs.set_plan(FaultPlan::new(vec![pv_storage::fault::ScheduledFault {
            op: next_op + 1,
            kind: FaultKind::FailOnce,
        }]));
        let c = db.insert(obj(100, 50.0)).unwrap();
        assert_eq!(c.version, 1, "bounded retry absorbed the transient fault");
        assert_eq!(fs.fired().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_generation_is_typed() {
        let dir = tmp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        match DurableDb::<LinearScan>::open(&dir, DurableOptions::default()) {
            Err(RecoveryError::MissingGeneration { dir: d }) => assert_eq!(d, dir),
            other => panic!("expected MissingGeneration, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
