//! `chooseCSet` — candidate-set selection for the SE algorithm (§V-A).
//!
//! By Lemma 7 any non-empty subset `T ⊆ S` is a valid C-set: SE stays
//! *correct* regardless of the choice, but a poor C-set yields a loose UBR
//! (ALL with one arbitrary object) or a slow Step 9 (ALL with the whole
//! database). The paper proposes:
//!
//! * **FS** (Fixed Selection): the `k` objects with means closest to `o`'s
//!   mean. Deliberately keeps objects overlapping `u(o)` — the paper lists
//!   that as one of FS's weaknesses, and we reproduce it faithfully.
//! * **IS** (Incremental Selection): distance-browse the means of `S`
//!   around `o` (Hjaltason–Samet, via the R*-tree), skip overlapping
//!   objects, and maintain one counter per `2^d` domain partition around
//!   `o`'s mean; stop when all counters reach `k_partition` or `k_global`
//!   neighbors were examined.
//!
//! Both run on an R*-tree over the objects' *mean positions* (degenerate
//! rectangles), which is also how the paper bootstraps its indexes.

use crate::params::CSetStrategy;
use pv_geom::HyperRect;
use pv_rtree::RTree;
use pv_uncertain::UncertainObject;
use std::collections::HashMap;

/// The candidate set: the uncertainty regions of the selected objects.
/// (The SE algorithm only needs `u(a)` of every candidate `a`.)
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Ids of the selected candidates (useful for diagnostics).
    pub ids: Vec<u64>,
    /// Their uncertainty regions, in selection order (FS/IS order the set by
    /// ascending mean distance, which makes the first-match loop in the
    /// domination test fast).
    pub regions: Vec<HyperRect>,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when no candidate was selected.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Selects a candidate set for object `o`.
///
/// * `mean_tree` — R*-tree whose entries are the objects' mean positions
///   (degenerate rectangles keyed by object id), **including** `o` itself
///   (it is skipped internally);
/// * `regions` — id → uncertainty region of every object in `S`.
pub fn choose_cset(
    o: &UncertainObject,
    strategy: CSetStrategy,
    mean_tree: &RTree,
    regions: &HashMap<u64, HyperRect>,
) -> CandidateSet {
    match strategy {
        CSetStrategy::All => {
            let mut ids = Vec::with_capacity(regions.len().saturating_sub(1));
            let mut out = Vec::with_capacity(regions.len().saturating_sub(1));
            for (&id, region) in regions {
                if id == o.id {
                    continue;
                }
                // Overlapping objects contribute ¬dom = D (Lemma 2), so
                // dropping them leaves I(Cset, o) unchanged; ALL still pays
                // for every remaining object.
                if region.intersects(&o.region) {
                    continue;
                }
                ids.push(id);
                out.push(region.clone());
            }
            CandidateSet { ids, regions: out }
        }
        CSetStrategy::Fixed { k } => {
            let mean = o.mean();
            let mut ids = Vec::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            for n in mean_tree.nn_iter(&mean) {
                if n.id == o.id {
                    continue;
                }
                // FS keeps overlapping objects (paper: one of its flaws).
                ids.push(n.id);
                out.push(regions[&n.id].clone());
                if out.len() >= k {
                    break;
                }
            }
            CandidateSet { ids, regions: out }
        }
        CSetStrategy::Incremental {
            k_partition,
            k_global,
        } => incremental(o, k_partition, k_global, mean_tree, regions),
    }
}

fn incremental(
    o: &UncertainObject,
    k_partition: usize,
    k_global: usize,
    mean_tree: &RTree,
    regions: &HashMap<u64, HyperRect>,
) -> CandidateSet {
    let mean = o.mean();
    let d = mean.dim();
    let n_parts = 1usize << d;
    let mut counters = vec![0usize; n_parts];
    let mut examined = 0usize;
    let mut ids = Vec::new();
    let mut out = Vec::new();
    for n in mean_tree.nn_iter(&mean) {
        if n.id == o.id {
            continue;
        }
        if examined >= k_global {
            break;
        }
        examined += 1;
        let u_n = &regions[&n.id];
        // Objects overlapping u(o) never constrain V(o) (Lemma 2): skip.
        if u_n.intersects(&o.region) {
            continue;
        }
        // Increment the counters of every partition u(n) intersects.
        // Partition p (bit mask) covers { x : x_j >= mean_j iff bit j set }.
        for (p, counter) in counters.iter_mut().enumerate() {
            let intersects = (0..d).all(|j| {
                if p >> j & 1 == 1 {
                    u_n.hi()[j] >= mean[j]
                } else {
                    u_n.lo()[j] <= mean[j]
                }
            });
            if intersects {
                *counter += 1;
            }
        }
        ids.push(n.id);
        out.push(u_n.clone());
        if counters.iter().all(|&c| c >= k_partition) {
            break;
        }
    }
    CandidateSet { ids, regions: out }
}

/// Builds the mean-position R*-tree over a set of objects (bulk-loaded).
pub fn build_mean_tree(
    objects: impl IntoIterator<Item = (u64, HyperRect)>,
    dim: usize,
    fanout: usize,
) -> RTree {
    let entries: Vec<pv_rtree::Entry> = objects
        .into_iter()
        .map(|(id, region)| pv_rtree::Entry {
            rect: HyperRect::from_point(&region.center()),
            id,
        })
        .collect();
    RTree::bulk_load(dim, pv_rtree::RTreeParams::with_fanout(fanout), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_geom::Point;

    /// A ring of objects around a central one, plus one overlapping object.
    fn fixture() -> (UncertainObject, HashMap<u64, HyperRect>, RTree) {
        let mk = |lo: [f64; 2], hi: [f64; 2]| HyperRect::new(lo.to_vec(), hi.to_vec());
        let center = UncertainObject::uniform(0, mk([49.0, 49.0], [51.0, 51.0]), 8);
        let mut regions: HashMap<u64, HyperRect> = HashMap::new();
        regions.insert(0, center.region.clone());
        // overlapping neighbor (id 1)
        regions.insert(1, mk([50.0, 50.0], [52.0, 52.0]));
        // ring of 12 objects at radius ~20
        for i in 0..12u64 {
            let ang = i as f64 / 12.0 * std::f64::consts::TAU;
            let cx = 50.0 + 20.0 * ang.cos();
            let cy = 50.0 + 20.0 * ang.sin();
            regions.insert(2 + i, mk([cx - 1.0, cy - 1.0], [cx + 1.0, cy + 1.0]));
        }
        // far object (id 100) in the upper-right
        regions.insert(100, mk([90.0, 90.0], [92.0, 92.0]));
        let tree = build_mean_tree(regions.iter().map(|(&id, r)| (id, r.clone())), 2, 16);
        (center, regions, tree)
    }

    #[test]
    fn all_drops_self_and_overlapping() {
        let (o, regions, tree) = fixture();
        let cs = choose_cset(&o, CSetStrategy::All, &tree, &regions);
        assert!(!cs.ids.contains(&0), "o itself excluded");
        assert!(!cs.ids.contains(&1), "overlapping object excluded");
        assert_eq!(cs.len(), regions.len() - 2);
    }

    #[test]
    fn fs_returns_k_nearest_including_overlaps() {
        let (o, regions, tree) = fixture();
        let cs = choose_cset(&o, CSetStrategy::Fixed { k: 5 }, &tree, &regions);
        assert_eq!(cs.len(), 5);
        assert!(!cs.ids.contains(&0));
        // the overlapping object is the nearest mean, so FS keeps it
        assert!(cs.ids.contains(&1), "FS does not filter overlaps");
        // far object must not appear with k = 5
        assert!(!cs.ids.contains(&100));
    }

    #[test]
    fn fs_with_huge_k_returns_everything_but_self() {
        let (o, regions, tree) = fixture();
        let cs = choose_cset(&o, CSetStrategy::Fixed { k: 1000 }, &tree, &regions);
        assert_eq!(cs.len(), regions.len() - 1);
    }

    #[test]
    fn is_skips_overlaps_and_fills_partitions() {
        let (o, regions, tree) = fixture();
        let cs = choose_cset(
            &o,
            CSetStrategy::Incremental {
                k_partition: 2,
                k_global: 200,
            },
            &tree,
            &regions,
        );
        assert!(!cs.ids.contains(&0));
        assert!(!cs.ids.contains(&1), "IS must skip overlapping objects");
        // Ring objects straddling an axis feed two quadrant counters at
        // once, so 4 selections can already satisfy a quota of 2 per
        // quadrant; what must hold is that every quadrant ends up with at
        // least `k_partition` intersecting candidates.
        assert!(cs.len() >= 4, "ids: {:?}", cs.ids);
        let mean = o.mean();
        for p in 0..4usize {
            let feeds = cs
                .regions
                .iter()
                .filter(|r| {
                    (0..2).all(|j| {
                        if p >> j & 1 == 1 {
                            r.hi()[j] >= mean[j]
                        } else {
                            r.lo()[j] <= mean[j]
                        }
                    })
                })
                .count();
            assert!(feeds >= 2, "quadrant {p} fed by only {feeds} candidates");
        }
    }

    #[test]
    fn is_k_global_caps_examination() {
        let (o, regions, tree) = fixture();
        let cs = choose_cset(
            &o,
            CSetStrategy::Incremental {
                k_partition: 1000, // unsatisfiable quota
                k_global: 6,
            },
            &tree,
            &regions,
        );
        // examined at most 6 (skips don't add to the cset)
        assert!(cs.len() <= 6);
        assert!(!cs.is_empty());
    }

    #[test]
    fn is_reaches_far_objects_when_a_partition_is_sparse() {
        // Objects only on the left of o, except one far object on the right:
        // the right partitions can only be fed by the far object.
        let mk = |lo: [f64; 2], hi: [f64; 2]| HyperRect::new(lo.to_vec(), hi.to_vec());
        let o = UncertainObject::uniform(0, mk([50.0, 49.0], [52.0, 51.0]), 8);
        let mut regions = HashMap::new();
        regions.insert(0, o.region.clone());
        for i in 0..10u64 {
            let y = 30.0 + 4.0 * i as f64;
            regions.insert(1 + i, mk([20.0, y], [22.0, y + 2.0]));
        }
        regions.insert(99, mk([90.0, 50.0], [92.0, 52.0])); // far right
        let tree = build_mean_tree(regions.iter().map(|(&id, r)| (id, r.clone())), 2, 8);
        let cs = choose_cset(
            &o,
            CSetStrategy::Incremental {
                k_partition: 1,
                k_global: 100,
            },
            &tree,
            &regions,
        );
        assert!(
            cs.ids.contains(&99),
            "IS must walk far enough to feed sparse partitions: {:?}",
            cs.ids
        );
    }

    #[test]
    fn candidates_ordered_by_mean_distance() {
        let (o, regions, tree) = fixture();
        let cs = choose_cset(&o, CSetStrategy::Fixed { k: 8 }, &tree, &regions);
        let mean = o.mean();
        let dist = |id: u64| regions[&id].center().dist(&mean);
        for w in cs.ids.windows(2) {
            assert!(dist(w[0]) <= dist(w[1]) + 1e-9);
        }
    }

    #[test]
    fn mean_tree_entries_are_points() {
        let (_, regions, tree) = fixture();
        assert_eq!(tree.len(), regions.len());
        let q = Point::new(vec![50.0, 50.0]);
        let first = tree.nn_iter(&q).next().unwrap();
        assert_eq!(first.rect.volume(), 0.0, "mean entries are degenerate");
    }
}
