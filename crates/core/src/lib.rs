//! # pv-core — PV-cells, UBRs, the SE algorithm and the PV-index
//!
//! This crate implements the primary contribution of *"Voronoi-based Nearest
//! Neighbor Search for Multi-Dimensional Uncertain Databases"* (Zhang, Cheng,
//! Mamoulis, Renz, Züfle, Tang, Emrich — ICDE 2013):
//!
//! * [`cset`] — the `chooseCSet` routine (§V-A): **ALL**, **FS** (fixed
//!   selection: k nearest means) and **IS** (incremental selection with
//!   `2^d` partition counters);
//! * [`se`] — the **Shrink-and-Expand** algorithm (§V, Algorithm 1)
//!   computing an Uncertain Bounding Rectangle `B(o) ⊇ V(o)`, including the
//!   warm-started variants used by incremental maintenance (§VI-B);
//! * [`index`] — the **PV-index** (§VI): octree primary index + extendible
//!   hash secondary index, PNNQ Step-1 retrieval, full PNNQ evaluation, and
//!   incremental insertion/deletion;
//! * [`prob`] — PNNQ **Step 2**: qualification probabilities from discrete
//!   instances (the method of Cheng et al., the paper's reference \[8\]);
//! * [`query`] — the **unified query API**: [`query::QuerySpec`] (point /
//!   threshold / top-k / Step-1-only / I/O budget), [`query::QueryOutcome`],
//!   and the [`query::Step1Engine`] / [`query::ProbNnEngine`] traits every
//!   engine implements, with batched parallel execution;
//! * [`db`] — the **concurrent database facade**: [`db::Db`] publishes
//!   immutable engine snapshots through an [`db::ArcSwap`]; readers pin
//!   them ([`db::Reader`], pooled [`db::Session`]s) and never block on the
//!   single copy-on-write writer ([`db::WritableEngine`]);
//! * [`durable`] — **crash-safe durability**: [`durable::DurableDb`]
//!   write-ahead logs every commit before publication, checkpoints via
//!   atomic snapshot rotation, and recovers to exactly some
//!   acknowledged-prefix version after any crash;
//! * [`error`] — the typed error surface: [`error::QueryError`] (read
//!   side) and [`error::DbError`] (write/persistence side) replace the
//!   pre-PR-5 panics;
//! * [`baseline`] — the R-tree branch-and-prune Step-1 baseline \[8\] the
//!   experiments compare against;
//! * [`snapshot`] — persistent index snapshots: a built [`PvIndex`] (or
//!   [`baseline::RTreeBaseline`]) saves to one versioned, checksummed file
//!   and loads back in O(file read) with byte-identical answers — see
//!   [`PvIndex::save`] / [`PvIndex::load`];
//! * [`verify`] — a naive linear-scan ground truth ([`verify::possible_nn`]
//!   and the [`verify::LinearScan`] engine) used by tests and the recall
//!   measurements.
//!
//! ## Example
//!
//! ```
//! use pv_core::db::Db;
//! use pv_core::{PvIndex, PvParams, QuerySpec};
//! use pv_workload::{synthetic, SyntheticConfig, queries};
//!
//! let data = synthetic(&SyntheticConfig { n: 200, dim: 2, samples: 50, ..Default::default() });
//! let db = Db::new(PvIndex::build(&data, PvParams::default()));
//! let q = queries::uniform(&data.domain, 1, 7)[0].clone();
//!
//! // The three most likely nearest neighbors, best first. Queries read a
//! // pinned snapshot, so concurrent inserts/removes never block them.
//! let outcome = db.query(&q, &QuerySpec::new().with_top_k(3))?;
//! assert!(!outcome.answers.is_empty()); // someone is always a possible NN
//! assert!(outcome.best().unwrap().1 > 0.0);
//! # Ok::<(), pv_core::QueryError>(())
//! ```

#![deny(missing_docs)]

pub mod baseline;
pub mod cset;
pub mod db;
pub mod durable;
pub mod error;
pub mod index;
pub mod params;
pub mod prob;
pub mod query;
pub mod se;
pub mod snapshot;
pub mod stats;
pub mod verify;

pub use db::{Db, PersistentEngine, Reader, Session, WritableEngine};
pub use durable::{DbOp, DurableCommit, DurableDb, DurableOptions, RecoveryReport, SyncPolicy};
pub use error::{BuildError, DbError, QueryError, RecoveryError, SnapshotError};
pub use index::PvIndex;
pub use params::{CSetStrategy, PvParams};
pub use query::{
    BatchOutcome, BatchSlots, BatchStats, FetchScratch, ProbNnEngine, QueryOutcome, QueryScratch,
    QuerySpec, Step1Engine,
};
pub use stats::{BuildStats, QueryStats, Step1Stats, UpdateStats};
pub use verify::LinearScan;
