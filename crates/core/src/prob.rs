//! PNNQ Step 2 — qualification-probability computation.
//!
//! Implements the discrete-instance method of Cheng et al. (the paper's
//! reference \[8\]) that §VI-A plugs in after Step 1: given the candidate
//! objects (those whose PV-cells contain `q`), the probability that object
//! `o` is the nearest neighbor of `q` is
//!
//! ```text
//! P(o) = Σ_{instance s of o} p(s) · Π_{o' ≠ o} P( dist(o', q) > dist(s, q) )
//! ```
//!
//! where each instance carries probability `1/n` and
//! `P(dist(o',q) > r)` is the fraction of `o'`'s instances farther than `r`.
//! The probabilities depend only on distance *comparisons*, so the whole
//! module works on **squared** Euclidean distances — monotone in the true
//! distances and one `sqrt` per instance cheaper to produce.
//!
//! Two kernels compute the same function:
//!
//! * [`qualification_from_sorted`] — the naive oracle: every factor is a
//!   binary search, `O(c² · s · log s)` for `c` candidates of `s` instances.
//! * [`qualification_sweep_into`] — the production kernel: a **merged-CDF
//!   sweep**. All candidates' sorted distance lists are merged once; walking
//!   the merged sequence in ascending order, each candidate's
//!   "farther-mass" `(n_j − |{d ≤ r}|)/n_j` is maintained incrementally in
//!   a product tree, so each world's rival product is an `O(log c)` tree
//!   walk instead of an `O(c log s)` rescan — `O(c · s · (log c + log s))`
//!   total, and allocation-free given a warmed [`ProbScratch`].
//!
//! Both kernels combine rival factors with the *same* canonical product-tree
//! association (see `padded_tree_product` in this module), so their outputs
//! are **bitwise identical** — the oracle stays in the tree as the trusted
//! reference the property tests compare against.

use pv_geom::Point;
use pv_uncertain::UncertainObject;

/// Computes the qualification probability of every candidate.
///
/// Returns `(id, probability)` pairs in the input order. Candidates with
/// zero probability (possible when UBR-based Step 1 over-approximates) are
/// retained with `0.0` so callers can observe the filter effectiveness.
///
/// This is the naive-oracle entry point (it materialises every candidate's
/// instances); the query engine drives [`qualification_sweep_into`] instead.
pub fn qualification_probabilities(q: &Point, candidates: &[&UncertainObject]) -> Vec<(u64, f64)> {
    let sorted: Vec<(u64, Vec<f64>)> = candidates
        .iter()
        .map(|o| {
            let mut dists: Vec<f64> = o.samples().iter().map(|s| s.dist_sq(q)).collect();
            dists.sort_unstable_by(f64::total_cmp);
            (o.id, dists)
        })
        .collect();
    qualification_from_sorted(&sorted)
}

/// Sweep-kernel counterpart of [`qualification_probabilities`]: same inputs,
/// same output (bitwise), evaluated through [`qualification_sweep_into`].
/// Exists so tests can pit the two kernels against each other on arbitrary
/// databases without reimplementing the distance plumbing.
pub fn qualification_probabilities_sweep(
    q: &Point,
    candidates: &[&UncertainObject],
) -> Vec<(u64, f64)> {
    let mut dists: Vec<f64> = Vec::new();
    let mut spans: Vec<(u64, u32, u32)> = Vec::with_capacity(candidates.len());
    let mut scratch = pv_uncertain::SampleScratch::default();
    for o in candidates {
        let start = dists.len() as u32;
        o.dists_sq_into(q, &mut scratch, &mut dists);
        // `start ≤ len` always (the fill only appends), so this is `Some`.
        if let Some(new_dists) = dists.get_mut(start as usize..) {
            new_dists.sort_unstable_by(f64::total_cmp);
        }
        spans.push((o.id, start, dists.len() as u32 - start));
    }
    let mut out = Vec::new();
    qualification_sweep_into(&spans, &dists, &mut ProbScratch::default(), &mut out);
    out
}

/// Qualification probabilities from pre-sorted per-candidate instance
/// distances — the naive Step-2 oracle, retained as the reference
/// implementation the optimized sweep is validated against.
///
/// `candidates[i].1` must be the ascending (squared) distances of candidate
/// `i`'s instances to the query point; any monotone transform of the true
/// distances yields the same probabilities. Returns `(id, probability)` in
/// input order, bitwise identical to [`qualification_sweep_into`] on the
/// same lists.
pub fn qualification_from_sorted(candidates: &[(u64, Vec<f64>)]) -> Vec<(u64, f64)> {
    let c = candidates.len();
    let mut factors = vec![1.0f64; c];
    candidates
        .iter()
        .enumerate()
        .map(|(i, (id, dists))| {
            let n = dists.len();
            if n == 0 {
                return (*id, 0.0);
            }
            let inv_n = 1.0 / n as f64;
            let mut p = 0.0;
            for &d in dists {
                for (f, (j, (_, other))) in factors.iter_mut().zip(candidates.iter().enumerate()) {
                    *f = if j == i { 1.0 } else { frac_farther(other, d) };
                }
                p += inv_n * padded_tree_product(&factors);
            }
            (*id, p)
        })
        .collect()
}

/// Fraction of (sorted) distances strictly greater than `r`.
fn frac_farther(sorted: &[f64], r: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0; // an absent competitor never wins
    }
    // first index with dist > r
    let idx = sorted.partition_point(|&d| d <= r);
    (sorted.len() - idx) as f64 / sorted.len() as f64
}

/// The canonical rival-product association: a perfect binary tree over the
/// factor list padded to the next power of two with exact `1.0`s, each node
/// the product `left * right`.
///
/// Floating-point multiplication is not associative, so "the product of all
/// rival factors" is only well defined once an association is fixed. Both
/// Step-2 kernels use this one — the oracle by direct recursion (here), the
/// sweep by maintaining the same tree incrementally — which is what makes
/// their outputs bitwise equal rather than merely close.
fn padded_tree_product(factors: &[f64]) -> f64 {
    fn node(factors: &[f64], lo: usize, width: usize) -> f64 {
        if width == 1 {
            return factors.get(lo).copied().unwrap_or(1.0);
        }
        let half = width / 2;
        node(factors, lo, half) * node(factors, lo + half, half)
    }
    node(factors, 0, factors.len().next_power_of_two().max(1))
}

/// Reusable buffers for [`qualification_sweep_into`]. One per query thread;
/// after warm-up the sweep performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct ProbScratch {
    /// Merged `(distance, candidate index)` events.
    events: Vec<(f64, u32)>,
    /// Instances of each candidate processed so far (`|{d ≤ r}|`).
    counts: Vec<u32>,
    /// The incremental product tree (1-indexed array form).
    tree: Vec<f64>,
    /// Per-candidate probability accumulators.
    probs: Vec<f64>,
}

/// The merged-CDF sweep — the optimized Step-2 kernel.
///
/// `spans[k] = (id, start, len)` describes candidate `k`: its instance
/// distances are `dists[start .. start + len]`, sorted ascending (squared
/// distances in the query engine; any monotone metric works). Writes
/// `(id, probability)` pairs to `out` (cleared first) in span order,
/// bitwise identical to [`qualification_from_sorted`] on the same lists —
/// ties included, because an instance's rivals are counted *after* every
/// event with an equal distance has been applied, exactly like the oracle's
/// `d ≤ r` partition point.
///
/// Complexity: `O(N log c + N log N)` for `N` total instances and `c`
/// candidates — the `N log N` term is the merge (a sort of per-candidate
/// sorted runs), the `N log c` term covers the tree updates and the
/// per-world exclusion walks.
// pv-lint: allow(hot-path-no-panic, reason = "every index in this kernel is structurally in-bounds: counts/probs/tree are resized from spans.len() at entry, event candidate indices come from enumerating spans, tree walks stay below 2*size by construction, and the span ranges into dists are the documented caller contract (see the doc comment)")
pub fn qualification_sweep_into(
    spans: &[(u64, u32, u32)],
    dists: &[f64],
    scratch: &mut ProbScratch,
    out: &mut Vec<(u64, f64)>,
) {
    out.clear();
    let c = spans.len();
    if c == 0 {
        return;
    }
    let size = c.next_power_of_two();
    scratch.tree.clear();
    scratch.tree.resize(2 * size, 1.0);
    scratch.counts.clear();
    scratch.counts.resize(c, 0);
    scratch.probs.clear();
    scratch.probs.resize(c, 0.0);
    scratch.events.clear();
    for (ci, &(_, start, len)) in spans.iter().enumerate() {
        for &d in &dists[start as usize..(start + len) as usize] {
            scratch.events.push((d, ci as u32));
        }
    }
    scratch
        .events
        .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let tree = &mut scratch.tree;
    let events = &scratch.events;
    let mut i = 0;
    while i < events.len() {
        let d = events[i].0;
        let mut j = i;
        while j < events.len() && events[j].0 == d {
            j += 1;
        }
        // Phase 1: absorb every instance at exactly this distance into the
        // counts *before* evaluating any world at it — ties across (and
        // within) candidates count as "not farther", matching `d ≤ r`.
        for &(_, ci) in &events[i..j] {
            let ci = ci as usize;
            scratch.counts[ci] += 1;
            let n = spans[ci].2;
            let mut p = size + ci;
            tree[p] = (n - scratch.counts[ci]) as f64 / n as f64;
            p >>= 1;
            while p >= 1 {
                tree[p] = tree[2 * p] * tree[2 * p + 1];
                if p == 1 {
                    break;
                }
                p >>= 1;
            }
        }
        // Phase 2: one world per instance — the product of every rival's
        // farther-mass, read off the tree by the sibling walk (equivalent to
        // re-deriving the root with this candidate's leaf set to 1.0, in the
        // canonical association).
        for &(_, ci) in &events[i..j] {
            let ci = ci as usize;
            let inv_n = 1.0 / spans[ci].2 as f64;
            let mut v = 1.0f64;
            let mut p = size + ci;
            while p > 1 {
                // IEEE-754 multiplication commutes bit-exactly, so both
                // sibling sides reduce to `v *=` without breaking the
                // canonical-association equivalence.
                if p & 1 == 0 {
                    v *= tree[p + 1];
                } else {
                    v *= tree[p - 1];
                }
                p >>= 1;
            }
            scratch.probs[ci] += inv_n * v;
        }
        i = j;
    }
    for (ci, &(id, _, len)) in spans.iter().enumerate() {
        out.push((id, if len == 0 { 0.0 } else { scratch.probs[ci] }));
    }
}

/// Estimated number of disk pages an instance payload of `n_samples`
/// `dim`-dimensional points occupies (the paper's storage model for pdfs).
pub fn payload_pages(n_samples: usize, dim: usize, page_size: usize) -> u64 {
    let bytes = n_samples * dim * std::mem::size_of::<f64>();
    (bytes as u64).div_ceil(page_size as u64).max(1)
}

/// Estimated number of disk pages a candidate's full instance payload
/// occupies (used to charge Step-2 I/O for lazily materialised pdfs, which
/// the paper would have read from disk — see DESIGN.md §3).
pub fn pdf_payload_pages(o: &UncertainObject, page_size: usize) -> u64 {
    payload_pages(o.pdf.n_samples(), o.region.dim(), page_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_geom::HyperRect;
    use pv_uncertain::Pdf;
    use std::sync::Arc;

    fn explicit(id: u64, region: HyperRect, pts: Vec<Point>) -> UncertainObject {
        UncertainObject {
            id,
            region,
            pdf: Pdf::Explicit(Arc::new(pts)),
        }
    }

    fn mk(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn certain_winner_gets_probability_one() {
        let q = Point::new(vec![0.0, 0.0]);
        let near = explicit(
            1,
            mk(&[1.0, 0.0], &[2.0, 1.0]),
            vec![Point::new(vec![1.0, 0.0]), Point::new(vec![2.0, 1.0])],
        );
        let far = explicit(
            2,
            mk(&[10.0, 10.0], &[11.0, 11.0]),
            vec![Point::new(vec![10.0, 10.0]), Point::new(vec![11.0, 11.0])],
        );
        let probs = qualification_probabilities(&q, &[&near, &far]);
        assert_eq!(probs[0], (1, 1.0));
        assert_eq!(probs[1], (2, 0.0));
    }

    #[test]
    fn symmetric_objects_split_evenly() {
        let q = Point::new(vec![0.0, 0.0]);
        // interleaved tie-free distances: a at {1, 4}, b at {2, 3}
        let a = explicit(
            1,
            mk(&[1.0, -1.0], &[4.0, 1.0]),
            vec![Point::new(vec![1.0, 0.0]), Point::new(vec![4.0, 0.0])],
        );
        let b = explicit(
            2,
            mk(&[-3.0, -1.0], &[-2.0, 1.0]),
            vec![Point::new(vec![-2.0, 0.0]), Point::new(vec![-3.0, 0.0])],
        );
        let probs = qualification_probabilities(&q, &[&a, &b]);
        // P(a) = ½·P(b>1) + ½·P(b>4) = ½·1 + 0 = ½
        // P(b) = ½·P(a>2) + ½·P(a>3) = ¼ + ¼ = ½
        assert!((probs[0].1 - 0.5).abs() < 1e-12);
        assert!((probs[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_instance_distances_lose_tied_mass() {
        // With strict comparison, tied worlds award the win to no one; the
        // remaining mass is exactly the probability of a strict winner.
        let q = Point::new(vec![0.0]);
        let a = explicit(
            1,
            mk(&[1.0], &[3.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![3.0])],
        );
        let b = explicit(
            2,
            mk(&[1.0], &[3.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![3.0])],
        );
        let probs = qualification_probabilities(&q, &[&a, &b]);
        // each: ½·P(other>1)=½·½ + ½·P(other>3)=0 → ¼
        assert!((probs[0].1 - 0.25).abs() < 1e-12);
        assert!((probs[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one_without_ties() {
        let q = Point::new(vec![5.0, 5.0]);
        let objs: Vec<UncertainObject> = (0..6)
            .map(|i| {
                let base = 1.0 + i as f64;
                UncertainObject::uniform(i as u64, mk(&[base, base], &[base + 2.0, base + 2.0]), 64)
            })
            .collect();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let probs = qualification_probabilities(&q, &refs);
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );
        assert!(probs.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn dominated_candidate_gets_zero() {
        let q = Point::new(vec![0.0]);
        let near = explicit(
            1,
            mk(&[1.0], &[2.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![2.0])],
        );
        // every instance of `blocked` is farther than near's farthest
        let blocked = explicit(
            2,
            mk(&[5.0], &[6.0]),
            vec![Point::new(vec![5.0]), Point::new(vec![6.0])],
        );
        let probs = qualification_probabilities(&q, &[&near, &blocked]);
        assert_eq!(probs[1].1, 0.0);
        assert_eq!(probs[0].1, 1.0);
    }

    #[test]
    fn partial_overlap_gives_intermediate_probability() {
        let q = Point::new(vec![0.0]);
        // a: instances at 1, 3 ; b: instances at 2, 4
        let a = explicit(
            1,
            mk(&[1.0], &[3.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![3.0])],
        );
        let b = explicit(
            2,
            mk(&[2.0], &[4.0]),
            vec![Point::new(vec![2.0]), Point::new(vec![4.0])],
        );
        let probs = qualification_probabilities(&q, &[&a, &b]);
        // P(a) = 1/2·[d=1: b>1 always =1] + 1/2·[d=3: b>3 w.p. 1/2] = 0.75
        assert!((probs[0].1 - 0.75).abs() < 1e-12);
        assert!((probs[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_candidate_is_certain() {
        let q = Point::new(vec![9.0, 9.0]);
        let only = UncertainObject::uniform(3, mk(&[0.0, 0.0], &[1.0, 1.0]), 32);
        let probs = qualification_probabilities(&q, &[&only]);
        assert_eq!(probs, vec![(3, 1.0)]);
    }

    #[test]
    fn payload_page_estimate() {
        let o = UncertainObject::uniform(1, mk(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]), 500);
        // 500 × 3 × 8 = 12000 bytes → 3 pages of 4096
        assert_eq!(pdf_payload_pages(&o, 4096), 3);
        let tiny = UncertainObject::uniform(2, mk(&[0.0], &[1.0]), 1);
        assert_eq!(pdf_payload_pages(&tiny, 4096), 1);
    }

    #[test]
    fn frac_farther_edges() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(frac_farther(&v, 0.5), 1.0);
        assert_eq!(frac_farther(&v, 2.0), 0.5); // strictly greater
        assert_eq!(frac_farther(&v, 4.0), 0.0);
        assert_eq!(frac_farther(&[], 1.0), 1.0);
    }

    /// Runs both kernels on the same pre-sorted lists and demands bitwise
    /// equality.
    fn assert_kernels_agree(candidates: &[(u64, Vec<f64>)]) {
        let naive = qualification_from_sorted(candidates);
        let mut dists = Vec::new();
        let mut spans = Vec::new();
        for (id, ds) in candidates {
            spans.push((*id, dists.len() as u32, ds.len() as u32));
            dists.extend_from_slice(ds);
        }
        let mut swept = Vec::new();
        qualification_sweep_into(&spans, &dists, &mut ProbScratch::default(), &mut swept);
        assert_eq!(naive.len(), swept.len());
        for ((ia, pa), (ib, pb)) in naive.iter().zip(swept.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "kernels disagree on P({ia}): naive {pa} vs sweep {pb}"
            );
        }
    }

    #[test]
    fn sweep_matches_oracle_on_tie_heavy_lists() {
        // Duplicates within a candidate, ties across candidates, a
        // zero-probability rival, an empty candidate, a single candidate.
        assert_kernels_agree(&[(7, vec![1.0, 2.0, 3.0])]);
        assert_kernels_agree(&[(1, vec![1.0, 1.0, 4.0]), (2, vec![1.0, 2.0, 2.0])]);
        assert_kernels_agree(&[
            (1, vec![1.0, 2.0]),
            (2, vec![5.0, 6.0]), // dominated: zero probability
            (3, vec![1.0, 6.0]),
        ]);
        assert_kernels_agree(&[(1, vec![2.0, 2.0, 2.0]), (2, vec![2.0, 2.0, 2.0])]);
        assert_kernels_agree(&[(1, vec![]), (2, vec![1.0, 3.0]), (3, vec![0.5, 0.5, 9.0])]);
        assert_kernels_agree(&[]);
    }

    #[test]
    fn sweep_matches_oracle_on_random_lists() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let c = rng.gen_range(1..9usize);
            let candidates: Vec<(u64, Vec<f64>)> = (0..c)
                .map(|i| {
                    let s = rng.gen_range(0..12usize);
                    // draw from a tiny grid so ties are common
                    let mut ds: Vec<f64> =
                        (0..s).map(|_| rng.gen_range(0..8) as f64 * 0.5).collect();
                    ds.sort_unstable_by(f64::total_cmp);
                    (i as u64, ds)
                })
                .collect();
            assert_kernels_agree(&candidates);
        }
    }

    #[test]
    fn sweep_convenience_wrapper_matches_oracle_wrapper() {
        let q = Point::new(vec![0.0, 0.0]);
        let objs: Vec<UncertainObject> = (0..5)
            .map(|i| {
                let base = 1.0 + i as f64;
                UncertainObject::uniform(i as u64, mk(&[base, base], &[base + 2.0, base + 2.0]), 32)
            })
            .collect();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let naive = qualification_probabilities(&q, &refs);
        let swept = qualification_probabilities_sweep(&q, &refs);
        for (a, b) in naive.iter().zip(swept.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn payload_pages_matches_object_helper() {
        let o = UncertainObject::uniform(1, mk(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]), 500);
        assert_eq!(payload_pages(500, 3, 4096), pdf_payload_pages(&o, 4096));
    }
}
