//! PNNQ Step 2 — qualification-probability computation.
//!
//! Implements the discrete-instance method of Cheng et al. (the paper's
//! reference \[8\]) that §VI-A plugs in after Step 1: given the candidate
//! objects (those whose PV-cells contain `q`), the probability that object
//! `o` is the nearest neighbor of `q` is
//!
//! ```text
//! P(o) = Σ_{instance s of o} p(s) · Π_{o' ≠ o} P( dist(o', q) > dist(s, q) )
//! ```
//!
//! where each instance carries probability `1/n` and
//! `P(dist(o',q) > r)` is the fraction of `o'`'s instances farther than `r`.
//! With each object's instance distances sorted once, every factor is a
//! binary search, giving `O(|L|² · n · log n)` per query for `|L|`
//! candidates — cheap because Step 1 already reduced `|L|` to a handful.

use pv_geom::Point;
use pv_uncertain::UncertainObject;

/// Computes the qualification probability of every candidate.
///
/// Returns `(id, probability)` pairs in the input order. Candidates with
/// zero probability (possible when UBR-based Step 1 over-approximates) are
/// retained with `0.0` so callers can observe the filter effectiveness.
pub fn qualification_probabilities(q: &Point, candidates: &[&UncertainObject]) -> Vec<(u64, f64)> {
    let sorted: Vec<(u64, Vec<f64>)> = candidates
        .iter()
        .map(|o| {
            let mut dists: Vec<f64> = o.samples().iter().map(|s| s.dist(q)).collect();
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            (o.id, dists)
        })
        .collect();
    qualification_from_sorted(&sorted)
}

/// Qualification probabilities from pre-sorted per-candidate instance
/// distances — the core of Step 2, factored out so callers that already
/// computed the distance lists (e.g. the trait-level query driver, which
/// needs each candidate's farthest instance for early termination) do not
/// pay the sampling twice.
///
/// `candidates[i].1` must be the ascending distances of candidate `i`'s
/// instances to the query point. Returns `(id, probability)` in input order.
pub fn qualification_from_sorted(candidates: &[(u64, Vec<f64>)]) -> Vec<(u64, f64)> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, (id, dists))| {
            let n = dists.len();
            if n == 0 {
                return (*id, 0.0);
            }
            let mut p = 0.0;
            for &d in dists {
                let mut world = 1.0 / n as f64;
                for (j, (_, other)) in candidates.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    world *= frac_farther(other, d);
                    if world == 0.0 {
                        break;
                    }
                }
                p += world;
            }
            (*id, p)
        })
        .collect()
}

/// Fraction of (sorted) distances strictly greater than `r`.
fn frac_farther(sorted: &[f64], r: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0; // an absent competitor never wins
    }
    // first index with dist > r
    let idx = sorted.partition_point(|&d| d <= r);
    (sorted.len() - idx) as f64 / sorted.len() as f64
}

/// Estimated number of disk pages a candidate's full instance payload
/// occupies (used to charge Step-2 I/O for lazily materialised pdfs, which
/// the paper would have read from disk — see DESIGN.md §3).
pub fn pdf_payload_pages(o: &UncertainObject, page_size: usize) -> u64 {
    let bytes = o.pdf.n_samples() * o.region.dim() * std::mem::size_of::<f64>();
    (bytes as u64).div_ceil(page_size as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_geom::HyperRect;
    use pv_uncertain::Pdf;
    use std::sync::Arc;

    fn explicit(id: u64, region: HyperRect, pts: Vec<Point>) -> UncertainObject {
        UncertainObject {
            id,
            region,
            pdf: Pdf::Explicit(Arc::new(pts)),
        }
    }

    fn mk(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn certain_winner_gets_probability_one() {
        let q = Point::new(vec![0.0, 0.0]);
        let near = explicit(
            1,
            mk(&[1.0, 0.0], &[2.0, 1.0]),
            vec![Point::new(vec![1.0, 0.0]), Point::new(vec![2.0, 1.0])],
        );
        let far = explicit(
            2,
            mk(&[10.0, 10.0], &[11.0, 11.0]),
            vec![Point::new(vec![10.0, 10.0]), Point::new(vec![11.0, 11.0])],
        );
        let probs = qualification_probabilities(&q, &[&near, &far]);
        assert_eq!(probs[0], (1, 1.0));
        assert_eq!(probs[1], (2, 0.0));
    }

    #[test]
    fn symmetric_objects_split_evenly() {
        let q = Point::new(vec![0.0, 0.0]);
        // interleaved tie-free distances: a at {1, 4}, b at {2, 3}
        let a = explicit(
            1,
            mk(&[1.0, -1.0], &[4.0, 1.0]),
            vec![Point::new(vec![1.0, 0.0]), Point::new(vec![4.0, 0.0])],
        );
        let b = explicit(
            2,
            mk(&[-3.0, -1.0], &[-2.0, 1.0]),
            vec![Point::new(vec![-2.0, 0.0]), Point::new(vec![-3.0, 0.0])],
        );
        let probs = qualification_probabilities(&q, &[&a, &b]);
        // P(a) = ½·P(b>1) + ½·P(b>4) = ½·1 + 0 = ½
        // P(b) = ½·P(a>2) + ½·P(a>3) = ¼ + ¼ = ½
        assert!((probs[0].1 - 0.5).abs() < 1e-12);
        assert!((probs[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_instance_distances_lose_tied_mass() {
        // With strict comparison, tied worlds award the win to no one; the
        // remaining mass is exactly the probability of a strict winner.
        let q = Point::new(vec![0.0]);
        let a = explicit(
            1,
            mk(&[1.0], &[3.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![3.0])],
        );
        let b = explicit(
            2,
            mk(&[1.0], &[3.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![3.0])],
        );
        let probs = qualification_probabilities(&q, &[&a, &b]);
        // each: ½·P(other>1)=½·½ + ½·P(other>3)=0 → ¼
        assert!((probs[0].1 - 0.25).abs() < 1e-12);
        assert!((probs[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one_without_ties() {
        let q = Point::new(vec![5.0, 5.0]);
        let objs: Vec<UncertainObject> = (0..6)
            .map(|i| {
                let base = 1.0 + i as f64;
                UncertainObject::uniform(i as u64, mk(&[base, base], &[base + 2.0, base + 2.0]), 64)
            })
            .collect();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let probs = qualification_probabilities(&q, &refs);
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );
        assert!(probs.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn dominated_candidate_gets_zero() {
        let q = Point::new(vec![0.0]);
        let near = explicit(
            1,
            mk(&[1.0], &[2.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![2.0])],
        );
        // every instance of `blocked` is farther than near's farthest
        let blocked = explicit(
            2,
            mk(&[5.0], &[6.0]),
            vec![Point::new(vec![5.0]), Point::new(vec![6.0])],
        );
        let probs = qualification_probabilities(&q, &[&near, &blocked]);
        assert_eq!(probs[1].1, 0.0);
        assert_eq!(probs[0].1, 1.0);
    }

    #[test]
    fn partial_overlap_gives_intermediate_probability() {
        let q = Point::new(vec![0.0]);
        // a: instances at 1, 3 ; b: instances at 2, 4
        let a = explicit(
            1,
            mk(&[1.0], &[3.0]),
            vec![Point::new(vec![1.0]), Point::new(vec![3.0])],
        );
        let b = explicit(
            2,
            mk(&[2.0], &[4.0]),
            vec![Point::new(vec![2.0]), Point::new(vec![4.0])],
        );
        let probs = qualification_probabilities(&q, &[&a, &b]);
        // P(a) = 1/2·[d=1: b>1 always =1] + 1/2·[d=3: b>3 w.p. 1/2] = 0.75
        assert!((probs[0].1 - 0.75).abs() < 1e-12);
        assert!((probs[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_candidate_is_certain() {
        let q = Point::new(vec![9.0, 9.0]);
        let only = UncertainObject::uniform(3, mk(&[0.0, 0.0], &[1.0, 1.0]), 32);
        let probs = qualification_probabilities(&q, &[&only]);
        assert_eq!(probs, vec![(3, 1.0)]);
    }

    #[test]
    fn payload_page_estimate() {
        let o = UncertainObject::uniform(1, mk(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]), 500);
        // 500 × 3 × 8 = 12000 bytes → 3 pages of 4096
        assert_eq!(pdf_payload_pages(&o, 4096), 3);
        let tiny = UncertainObject::uniform(2, mk(&[0.0], &[1.0]), 1);
        assert_eq!(pdf_payload_pages(&tiny, 4096), 1);
    }

    #[test]
    fn frac_farther_edges() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(frac_farther(&v, 0.5), 1.0);
        assert_eq!(frac_farther(&v, 2.0), 0.5); // strictly greater
        assert_eq!(frac_farther(&v, 4.0), 0.0);
        assert_eq!(frac_farther(&[], 1.0), 1.0);
    }
}
