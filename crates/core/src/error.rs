//! Typed errors for the query and database layers.
//!
//! Before PR 5, bad inputs panicked: a query point of the wrong
//! dimensionality indexed out of bounds somewhere inside the geometry
//! kernels, inserting a duplicate id asserted, and `run` on a spec without a
//! target point `expect`ed. A concurrent serving system cannot afford any of
//! that — one malformed request must come back as a value, not take the
//! process down — so the public API now reports every data-dependent failure
//! through two enums:
//!
//! * [`QueryError`] — read-side failures, produced by
//!   [`ProbNnEngine::execute`](crate::query::ProbNnEngine::execute) and
//!   friends;
//! * [`DbError`] — write- and persistence-side failures, produced by the
//!   [`Db`](crate::db::Db) facade, the fallible update methods on the
//!   engines, and snapshot `save`/`load`.
//!
//! Programming errors that cannot depend on runtime data (e.g. building a
//! [`QuerySpec`](crate::query::QuerySpec) with `top_k(0)`) remain documented
//! panics: they are caught by the first unit test, not by production
//! traffic.

use std::fmt;

/// A read-side failure: the request cannot be answered against the engine's
/// current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query point's dimensionality differs from the indexed data's.
    DimensionMismatch {
        /// Dimensionality of the indexed data.
        expected: usize,
        /// Dimensionality of the offending query point.
        got: usize,
    },
    /// The engine indexes no objects, so "the nearest neighbor" does not
    /// exist. (Distinguished from an empty *answer set*, which a threshold
    /// spec can legitimately produce.)
    EmptyDatabase,
    /// [`run`](crate::query::ProbNnEngine::run) was called on a spec that
    /// has no target point; build it with
    /// [`QuerySpec::point`](crate::query::QuerySpec::point) or pass the
    /// point explicitly via `execute` / `query_batch`.
    MissingTarget,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DimensionMismatch { expected, got } => write!(
                f,
                "query point has dimensionality {got}, the indexed data has {expected}"
            ),
            QueryError::EmptyDatabase => write!(f, "the database holds no objects"),
            QueryError::MissingTarget => write!(
                f,
                "the query spec has no target point (build it with QuerySpec::point)"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// A write- or persistence-side failure of a database operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DbError {
    /// A read-side failure surfaced through a database-level call.
    Query(QueryError),
    /// Insertion of an object id that is already indexed.
    DuplicateId(u64),
    /// Removal (or lookup) of an object id that is not indexed.
    UnknownId(u64),
    /// The object's uncertainty region lies (partly) outside the engine's
    /// domain, so index cells cannot cover it.
    OutOfDomain(u64),
    /// Snapshot persistence failed: an I/O error from `save`/`load`, or a
    /// corrupt / version-skewed snapshot file (surfaced by the codec layer
    /// as [`std::io::ErrorKind::InvalidData`]).
    Snapshot(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Query(e) => write!(f, "query failed: {e}"),
            DbError::DuplicateId(id) => write!(f, "object id {id} is already indexed"),
            DbError::UnknownId(id) => write!(f, "object id {id} is not indexed"),
            DbError::OutOfDomain(id) => {
                write!(
                    f,
                    "object {id}'s uncertainty region lies outside the domain"
                )
            }
            DbError::Snapshot(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Query(e) => Some(e),
            DbError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for DbError {
    fn from(e: QueryError) -> Self {
        DbError::Query(e)
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Snapshot(e)
    }
}

/// A construction failure of [`PvIndex::try_build`](crate::PvIndex::try_build).
///
/// Phase-1 SE computation fans out over worker threads; before PR 8 a
/// panicking worker was re-raised through `.expect("worker")` and took the
/// whole process down. The work-stealing build instead drains every worker,
/// captures the first panic payload, and surfaces it as a value — mirroring
/// the per-worker error slots of the batch query path.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A Phase-1 worker thread panicked while computing UBRs. The payload's
    /// message (when it is a string) is preserved for diagnosis.
    WorkerPanicked {
        /// Panic message, or a placeholder for non-string payloads.
        message: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WorkerPanicked { message } => {
                write!(f, "a UBR construction worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let e = QueryError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        assert!(DbError::DuplicateId(7).to_string().contains('7'));
        assert!(DbError::UnknownId(9).to_string().contains('9'));
        assert!(DbError::OutOfDomain(4).to_string().contains('4'));
        let b = BuildError::WorkerPanicked {
            message: "poisoned".into(),
        };
        assert!(b.to_string().contains("poisoned"));
    }

    #[test]
    fn conversions_and_sources() {
        let q: DbError = QueryError::EmptyDatabase.into();
        assert!(matches!(q, DbError::Query(QueryError::EmptyDatabase)));
        assert!(q.source().is_some());
        let io: DbError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, DbError::Snapshot(_)));
        assert!(io.source().is_some());
        assert!(DbError::DuplicateId(1).source().is_none());
    }
}
