//! Typed errors for the query and database layers.
//!
//! Before PR 5, bad inputs panicked: a query point of the wrong
//! dimensionality indexed out of bounds somewhere inside the geometry
//! kernels, inserting a duplicate id asserted, and `run` on a spec without a
//! target point `expect`ed. A concurrent serving system cannot afford any of
//! that — one malformed request must come back as a value, not take the
//! process down — so the public API now reports every data-dependent failure
//! through two enums:
//!
//! * [`QueryError`] — read-side failures, produced by
//!   [`ProbNnEngine::execute`](crate::query::ProbNnEngine::execute) and
//!   friends;
//! * [`DbError`] — write- and persistence-side failures, produced by the
//!   [`Db`](crate::db::Db) facade, the fallible update methods on the
//!   engines, and snapshot `save`/`load`.
//!
//! Programming errors that cannot depend on runtime data (e.g. building a
//! [`QuerySpec`](crate::query::QuerySpec) with `top_k(0)`) remain documented
//! panics: they are caught by the first unit test, not by production
//! traffic.
//!
//! Since PR 9 the persistence-side errors form a *typed source chain*
//! end-to-end: a corrupt snapshot surfaces as
//! `DbError::Snapshot(SnapshotError::Decode(DecodeError::ChecksumMismatch))`
//! rather than a stringly-wrapped `io::Error`, so callers can walk
//! [`std::error::Error::source`] to the exact codec-level cause — and
//! recovery failures ([`RecoveryError`]) report *which* commit version was
//! the last durable one.

use pv_storage::codec::DecodeError;
use pv_storage::wal::WalError;
use std::fmt;
use std::path::PathBuf;

/// A read-side failure: the request cannot be answered against the engine's
/// current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query point's dimensionality differs from the indexed data's.
    DimensionMismatch {
        /// Dimensionality of the indexed data.
        expected: usize,
        /// Dimensionality of the offending query point.
        got: usize,
    },
    /// The engine indexes no objects, so "the nearest neighbor" does not
    /// exist. (Distinguished from an empty *answer set*, which a threshold
    /// spec can legitimately produce.)
    EmptyDatabase,
    /// [`run`](crate::query::ProbNnEngine::run) was called on a spec that
    /// has no target point; build it with
    /// [`QuerySpec::point`](crate::query::QuerySpec::point) or pass the
    /// point explicitly via `execute` / `query_batch`.
    MissingTarget,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DimensionMismatch { expected, got } => write!(
                f,
                "query point has dimensionality {got}, the indexed data has {expected}"
            ),
            QueryError::EmptyDatabase => write!(f, "the database holds no objects"),
            QueryError::MissingTarget => write!(
                f,
                "the query spec has no target point (build it with QuerySpec::point)"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Why a snapshot file could not be saved or loaded: a plain I/O failure,
/// or a file that was read fine but failed to *decode* (corruption or
/// version skew, reported by the codec layer).
///
/// Splitting the two matters operationally — an `Io` failure is usually
/// environmental and retryable, a `Decode` failure means the artifact
/// itself is damaged and a different generation must be used.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The file's contents are not a valid snapshot (bad magic, checksum
    /// mismatch, unsupported version, implausible structure).
    Decode(DecodeError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Decode(e) => write!(f, "snapshot is not decodable: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Decode(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        // The snapshot codecs wrap their `DecodeError` in an
        // `InvalidData` io::Error at the `save`/`load` boundary; unwrap it
        // back out so the typed chain bottoms out at the codec error
        // (`DecodeError` is `Copy`, so this loses nothing).
        if e.kind() == std::io::ErrorKind::InvalidData {
            if let Some(d) = e.get_ref().and_then(|r| r.downcast_ref::<DecodeError>()) {
                return SnapshotError::Decode(*d);
            }
        }
        SnapshotError::Io(e)
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

/// A write- or persistence-side failure of a database operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DbError {
    /// A read-side failure surfaced through a database-level call.
    Query(QueryError),
    /// Insertion of an object id that is already indexed.
    DuplicateId(u64),
    /// Removal (or lookup) of an object id that is not indexed.
    UnknownId(u64),
    /// The object's uncertainty region lies (partly) outside the engine's
    /// domain, so index cells cannot cover it.
    OutOfDomain(u64),
    /// Snapshot persistence failed — see [`SnapshotError`] for the I/O vs.
    /// corruption split.
    Snapshot(SnapshotError),
    /// The write-ahead log rejected a durable commit; nothing was
    /// published and the engine state is unchanged.
    Wal(WalError),
    /// A previous durable-commit failure could not be rolled back (the WAL
    /// could not be truncated to its pre-append length), so the log's
    /// on-disk state is no longer trusted. All further writes are refused;
    /// reopen the database to recover.
    Poisoned,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Query(e) => write!(f, "query failed: {e}"),
            DbError::DuplicateId(id) => write!(f, "object id {id} is already indexed"),
            DbError::UnknownId(id) => write!(f, "object id {id} is not indexed"),
            DbError::OutOfDomain(id) => {
                write!(
                    f,
                    "object {id}'s uncertainty region lies outside the domain"
                )
            }
            DbError::Snapshot(e) => write!(f, "snapshot persistence failed: {e}"),
            DbError::Wal(e) => write!(f, "durable commit failed: {e}"),
            DbError::Poisoned => write!(
                f,
                "the write-ahead log is poisoned by an unrolled-back append; \
                 reopen the database to recover"
            ),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Query(e) => Some(e),
            DbError::Snapshot(e) => Some(e),
            DbError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for DbError {
    fn from(e: QueryError) -> Self {
        DbError::Query(e)
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Snapshot(e.into())
    }
}

impl From<SnapshotError> for DbError {
    fn from(e: SnapshotError) -> Self {
        DbError::Snapshot(e)
    }
}

impl From<WalError> for DbError {
    fn from(e: WalError) -> Self {
        DbError::Wal(e)
    }
}

/// Why [`DurableDb::open`](crate::durable::DurableDb::open) could not
/// reconstruct a database from its directory.
///
/// The variants distinguish the *tolerated* crash signatures (a torn WAL
/// tail, a leftover `.tmp` snapshot — both repaired silently and reported
/// in the recovery report, not here) from genuine damage: every variant of
/// this enum means recovery refused to guess. `Log` wraps
/// [`WalError::Corrupt`] and therefore carries the last durable version the
/// caller could recover *to* by truncating the log manually.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoveryError {
    /// A directory-level file operation failed.
    Io(std::io::Error),
    /// No snapshot generation (`snap.<version>.pvix`) exists in the
    /// directory — it is not a durable-database directory, or the initial
    /// create never completed.
    MissingGeneration {
        /// The directory that was searched.
        dir: PathBuf,
    },
    /// The current snapshot generation exists but fails to load. Never
    /// silently skipped: the WAL was truncated when this generation was
    /// rotated in, so an older generation could not replay forward.
    Snapshot {
        /// The generation file that failed.
        path: PathBuf,
        /// The I/O-or-decode cause.
        source: SnapshotError,
    },
    /// The write-ahead log is unreadable or corrupt mid-log (a torn tail
    /// is *not* this — it is truncated away and reported as tolerated).
    Log(WalError),
    /// A WAL record passed its checksums but its body does not decode as
    /// an operation batch — a format bug or deliberate tampering.
    BadRecord {
        /// The commit version of the offending record.
        version: u64,
        /// What failed to decode.
        source: DecodeError,
    },
    /// The log's surviving records skip a version: commits between
    /// `expected` and `found` are missing, so replay cannot proceed.
    VersionGap {
        /// The version replay needed next.
        expected: u64,
        /// The version the log actually held.
        found: u64,
    },
    /// Replaying a logged operation against the engine failed — the log
    /// and snapshot disagree about the state the operation applies to.
    Apply {
        /// The commit version whose replay failed.
        version: u64,
        /// The engine-level failure.
        source: Box<DbError>,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery I/O failed: {e}"),
            RecoveryError::MissingGeneration { dir } => write!(
                f,
                "no snapshot generation found in {}: not a durable database directory",
                dir.display()
            ),
            RecoveryError::Snapshot { path, source } => write!(
                f,
                "snapshot generation {} failed to load: {source}",
                path.display()
            ),
            RecoveryError::Log(e) => write!(f, "write-ahead log replay failed: {e}"),
            RecoveryError::BadRecord { version, .. } => write!(
                f,
                "WAL record for version {version} passed checksums but does not decode"
            ),
            RecoveryError::VersionGap { expected, found } => write!(
                f,
                "WAL replay expected version {expected} next but found {found}"
            ),
            RecoveryError::Apply { version, source } => {
                write!(f, "replaying commit version {version} failed: {source}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            RecoveryError::MissingGeneration { .. } => None,
            RecoveryError::Snapshot { source, .. } => Some(source),
            RecoveryError::Log(e) => Some(e),
            RecoveryError::BadRecord { source, .. } => Some(source),
            RecoveryError::VersionGap { .. } => None,
            RecoveryError::Apply { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Log(e)
    }
}

/// A construction failure of [`PvIndex::try_build`](crate::PvIndex::try_build).
///
/// Phase-1 SE computation fans out over worker threads; before PR 8 a
/// panicking worker was re-raised through `.expect("worker")` and took the
/// whole process down. The work-stealing build instead drains every worker,
/// captures the first panic payload, and surfaces it as a value — mirroring
/// the per-worker error slots of the batch query path.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A Phase-1 worker thread panicked while computing UBRs. The payload's
    /// message (when it is a string) is preserved for diagnosis.
    WorkerPanicked {
        /// Panic message, or a placeholder for non-string payloads.
        message: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WorkerPanicked { message } => {
                write!(f, "a UBR construction worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let e = QueryError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        assert!(DbError::DuplicateId(7).to_string().contains('7'));
        assert!(DbError::UnknownId(9).to_string().contains('9'));
        assert!(DbError::OutOfDomain(4).to_string().contains('4'));
        let b = BuildError::WorkerPanicked {
            message: "poisoned".into(),
        };
        assert!(b.to_string().contains("poisoned"));
    }

    #[test]
    fn conversions_and_sources() {
        let q: DbError = QueryError::EmptyDatabase.into();
        assert!(matches!(q, DbError::Query(QueryError::EmptyDatabase)));
        assert!(q.source().is_some());
        let io: DbError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, DbError::Snapshot(SnapshotError::Io(_))));
        assert!(io.source().is_some());
        assert!(DbError::DuplicateId(1).source().is_none());
    }

    #[test]
    fn snapshot_corruption_chains_to_the_codec_error() {
        // The snapshot codecs wrap DecodeError in an InvalidData io::Error
        // at the save/load boundary; the typed chain must unwrap it.
        let decode = DecodeError::ChecksumMismatch {
            context: "PV-index snapshot",
        };
        let io = std::io::Error::new(std::io::ErrorKind::InvalidData, decode);
        let db: DbError = io.into();
        match &db {
            DbError::Snapshot(SnapshotError::Decode(DecodeError::ChecksumMismatch { context })) => {
                assert_eq!(*context, "PV-index snapshot")
            }
            other => panic!("expected a Decode chain, got {other:?}"),
        }
        // source() walks DbError -> SnapshotError -> DecodeError.
        let snap = db.source().expect("snapshot level");
        let codec = snap.source().expect("codec level");
        assert!(codec.to_string().contains("checksum"));

        // Plain I/O failures stay on the Io side of the split.
        let not_found = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(
            SnapshotError::from(not_found),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn recovery_error_display_and_sources() {
        let gap = RecoveryError::VersionGap {
            expected: 4,
            found: 6,
        };
        assert!(gap.to_string().contains('4') && gap.to_string().contains('6'));
        assert!(gap.source().is_none());

        let apply = RecoveryError::Apply {
            version: 9,
            source: Box::new(DbError::UnknownId(3)),
        };
        assert!(apply.to_string().contains('9'));
        assert!(apply.source().unwrap().to_string().contains('3'));

        let missing = RecoveryError::MissingGeneration {
            dir: PathBuf::from("/tmp/x"),
        };
        assert!(missing.to_string().contains("/tmp/x"));

        let log: RecoveryError = WalError::Io(std::io::Error::other("disk fell off")).into();
        assert!(log.source().is_some());
        assert!(log.to_string().contains("replay failed"));
    }
}
