//! The R-tree branch-and-prune baseline for PNNQ Step 1.
//!
//! This is the competitor of every Fig. 9 experiment: an R*-tree over the
//! objects' uncertainty regions, queried best-first by `distmin` while a
//! running threshold `τ = min distmax(u(o), q)` prunes subtrees and objects
//! (the approach of the paper's reference \[8\]). Leaf-node visits are
//! charged as disk I/O, matching the paper's storage model (non-leaf nodes
//! live in a main-memory budget, leaves on disk).

use crate::db::{PersistentEngine, WritableEngine};
use crate::error::DbError;
use crate::prob::pdf_payload_pages;
use crate::query::{FetchScratch, ProbNnEngine, Step1Engine};
use crate::stats::{BuildStats, Step1Stats, UpdateStats};
use pv_geom::{max_dist_sq, HyperRect, Point};
use pv_rtree::{Entry, RTree, RTreeParams};
use pv_uncertain::{UncertainDb, UncertainObject};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// R-tree based PNNQ evaluator (the paper's "R-tree" competitor).
pub struct RTreeBaseline {
    pub(crate) tree: RTree,
    pub(crate) objects: HashMap<u64, UncertainObject>,
    pub(crate) page_size: usize,
    pub(crate) fanout: usize,
    pub(crate) domain: HyperRect,
}

impl std::fmt::Debug for RTreeBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTreeBaseline")
            .field("objects", &self.objects.len())
            .field("fanout", &self.fanout)
            .field("page_size", &self.page_size)
            .finish_non_exhaustive()
    }
}

impl RTreeBaseline {
    /// Bulk-loads the R*-tree over the database's uncertainty regions.
    pub fn build(db: &UncertainDb, fanout: usize, page_size: usize) -> Self {
        let entries: Vec<Entry> = db
            .objects
            .iter()
            .map(|o| Entry {
                rect: o.region.clone(),
                id: o.id,
            })
            .collect();
        let tree = RTree::bulk_load(db.dim(), RTreeParams::with_fanout(fanout), entries);
        let objects = db.objects.iter().map(|o| (o.id, o.clone())).collect();
        Self {
            tree,
            objects,
            page_size,
            fanout,
            domain: db.domain.clone(),
        }
    }

    /// The domain the indexed database covers.
    pub fn domain(&self) -> &HyperRect {
        &self.domain
    }

    /// Serialises the baseline into a snapshot file at `path`; the object
    /// catalog is stored and the (cheap, deterministic) bulk load re-runs on
    /// [`RTreeBaseline::load`]. See [`crate::snapshot`] for the format.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, crate::snapshot::rtree_baseline_to_bytes(self))
    }

    /// Loads a baseline saved with [`RTreeBaseline::save`].
    ///
    /// # Errors
    /// I/O errors pass through; corruption and version skew yield an
    /// [`std::io::ErrorKind::InvalidData`] error wrapping the precise
    /// [`pv_storage::codec::DecodeError`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        crate::snapshot::rtree_baseline_from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no object is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts an object (the baseline supports updates trivially).
    ///
    /// # Errors
    /// [`DbError::DuplicateId`] if the id is already indexed (inserting it
    /// anyway would leave a dangling duplicate entry in the tree);
    /// [`DbError::OutOfDomain`] if the region escapes the domain — the same
    /// write contract as every other engine behind the [`crate::db::Db`]
    /// facade.
    pub fn insert(&mut self, o: UncertainObject) -> Result<UpdateStats, DbError> {
        let t0 = Instant::now();
        if self.objects.contains_key(&o.id) {
            return Err(DbError::DuplicateId(o.id));
        }
        if !self.domain.contains_rect(&o.region) {
            return Err(DbError::OutOfDomain(o.id));
        }
        self.tree.insert(o.region.clone(), o.id);
        self.objects.insert(o.id, o);
        Ok(UpdateStats {
            time: t0.elapsed(),
            ..Default::default()
        })
    }

    /// Removes an object by id.
    ///
    /// # Errors
    /// [`DbError::UnknownId`] if the id is not indexed (previously `false`).
    pub fn remove(&mut self, id: u64) -> Result<UpdateStats, DbError> {
        let t0 = Instant::now();
        let o = self.objects.remove(&id).ok_or(DbError::UnknownId(id))?;
        let in_tree = self.tree.remove(&o.region, id);
        // The catalog and the tree are updated in lock-step, so a miss here
        // means they drifted apart — catch it at the point of corruption
        // (in release builds too; a ghost id would otherwise surface far
        // away as a broken step1) rather than absorb it.
        assert!(in_tree, "object {id} was in the catalog but not the tree");
        Ok(UpdateStats {
            time: t0.elapsed(),
            ..Default::default()
        })
    }

    /// Access to the underlying tree (statistics, invariants).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The uncertainty region of an indexed object.
    pub fn region_of(&self, id: u64) -> Option<&HyperRect> {
        self.objects.get(&id).map(|o| &o.region)
    }
}

impl Step1Engine for RTreeBaseline {
    fn engine_name(&self) -> &'static str {
        "rtree"
    }

    fn dim(&self) -> usize {
        self.tree.dim()
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    /// Best-first branch-and-prune over the R*-tree: all objects with
    /// non-zero qualification probability.
    fn step1(&self, q: &Point) -> (Vec<u64>, Step1Stats) {
        let mut ids = Vec::new();
        let stats = self.step1_into(q, &mut ids, &mut FetchScratch::default());
        (ids, stats)
    }

    /// Buffer-reusing branch-and-prune (the best-first iterator itself still
    /// maintains its own heap, so unlike the PV-index this path is lean but
    /// not allocation-free).
    fn step1_into(&self, q: &Point, ids: &mut Vec<u64>, scratch: &mut FetchScratch) -> Step1Stats {
        let t0 = Instant::now();
        let leaf0 = self.tree.stats.leaf_visits.load(Ordering::Relaxed);
        let mut tau_sq = f64::INFINITY;
        let cand = &mut scratch.cand; // (id, mindist_sq, unused)
        cand.clear();
        let mut candidates = 0usize;
        for n in self.tree.nn_iter(q) {
            let mind_sq = n.dist * n.dist;
            if mind_sq > tau_sq {
                break; // every later object has distmin > τ
            }
            candidates += 1;
            tau_sq = tau_sq.min(max_dist_sq(&n.rect, q));
            cand.push((n.id, mind_sq, 0.0));
        }
        // τ only decreased while collecting: final filter.
        ids.clear();
        ids.extend(
            cand.iter()
                .filter(|&&(_, mind_sq, _)| mind_sq <= tau_sq)
                .map(|&(id, _, _)| id),
        );
        ids.sort_unstable();
        Step1Stats {
            time: t0.elapsed(),
            io_reads: self.tree.stats.leaf_visits.load(Ordering::Relaxed) - leaf0,
            candidates,
            answers: ids.len(),
        }
    }
}

impl ProbNnEngine for RTreeBaseline {
    fn candidate_region(&self, id: u64) -> &HyperRect {
        &self.objects[&id].region
    }

    /// Serves the payload from the in-memory catalog, charging the same
    /// pdf-payload pages as the PV-index's storage model.
    fn fetch_candidate(&self, id: u64) -> (UncertainObject, u64) {
        let o = self.objects[&id].clone();
        let io = pdf_payload_pages(&o, self.page_size);
        (o, io)
    }

    /// Serves distances straight from the in-memory catalog — no clone.
    fn fetch_dists_sq(
        &self,
        id: u64,
        q: &Point,
        out: &mut Vec<f64>,
        scratch: &mut FetchScratch,
    ) -> u64 {
        let o = &self.objects[&id];
        o.dists_sq_into(q, &mut scratch.samples, out);
        pdf_payload_pages(o, self.page_size)
    }
}

impl RTreeBaseline {
    /// Deterministic STR bulk load over the id-sorted catalog — the same
    /// reconstruction [`RTreeBaseline::load`] uses. This is what a *rebuild*
    /// means for the baseline; forks no longer pay for it.
    fn rebulk_loaded(&self) -> Self {
        let mut ids: Vec<u64> = self.objects.keys().copied().collect();
        ids.sort_unstable();
        let entries: Vec<Entry> = ids
            .iter()
            .map(|id| Entry {
                rect: self.objects[id].region.clone(),
                id: *id,
            })
            .collect();
        let dim = self.tree.dim();
        Self {
            tree: RTree::bulk_load(dim, RTreeParams::with_fanout(self.fanout), entries),
            objects: self.objects.clone(),
            page_size: self.page_size,
            fanout: self.fanout,
            domain: self.domain.clone(),
        }
    }
}

/// Copy-on-write support for the [`crate::db::Db`] facade: the fork is a
/// structural O(index) clone of the R-tree rather than a re-bulk-load, so
/// forking preserves the published tree's exact shape and skips the STR
/// reconstruction. The successor shares no mutable state with the original.
impl WritableEngine for RTreeBaseline {
    fn fork(&self) -> Self {
        Self {
            tree: self.tree.clone(),
            objects: self.objects.clone(),
            page_size: self.page_size,
            fanout: self.fanout,
            domain: self.domain.clone(),
        }
    }

    /// A rebuild is a fresh deterministic STR bulk load over the catalog
    /// (unlike [`WritableEngine::fork`], which clones the current shape).
    fn rebuilt(&self) -> (Self, BuildStats) {
        let t0 = Instant::now();
        let fresh = self.rebulk_loaded();
        let stats = BuildStats {
            total_time: t0.elapsed(),
            ubr_count: fresh.objects.len(),
            ..Default::default()
        };
        (fresh, stats)
    }

    fn apply_insert(&mut self, o: UncertainObject) -> Result<UpdateStats, DbError> {
        self.insert(o)
    }

    fn apply_remove(&mut self, id: u64) -> Result<UpdateStats, DbError> {
        self.remove(id)
    }

    fn apply_rebuild(&mut self) -> BuildStats {
        let t0 = Instant::now();
        *self = self.rebulk_loaded();
        BuildStats {
            total_time: t0.elapsed(),
            ubr_count: self.objects.len(),
            ..Default::default()
        }
    }
}

impl PersistentEngine for RTreeBaseline {
    fn snapshot_bytes(&self) -> std::io::Result<Vec<u8>> {
        Ok(crate::snapshot::rtree_baseline_to_bytes(self))
    }

    fn from_snapshot_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        crate::snapshot::rtree_baseline_from_bytes(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;
    use crate::verify;
    use pv_geom::min_dist_sq;
    use pv_workload::{queries, synthetic, SyntheticConfig};

    fn small_db(n: usize, dim: usize, seed: u64) -> UncertainDb {
        synthetic(&SyntheticConfig {
            n,
            dim,
            max_side: 200.0,
            samples: 16,
            seed,
        })
    }

    #[test]
    fn step1_matches_naive_scan() {
        for dim in [2, 3] {
            let db = small_db(400, dim, 9);
            let baseline = RTreeBaseline::build(&db, 16, 4096);
            for q in queries::uniform(&db.domain, 30, 5) {
                let (got, _) = baseline.step1(&q);
                let want = verify::possible_nn(db.objects.iter(), &q);
                assert_eq!(got, want, "dim {dim} q {q:?}");
            }
        }
    }

    #[test]
    fn step1_prunes_most_of_the_database() {
        let db = small_db(2000, 2, 11);
        let baseline = RTreeBaseline::build(&db, 32, 4096);
        let q = queries::uniform(&db.domain, 1, 3)[0].clone();
        let (ids, stats) = baseline.step1(&q);
        assert!(!ids.is_empty());
        assert!(
            stats.candidates < db.len() / 4,
            "examined {} of {}",
            stats.candidates,
            db.len()
        );
    }

    #[test]
    fn full_query_produces_probabilities() {
        let db = small_db(300, 2, 13);
        let baseline = RTreeBaseline::build(&db, 16, 4096);
        let q = queries::uniform(&db.domain, 1, 7)[0].clone();
        let out = baseline.execute(&q, &QuerySpec::new()).unwrap();
        let total: f64 = out.answers.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        assert!(out.stats.pc_io_reads >= out.answers.len() as u64);
        assert!(out.stats.step1.io_reads > 0);
    }

    #[test]
    fn updates_keep_step1_correct() {
        let mut db = small_db(200, 2, 17);
        let mut baseline = RTreeBaseline::build(&db, 8, 4096);
        // remove 50 objects, insert 30 fresh ones
        for id in 0..50u64 {
            assert!(baseline.remove(id).is_ok());
        }
        db.objects.retain(|o| o.id >= 50);
        let fresh = small_db(30, 2, 999);
        for (i, o) in fresh.objects.into_iter().enumerate() {
            let mut o = o;
            o.id = 10_000 + i as u64;
            db.objects.push(o.clone());
            baseline.insert(o).unwrap();
        }
        for q in queries::uniform(&db.domain, 20, 23) {
            let (got, _) = baseline.step1(&q);
            let want = verify::possible_nn(db.objects.iter(), &q);
            assert_eq!(got, want);
        }
        // Bad writes are typed errors under the same contract as the other
        // engines behind the Db facade.
        let escapee = UncertainObject::uniform(
            77_777,
            HyperRect::new(vec![-50.0, -50.0], vec![-40.0, -40.0]),
            4,
        );
        assert!(matches!(
            baseline.insert(escapee),
            Err(DbError::OutOfDomain(77_777))
        ));
        let dup = db.objects[0].clone();
        let dup_id = dup.id;
        assert!(matches!(baseline.insert(dup), Err(DbError::DuplicateId(id)) if id == dup_id));
        assert!(matches!(
            baseline.remove(999_999),
            Err(DbError::UnknownId(999_999))
        ));
    }

    #[test]
    fn min_maxdist_object_always_answered() {
        let db = small_db(500, 3, 29);
        let baseline = RTreeBaseline::build(&db, 16, 4096);
        for q in queries::uniform(&db.domain, 10, 31) {
            let (ids, _) = baseline.step1(&q);
            // the object minimising distmax must be in the answer
            let best = db
                .objects
                .iter()
                .min_by(|a, b| {
                    max_dist_sq(&a.region, &q)
                        .partial_cmp(&max_dist_sq(&b.region, &q))
                        .unwrap()
                })
                .unwrap();
            assert!(ids.contains(&best.id));
            // and every answer has distmin <= that object's distmax
            let tau_sq = max_dist_sq(&best.region, &q);
            for id in &ids {
                let o = &db.objects.iter().find(|o| o.id == *id).unwrap();
                assert!(min_dist_sq(&o.region, &q) <= tau_sq + 1e-9);
            }
        }
    }
}
