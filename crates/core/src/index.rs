//! The PV-index (§VI): primary octree + secondary extendible hash table,
//! PNNQ evaluation and incremental maintenance.
//!
//! Layout (Fig. 7 of the paper):
//!
//! * **primary index** — a `2^d`-ary octree over the domain; each leaf holds
//!   `(object id, u(o))` records for every object whose UBR overlaps the
//!   leaf region. Non-leaf nodes live in a main-memory budget; leaves are
//!   chained disk pages ([`pv_octree`]).
//! * **secondary index** — an extendible hash table keyed by object id,
//!   whose entries hold the object's UBR and its uncertainty information
//!   (region + pdf descriptor) ([`pv_exthash`]).
//!
//! Both structures share one simulated disk, so experiments can compare the
//! PV-index's page traffic directly against the R-tree baseline.
//!
//! For split re-routing the octree needs id → UBR lookups; we serve them
//! from an in-memory UBR catalog that mirrors the secondary index. The
//! catalog does not affect any reported figure (Figs. 9(c)/(g) measure
//! *query* I/O, and queries never consult it), it only spares construction
//! the artificial churn of re-reading hash pages the real system would have
//! cached anyway.

use crate::cset::{build_mean_tree, choose_cset};
use crate::db::{PersistentEngine, WritableEngine};
use crate::error::DbError;
use crate::params::{CSetStrategy, PvParams};
use crate::prob::{payload_pages, pdf_payload_pages};
use crate::query::{FetchScratch, ProbNnEngine, Step1Engine};
use crate::se::{compute_ubr, compute_ubr_with_bounds, SeBounds};
use crate::stats::{BuildStats, SeStats, Step1Stats, UpdateStats};
use pv_exthash::ExtHash;
use pv_geom::{HyperRect, Point};
use pv_octree::{decode_leaf_record, encode_leaf_record, leaf_record_dists_sq, Octree};
use pv_rtree::RTree;
use pv_storage::{codec, MemPager, Pager};
use pv_uncertain::{UncertainDb, UncertainObject};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// The PV-index.
///
/// Field visibility is `pub(crate)` so the [`crate::snapshot`] codec can
/// serialise and reconstruct the exact state without a parallel builder API.
pub struct PvIndex {
    pub(crate) params: PvParams,
    pub(crate) domain: HyperRect,
    pub(crate) dim: usize,
    /// Primary index (octree with disk-resident leaves).
    pub(crate) octree: Octree<MemPager>,
    /// Secondary index: id → (UBR, object payload).
    pub(crate) secondary: ExtHash<MemPager>,
    /// Shared simulated disk.
    pub(crate) pager: MemPager,
    /// In-memory object catalog (regions + pdf descriptors).
    pub(crate) objects: HashMap<u64, UncertainObject>,
    /// Uncertainty-region catalog kept in lock-step with `objects`; feeds
    /// `chooseCSet` without per-update rebuilding.
    pub(crate) regions: HashMap<u64, HyperRect>,
    /// In-memory UBR catalog mirroring the secondary index.
    pub(crate) ubrs: HashMap<u64, HyperRect>,
    /// R*-tree over object mean positions, kept live for `chooseCSet`.
    pub(crate) mean_tree: RTree,
    /// Construction statistics.
    pub(crate) build_stats: BuildStats,
    /// Tightness-maintenance queue (PR 6): ids whose UBRs are conservative
    /// but possibly loose after deferred §VI-B recomputation. Drained at
    /// [`PvParams::update_budget`] warm-started SE runs per commit. Purely
    /// an in-memory hint — not serialised (a loaded index starts with an
    /// empty queue; its stored UBRs are sound either way).
    pub(crate) stale: BTreeSet<u64>,
}

impl std::fmt::Debug for PvIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PvIndex")
            .field("dim", &self.dim)
            .field("objects", &self.objects.len())
            .field("stale", &self.stale.len())
            .finish_non_exhaustive()
    }
}

/// Encodes a secondary-index record: a tag selecting the UBR
/// representation — `0`: raw `2d × f64` corners; `1`: grid-quantized
/// corners (`steps: u16` then `2d × u16` cell indices, the §VIII
/// "compression" extension) — followed by the object payload.
pub fn encode_secondary(
    ubr: &HyperRect,
    o: &UncertainObject,
    domain: &HyperRect,
    quantize: Option<u16>,
) -> Vec<u8> {
    let mut out = Vec::new();
    match quantize {
        None => {
            codec::put_u16(&mut out, 0);
            for &x in ubr.lo() {
                codec::put_f64(&mut out, x);
            }
            for &x in ubr.hi() {
                codec::put_f64(&mut out, x);
            }
        }
        Some(steps) => {
            codec::put_u16(&mut out, 1);
            let q = pv_geom::QuantizedRect::encode(ubr, domain, steps);
            codec::put_u16(&mut out, q.steps);
            for &c in &q.lo {
                codec::put_u16(&mut out, c);
            }
            for &c in &q.hi {
                codec::put_u16(&mut out, c);
            }
        }
    }
    out.extend_from_slice(&o.encode());
    out
}

/// Byte offset of the embedded [`UncertainObject::encode`] payload inside a
/// record written by [`encode_secondary`] (i.e. the length of the UBR
/// prefix), so the hot path can hand the object bytes to a zero-copy
/// [`pv_uncertain::EncodedObject`] without decoding the UBR.
fn secondary_payload_offset(buf: &[u8], dim: usize) -> Result<usize, codec::DecodeError> {
    let mut r = codec::Reader::new(buf);
    match r.try_u16()? {
        0 => Ok(2 + dim * 16),
        1 => Ok(2 + 2 + dim * 4),
        t => Err(codec::DecodeError::UnknownTag {
            context: "secondary record",
            tag: t,
        }),
    }
}

/// Decodes a record written by [`encode_secondary`].
///
/// Corruption — a truncated buffer or a tag no known version writes — is
/// reported through the codec layer as a [`codec::DecodeError`] instead of
/// panicking, so callers holding untrusted pages can recover.
pub fn decode_secondary(
    buf: &[u8],
    dim: usize,
    domain: &HyperRect,
) -> Result<(HyperRect, UncertainObject), codec::DecodeError> {
    let mut r = codec::Reader::new(buf);
    match r.try_u16()? {
        0 => {
            let lo: Vec<f64> = (0..dim).map(|_| r.try_f64()).collect::<Result<_, _>>()?; // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned object; the hot path streams the record bytes via get_into + EncodedObject")
            let hi: Vec<f64> = (0..dim).map(|_| r.try_f64()).collect::<Result<_, _>>()?; // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned object; the hot path streams the record bytes via get_into + EncodedObject")
            let ubr = HyperRect::new(lo, hi);
            // The Reader just consumed exactly this prefix, so the tail
            // window is always present; `get` keeps the decoder total.
            let obj = UncertainObject::try_decode(buf.get(2 + dim * 16..).unwrap_or_default())?;
            Ok((ubr, obj))
        }
        1 => {
            let steps = r.try_u16()?;
            let lo: Vec<u16> = (0..dim).map(|_| r.try_u16()).collect::<Result<_, _>>()?; // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned object; the hot path streams the record bytes via get_into + EncodedObject")
            let hi: Vec<u16> = (0..dim).map(|_| r.try_u16()).collect::<Result<_, _>>()?; // pv-lint: allow(hot-path-no-alloc, reason = "decoder constructing an owned object; the hot path streams the record bytes via get_into + EncodedObject")
            let q = pv_geom::QuantizedRect { lo, hi, steps };
            let ubr = q.decode(domain);
            let obj = UncertainObject::try_decode(buf.get(2 + 2 + dim * 4..).unwrap_or_default())?;
            Ok((ubr, obj))
        }
        t => Err(codec::DecodeError::UnknownTag {
            context: "secondary record",
            tag: t,
        }),
    }
}

/// Number of objects a Phase-1 worker claims per cursor bump. Small enough
/// that a skewed object (one pathological SE run) cannot leave peers idle
/// behind a static chunk boundary; large enough that the shared cursor is
/// touched a few hundred times per million objects, not once per object.
const BUILD_BATCH: usize = 32;

/// Build fail-point for the worker-panic tests: a Phase-1 worker panics when
/// it reaches the object with this id. `u64::MAX` (the default) disables it.
/// Not part of the public API.
#[doc(hidden)]
pub static BUILD_POISON_ID: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(u64::MAX);

/// Extracts the human-readable message from a caught panic payload. `panic!`
/// with a literal yields `&str`, with a formatted message `String`; anything
/// else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl PvIndex {
    /// Builds the PV-index for a database: computes every UBR with SE
    /// (work-stealing parallel when [`PvParams::build_threads`] > 1) and
    /// bulk-loads both on-disk structures.
    ///
    /// # Panics
    /// If a construction worker panics; serving layers that must survive
    /// that use [`PvIndex::try_build`].
    pub fn build(db: &UncertainDb, params: PvParams) -> Self {
        match Self::try_build(db, params) {
            Ok(index) => index,
            Err(e) => panic!("PV-index build failed: {e}"),
        }
    }

    /// Fallible [`PvIndex::build`]: a panicking Phase-1 worker surfaces as
    /// [`crate::BuildError::WorkerPanicked`] instead of taking the process down.
    ///
    /// The build is deterministic: for a given database and parameters, any
    /// `build_threads` value yields the same index state — workers steal
    /// fixed-size object batches off a shared cursor, and the merge reorders
    /// their results back into object order before Phase 2 runs.
    ///
    /// # Errors
    /// [`crate::BuildError::WorkerPanicked`] with the first captured panic message;
    /// the remaining workers are drained, not detached.
    pub fn try_build(db: &UncertainDb, params: PvParams) -> Result<Self, crate::BuildError> {
        Self::build_inner(db, params, true)
    }

    /// Legacy per-object insertion build (pre-PR-8 Phase 2): one
    /// `Octree::insert` and one `ExtHash::put` per object. Kept only as the
    /// ground truth for the build-equivalence test suite; the bulk path must
    /// stay logically indistinguishable from it.
    #[doc(hidden)]
    pub fn build_legacy(db: &UncertainDb, params: PvParams) -> Self {
        match Self::build_inner(db, params, false) {
            Ok(index) => index,
            Err(e) => panic!("PV-index build failed: {e}"),
        }
    }

    fn build_inner(
        db: &UncertainDb,
        params: PvParams,
        bulk: bool,
    ) -> Result<Self, crate::BuildError> {
        let t_total = Instant::now();
        let dim = db.dim();
        let pager = MemPager::new(params.page_size);
        let leaf_record_len = 8 + dim * 16;
        let regions: HashMap<u64, HyperRect> = db
            .objects
            .iter()
            .map(|o| (o.id, o.region.clone()))
            .collect();
        let mean_tree = build_mean_tree(
            regions.iter().map(|(&id, r)| (id, r.clone())),
            dim,
            params.rtree_fanout,
        );

        // Phase 1: UBR computation (embarrassingly parallel over objects).
        let delta = params.effective_delta();
        let compute_one = |o: &UncertainObject| -> (u64, HyperRect, SeStats) {
            if o.id == BUILD_POISON_ID.load(Ordering::Relaxed) {
                panic!("poisoned object {} reached a build worker", o.id);
            }
            let t_cset = Instant::now();
            let cset = choose_cset(o, params.cset, &mean_tree, &regions);
            let cset_time = t_cset.elapsed();
            let (ubr, mut st) = compute_ubr(o, &db.domain, &cset, delta, params.mmax);
            st.cset_time = cset_time;
            (o.id, ubr, st)
        };
        let mut se_total = SeStats::default();
        let mut ubr_list: Vec<(u64, HyperRect)> = Vec::with_capacity(db.len());
        if params.build_threads <= 1 {
            // The fail-point must fail the serial path too (same contract),
            // via the same capture as a worker thread.
            let objects = &db.objects;
            let batch = std::thread::scope(|scope| {
                scope
                    .spawn(|| objects.iter().map(compute_one).collect::<Vec<_>>())
                    .join()
            })
            .map_err(|p| crate::BuildError::WorkerPanicked {
                message: panic_message(&*p),
            })?;
            for (id, ubr, st) in batch {
                se_total.absorb(&st);
                ubr_list.push((id, ubr));
            }
        } else {
            // Work stealing: workers pull fixed-size object batches off a
            // shared cursor until the range is drained, so one expensive
            // object stalls a single batch, never a static 1/T chunk. Each
            // claimed batch is returned tagged with its index; the merge
            // scatters them back into object order, making the result —
            // and everything downstream of it — independent of scheduling.
            let n = db.len();
            let batches = n.div_ceil(BUILD_BATCH);
            let threads = params.build_threads.min(batches.max(1));
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            type Batch = Vec<(u64, HyperRect, SeStats)>;
            let worker_out: Vec<std::thread::Result<Vec<(usize, Batch)>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let cursor = &cursor;
                            let compute_one = &compute_one;
                            scope.spawn(move || {
                                let mut out: Vec<(usize, Batch)> = Vec::new();
                                loop {
                                    let start = cursor.fetch_add(BUILD_BATCH, Ordering::Relaxed);
                                    if start >= n {
                                        return out;
                                    }
                                    let end = (start + BUILD_BATCH).min(n);
                                    out.push((
                                        start / BUILD_BATCH,
                                        db.objects[start..end].iter().map(compute_one).collect(),
                                    ));
                                }
                            })
                        })
                        .collect();
                    // Join every worker before propagating any failure, so
                    // a panic cannot leave threads running detached.
                    handles
                        .into_iter()
                        .map(std::thread::ScopedJoinHandle::join)
                        .collect()
                });
            let mut merged: Vec<Option<Batch>> = (0..batches).map(|_| None).collect();
            let mut first_panic: Option<String> = None;
            for result in worker_out {
                match result {
                    Ok(claimed) => {
                        for (i, batch) in claimed {
                            debug_assert!(merged[i].is_none(), "batch {i} claimed twice");
                            merged[i] = Some(batch);
                        }
                    }
                    Err(payload) => {
                        first_panic.get_or_insert_with(|| panic_message(&*payload));
                    }
                }
            }
            if let Some(message) = first_panic {
                return Err(crate::BuildError::WorkerPanicked { message });
            }
            for batch in merged {
                for (id, ubr, st) in batch.expect("all batches claimed by drained workers") {
                    se_total.absorb(&st);
                    ubr_list.push((id, ubr));
                }
            }
        }

        // Phase 2: load the primary + secondary indexes from the completed
        // catalog. Both paths consume identical inputs in identical order:
        // secondary records in object order, octree records in ascending-id
        // order (the octree path must be deterministic — splits consult the
        // whole catalog, so the insertion sequence shapes the tree).
        let t_insert = Instant::now();
        let quantize = |ubr: HyperRect| -> HyperRect {
            match params.ubr_quantize_steps {
                None => ubr,
                Some(steps) => pv_geom::snap_outward(&ubr, &db.domain, steps),
            }
        };
        let objects: HashMap<u64, UncertainObject> =
            db.objects.iter().map(|o| (o.id, o.clone())).collect();
        let mut ubrs: HashMap<u64, HyperRect> = HashMap::with_capacity(db.len());
        let secondary_records: Vec<(u64, Vec<u8>)> = ubr_list
            .into_iter()
            .map(|(id, ubr)| {
                let ubr = quantize(ubr);
                let record =
                    encode_secondary(&ubr, &objects[&id], &db.domain, params.ubr_quantize_steps);
                ubrs.insert(id, ubr);
                (id, record)
            })
            .collect();
        let mut octree_items: Vec<(u64, HyperRect, Vec<u8>)> = ubrs
            .iter()
            .map(|(&id, ubr)| {
                (
                    id,
                    ubr.clone(),
                    encode_leaf_record(id, &objects[&id].region),
                )
            })
            .collect();
        octree_items.sort_unstable_by_key(|(id, _, _)| *id);

        let (octree, secondary) = if bulk {
            let items: Vec<(HyperRect, Vec<u8>)> = octree_items
                .into_iter()
                .map(|(_, ubr, rec)| (ubr, rec))
                .collect();
            let octree = Octree::bulk_load(
                pager.clone(),
                db.domain.clone(),
                params.mem_budget,
                leaf_record_len,
                &items,
            );
            let secondary = ExtHash::bulk_build(
                pager.clone(),
                secondary_records.iter().map(|(id, r)| (*id, r.as_slice())),
            );
            (octree, secondary)
        } else {
            let mut octree = Octree::new(
                pager.clone(),
                db.domain.clone(),
                params.mem_budget,
                leaf_record_len,
            );
            let mut secondary = ExtHash::new(pager.clone());
            for (id, record) in &secondary_records {
                secondary.put(*id, record);
            }
            let lookup = |i: u64| ubrs[&i].clone();
            for (_, ubr, record) in &octree_items {
                octree.insert(ubr, record, &lookup);
            }
            (octree, secondary)
        };

        let mut index = Self {
            params,
            domain: db.domain.clone(),
            dim,
            octree,
            secondary,
            pager,
            objects,
            regions,
            ubrs,
            mean_tree,
            build_stats: BuildStats::default(),
            stale: BTreeSet::new(),
        };
        index.build_stats = BuildStats {
            total_time: t_total.elapsed(),
            se: se_total,
            insert_time: t_insert.elapsed(),
            ubr_count: index.objects.len(),
        };
        Ok(index)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the index holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Domain covered.
    pub fn domain(&self) -> &HyperRect {
        &self.domain
    }

    /// Parameters used to build / maintain the index.
    pub fn params(&self) -> &PvParams {
        &self.params
    }

    /// Construction statistics of the initial build.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Reconfigures the update path: the `chooseCSet` strategy commit-time
    /// SE runs use and how many deferred UBR refreshes each commit pays.
    /// `budget = usize::MAX` with the build-grade strategy recovers the
    /// legacy eager behaviour (every affected neighbour re-tightened inside
    /// the commit); the defaults keep commits in the low-millisecond range.
    pub fn set_update_policy(&mut self, cset: CSetStrategy, budget: usize) {
        self.params.update_cset = cset;
        self.params.update_budget = budget;
    }

    /// Number of objects whose UBRs are queued for deferred re-tightening.
    /// Purely a freshness metric: queries are exact regardless of backlog.
    pub fn maintenance_backlog(&self) -> usize {
        self.stale.len()
    }

    /// Applies the optional §VIII compression: snap a UBR outward onto the
    /// configured grid (a no-op when compression is off). Enlargement keeps
    /// `B(o) ⊇ V(o)`, so Step 1 stays exact.
    fn maybe_quantize(&self, ubr: HyperRect) -> HyperRect {
        match self.params.ubr_quantize_steps {
            None => ubr,
            Some(steps) => pv_geom::snap_outward(&ubr, &self.domain, steps),
        }
    }

    /// The UBR of an object.
    pub fn ubr(&self, id: u64) -> Option<&HyperRect> {
        self.ubrs.get(&id)
    }

    /// The object catalog entry.
    pub fn object(&self, id: u64) -> Option<&UncertainObject> {
        self.objects.get(&id)
    }

    /// Every indexed object (arbitrary order).
    pub fn objects(&self) -> impl Iterator<Item = &UncertainObject> {
        self.objects.values()
    }

    /// Every indexed object id, ascending — the canonical fingerprint of an
    /// index state (the concurrency tests match pinned snapshots by it).
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.objects.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The shared simulated disk (I/O statistics).
    pub fn pager(&self) -> &MemPager {
        &self.pager
    }

    /// Primary-index shape statistics.
    pub fn octree_stats(&self) -> pv_octree::OctreeStats {
        self.octree.stats()
    }

    /// Secondary-index shape statistics.
    pub fn secondary_stats(&self) -> pv_exthash::ExtHashStats {
        self.secondary.stats()
    }

    /// Serialises the index into a single snapshot file at `path`; see
    /// [`crate::snapshot`] for the format. [`PvIndex::load`] restores it in
    /// O(file read) — no SE recomputation.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, crate::snapshot::pv_index_to_bytes(self))
    }

    /// Loads an index saved with [`PvIndex::save`].
    ///
    /// # Errors
    /// I/O errors pass through; a corrupt, truncated or newer-versioned
    /// snapshot yields an [`std::io::ErrorKind::InvalidData`] error wrapping
    /// the precise [`codec::DecodeError`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        crate::snapshot::pv_index_from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Recomputes and stores the UBR of `id` with the given SE bounds and
    /// candidate-set strategy. Returns its old and new UBRs.
    fn refresh_ubr(
        &mut self,
        id: u64,
        strategy: CSetStrategy,
        bounds: SeBounds,
        se_total: &mut SeStats,
    ) -> (HyperRect, HyperRect) {
        let o = self.objects[&id].clone();
        let t_cset = Instant::now();
        let cset = choose_cset(&o, strategy, &self.mean_tree, &self.regions);
        let cset_time = t_cset.elapsed();
        let (new_ubr, mut st) = compute_ubr_with_bounds(
            &o,
            &self.domain,
            &cset,
            self.params.effective_delta(),
            self.params.mmax,
            bounds,
        );
        st.cset_time = cset_time;
        se_total.absorb(&st);
        let new_ubr = self.maybe_quantize(new_ubr);
        let old_ubr = self.ubrs.insert(id, new_ubr.clone()).expect("known id");
        let record = encode_secondary(&new_ubr, &o, &self.domain, self.params.ubr_quantize_steps);
        self.secondary.put(id, &record);
        (old_ubr, new_ubr)
    }

    /// The set `A` of §VI-B step 2: ids found by a primary-index range
    /// query, minus those proven unaffected by Lemma 8 (with the erratum
    /// fix: overlapping uncertainty regions ⇒ *unaffected*).
    fn affected_candidates(&self, probe_ubr: &HyperRect, other: &UncertainObject) -> Vec<u64> {
        self.octree
            .range_query(probe_ubr)
            .iter()
            .map(|rec| decode_leaf_record(rec, self.dim))
            .filter(|(id, _)| *id != other.id)
            .filter(|(_, region)| !region.intersects(&other.region)) // Lemma 8(3)
            .filter(|(id, _)| {
                // Lemma 8(1)/(2) via the UBR proxy: disjoint bounding
                // rectangles certainly mean disjoint PV-cells.
                self.ubrs[id].intersects(probe_ubr)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Incrementally inserts a new object (§VI-B "Insertion", with the PR-6
    /// commit-path deferral).
    ///
    /// A new object can only *shrink* PV-cells (Lemma 9), so the UBRs of
    /// affected neighbours remain conservative as they stand — eager SE
    /// recomputation is pure tightness maintenance. The commit path
    /// therefore pays exactly one SE run (the new object's own UBR, with the
    /// leaner [`PvParams::update_cset`]) and queues the affected ids for
    /// deferred maintenance, instead of the paper's `1 + |A|` eager runs.
    ///
    /// # Errors
    /// [`DbError::DuplicateId`] if the id already exists,
    /// [`DbError::OutOfDomain`] if the region escapes the domain; the index
    /// is untouched on error. (These were assertions before PR 5; a
    /// serving system must reject bad requests as values.)
    pub fn insert(&mut self, o: UncertainObject) -> Result<UpdateStats, DbError> {
        if self.objects.contains_key(&o.id) {
            return Err(DbError::DuplicateId(o.id));
        }
        if !self.domain.contains_rect(&o.region) {
            return Err(DbError::OutOfDomain(o.id));
        }
        let t0 = Instant::now();
        let mut se_total = SeStats::default();

        // Step 0: register o' so SE runs against S' = S ∪ {o'}.
        self.mean_tree
            .insert(HyperRect::from_point(&o.region.center()), o.id);
        self.objects.insert(o.id, o.clone());
        self.regions.insert(o.id, o.region.clone());

        // Step 1: B(S', o') by a fresh SE run.
        let t_cset = Instant::now();
        let cset = choose_cset(&o, self.params.update_cset, &self.mean_tree, &self.regions);
        let cset_time = t_cset.elapsed();
        let (new_ubr, mut st) = compute_ubr(
            &o,
            &self.domain,
            &cset,
            self.params.effective_delta(),
            self.params.mmax,
        );
        st.cset_time = cset_time;
        se_total.absorb(&st);

        // Step 2: find objects that may be affected.
        let affected = self.affected_candidates(&new_ubr, &o);
        let scanned = affected.len();

        // Step 3, deferred: their UBRs stay sound (cells only shrink), so
        // queue the tightening instead of paying |A| SE runs here.
        self.stale.extend(affected.iter().copied());
        // The leaner commit-path C-set may leave o's own UBR tightenable too.
        self.stale.insert(o.id);

        // Step 4 (new object): register o' everywhere.
        let new_ubr = self.maybe_quantize(new_ubr);
        let record = encode_secondary(&new_ubr, &o, &self.domain, self.params.ubr_quantize_steps);
        self.secondary.put(o.id, &record);
        self.ubrs.insert(o.id, new_ubr.clone());
        let record = encode_leaf_record(o.id, &o.region);
        let ubrs = &self.ubrs;
        let lookup = move |i: u64| ubrs[&i].clone();
        self.octree.insert(&new_ubr, &record, &lookup);

        self.maintain(&mut se_total);

        Ok(UpdateStats {
            time: t0.elapsed(),
            scanned,
            affected: affected.len(),
            se: se_total,
        })
    }

    /// Incrementally removes an object (§VI-B "Deletion", with the PR-6
    /// commit-path deferral).
    ///
    /// Growing each affected UBR with SE on the commit path is what made
    /// deletions O(|A|) SE runs. A deletion admits a cheap sound bound
    /// instead: any point a neighbour `a` newly wins was previously a
    /// possible-NN location of the deleted `o'` (removing an object only
    /// raises the pruning distance τ at points where `o'` attained it, and
    /// there `distmin(o') ≤ distmax(o') = τ`), hence lies inside `B(S,o')`.
    /// So `V(S',a) ⊆ B(S,a) ∪ B(S,o')` and the rectangle union of the two
    /// old UBRs is a valid new bound, at the cost of a rectangle op instead
    /// of an SE run. The grown ids are queued for deferred maintenance to
    /// re-tighten.
    ///
    /// # Errors
    /// [`DbError::UnknownId`] if the id is not indexed (previously `None`).
    pub fn remove(&mut self, id: u64) -> Result<UpdateStats, DbError> {
        let o = self.objects.get(&id).ok_or(DbError::UnknownId(id))?.clone();
        let t0 = Instant::now();
        let mut se_total = SeStats::default();
        let old_ubr = self.ubrs[&id].clone();

        // Step 2: affected set from a range query with B(S, o').
        let affected = self.affected_candidates(&old_ubr, &o);
        let scanned = affected.len();

        // Step 4a: unregister o' everywhere, then update the catalogs so the
        // recomputations run against S' = S \ {o'}.
        self.octree.remove(&old_ubr, id);
        self.secondary.remove(id);
        self.ubrs.remove(&id);
        self.objects.remove(&id);
        self.regions.remove(&id);
        self.mean_tree
            .remove(&HyperRect::from_point(&o.region.center()), id);
        self.stale.remove(&id);

        // Step 3, deferred: every point a neighbour newly wins lies inside
        // B(S, o') — the deleted object was a possible NN there. So the
        // neighbour's *catalog* UBR grows by the sound rectangle union (a
        // bounding box, cheap, possibly loose), while its *leaf records*
        // are extended over B(S, o') only (`insert_covering` dedups), never
        // over the box. Registering under the box instead compounds across
        // deletion storms until every UBR covers the domain and octree
        // leaves split to max depth; keeping leaf coverage tight makes the
        // loose catalog box cost only Lemma-8 filter precision, which the
        // queued re-tightening recovers. The invariant is: an object's
        // records cover at least the leaves its PV-cell touches and at most
        // the leaves its catalog UBR touches.
        let mut leaf_records: Vec<Vec<u8>> = Vec::with_capacity(affected.len());
        for aid in &affected {
            let old = self.ubrs[aid].clone();
            let grown = self.maybe_quantize(old.union(&old_ubr));
            let other = self.objects[aid].clone();
            if grown != old {
                let record =
                    encode_secondary(&grown, &other, &self.domain, self.params.ubr_quantize_steps);
                self.secondary.put(*aid, &record);
                self.ubrs.insert(*aid, grown);
            }
            // Even when the box did not move (B(S, o') inside it), the
            // leaf coverage may not reach all of B(S, o') yet — extend it
            // unconditionally; the dedup scan makes re-covering a no-op.
            leaf_records.push(encode_leaf_record(*aid, &other.region));
            self.stale.insert(*aid);
        }
        // One batched traversal of the leaves under B(S, o') for the whole
        // affected set, instead of one tree walk per neighbour.
        let record_refs: Vec<&[u8]> = leaf_records.iter().map(Vec::as_slice).collect();
        let ubrs = &self.ubrs;
        let lookup = move |i: u64| ubrs[&i].clone();
        self.octree.insert_covering(&old_ubr, &record_refs, &lookup);

        self.maintain(&mut se_total);

        Ok(UpdateStats {
            time: t0.elapsed(),
            scanned,
            affected: affected.len(),
            se: se_total,
        })
    }

    /// Amortized tightness maintenance (PR 6): re-tightens up to
    /// [`PvParams::update_budget`] queued UBRs per commit with warm-started,
    /// build-grade SE runs. Draining the queue is never needed for
    /// correctness — every queued UBR is already conservative — it only
    /// recovers query-time pruning quality, so a commit touching k objects
    /// stays O(k·log n) index work instead of O(k) SE runs.
    fn maintain(&mut self, se_total: &mut SeStats) {
        for _ in 0..self.params.update_budget {
            let Some(id) = self.stale.pop_first() else {
                break;
            };
            if !self.objects.contains_key(&id) {
                continue; // deleted while queued
            }
            let old = self.ubrs[&id].clone();
            // The current (loose) UBR seeds the upper bound: h only ever
            // shrinks from a rectangle already proven conservative.
            let (_, tight) = self.refresh_ubr(
                id,
                self.params.update_cset,
                SeBounds::after_insertion(old.clone()),
                se_total,
            );
            self.octree.remove_delta(&old, &tight, id);
        }
    }

    /// Rebuilds the index from its current object catalog (the paper's
    /// "Rebuild" competitor for Figs. 10(h)/(i)).
    pub fn rebuild(&mut self) -> BuildStats {
        let db = UncertainDb::new(
            self.domain.clone(),
            self.objects.values().cloned().collect(),
        );
        let fresh = PvIndex::build(&db, self.params);
        let stats = fresh.build_stats.clone();
        *self = fresh;
        stats
    }

    /// Mean-tree leaf visits (construction-side I/O diagnostics).
    pub fn mean_tree_leaf_visits(&self) -> u64 {
        self.mean_tree.stats.leaf_visits.load(Ordering::Relaxed)
    }
}

impl Step1Engine for PvIndex {
    fn engine_name(&self) -> &'static str {
        "pv-index"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    /// PNNQ Step 1: descend to the leaf containing `q`, then prune with the
    /// min/max-distance filter (§VI-A "Query Evaluation").
    fn step1(&self, q: &Point) -> (Vec<u64>, Step1Stats) {
        let mut ids = Vec::new(); // pv-lint: allow(hot-path-no-alloc, reason = "allocating convenience tier of Step1Engine; hot callers use step1_into with reused buffers")
        let stats = self.step1_into(q, &mut ids, &mut FetchScratch::default());
        (ids, stats)
    }

    /// Allocation-free Step 1: streams the leaf records straight from the
    /// page chain, computing each candidate's `distmin²`/`distmax²` from the
    /// record bytes — no rectangle is ever materialised.
    fn step1_into(&self, q: &Point, ids: &mut Vec<u64>, scratch: &mut FetchScratch) -> Step1Stats {
        let t0 = Instant::now();
        let io0 = self.pager.stats().reads.load(Ordering::Relaxed);
        let FetchScratch { octree, cand, .. } = scratch;
        cand.clear();
        let dim = self.dim;
        self.octree.point_query_with(q, octree, |rec| {
            cand.push(leaf_record_dists_sq(rec, dim, q));
        });
        let tau_sq = cand
            .iter()
            .map(|&(_, _, maxd)| maxd)
            .fold(f64::INFINITY, f64::min);
        ids.clear();
        ids.extend(
            cand.iter()
                .filter(|&&(_, mind, _)| mind <= tau_sq)
                .map(|&(id, _, _)| id),
        );
        ids.sort_unstable();
        Step1Stats {
            time: t0.elapsed(),
            io_reads: self.pager.stats().reads.load(Ordering::Relaxed) - io0,
            candidates: cand.len(),
            answers: ids.len(),
        }
    }
}

impl ProbNnEngine for PvIndex {
    fn candidate_region(&self, id: u64) -> &HyperRect {
        // pv-lint: allow(hot-path-no-panic, reason = "id is a Step-1 answer drawn from this index's own catalog; a missing entry is index corruption and must fail loudly")
        &self.objects[&id].region
    }

    /// Fetches the uncertainty info from the secondary index (charges real
    /// page reads), then charges the pdf payload pages the instances would
    /// occupy on disk.
    fn fetch_candidate(&self, id: u64) -> (UncertainObject, u64) {
        let io0 = self.pager.stats().snapshot();
        let buf = self
            .secondary
            .get(id)
            .expect("step-1 answer must exist in the secondary index"); // pv-lint: allow(hot-path-no-panic, reason = "id is a Step-1 answer; absence from the secondary index is corruption and must fail loudly")
        let (_, obj) =
            decode_secondary(&buf, self.dim, &self.domain).expect("secondary record corrupted"); // pv-lint: allow(hot-path-no-panic, reason = "record bytes come from this index's own secondary; decode failure is corruption and must fail loudly")
        let io = self.pager.stats().snapshot().since(&io0).reads;
        let total = io + pdf_payload_pages(&obj, self.params.page_size);
        (obj, total)
    }

    /// The Step-2 hot path: copies the secondary record into the scratch
    /// buffer (its real page reads metered with a narrow per-fetch counter
    /// bracket, like [`PvIndex::fetch_candidate`]) and streams the instance
    /// distances out of the encoded bytes — no `UncertainObject`, no
    /// `HyperRect`, no `Point` is materialised. Returns the index reads
    /// plus the modelled pdf-payload pages.
    fn fetch_dists_sq(
        &self,
        id: u64,
        q: &Point,
        out: &mut Vec<f64>,
        scratch: &mut FetchScratch,
    ) -> u64 {
        let io0 = self.pager.stats().reads.load(Ordering::Relaxed);
        let found = self
            .secondary
            .get_into(id, &mut scratch.page, &mut scratch.record);
        assert!(found, "step-1 answer must exist in the secondary index");
        let io = self.pager.stats().reads.load(Ordering::Relaxed) - io0;
        let off = secondary_payload_offset(&scratch.record, self.dim)
            .expect("secondary record corrupted"); // pv-lint: allow(hot-path-no-panic, reason = "get_into just returned true, so the record was fetched from this index's own secondary; a malformed header is corruption and must fail loudly")
        let view = pv_uncertain::EncodedObject::parse(scratch.record.get(off..).unwrap_or_default())
            .expect("secondary record corrupted"); // pv-lint: allow(hot-path-no-panic, reason = "payload offset was just validated by secondary_payload_offset; a malformed payload is corruption and must fail loudly")
        view.dists_sq_into(q, &mut scratch.samples, out);
        io + payload_pages(view.n_samples(), self.dim, self.params.page_size)
    }
}

/// Copy-on-write support for the [`crate::db::Db`] facade.
///
/// [`WritableEngine::fork`] is *page-level copy-on-write* (since PR 6; it
/// used to round-trip the whole index through the snapshot codec, which made
/// every commit O(index)):
///
/// * the simulated disk is forked with [`MemPager::fork`] — page bytes stay
///   physically shared and are copied only when the writer overwrites them;
/// * the octree arena and the hash directory fork structurally
///   ([`Octree::fork`], [`ExtHash::fork`]), cloning along mutation paths
///   only;
/// * the in-memory catalogs (objects, regions, UBRs, mean tree) are cloned —
///   they are small (no sample data; pdfs are `(n, seed)` descriptors), so
///   this is microseconds, not the 0.4 s the codec round-trip cost.
///
/// The fork is observationally independent: no mutation on either side is
/// visible to the other, which `tests/cow_sharing.rs` proves over randomized
/// commit sequences against a `LinearScan` ground truth. Canonical
/// serialisation is unaffected — [`crate::snapshot::pv_index_to_bytes`]
/// dumps page *contents*, never sharing metadata.
impl WritableEngine for PvIndex {
    fn fork(&self) -> Self {
        let pager = self.pager.fork();
        Self {
            params: self.params,
            domain: self.domain.clone(),
            dim: self.dim,
            octree: self.octree.fork(pager.clone()),
            secondary: self.secondary.fork(pager.clone()),
            pager,
            objects: self.objects.clone(),
            regions: self.regions.clone(),
            ubrs: self.ubrs.clone(),
            mean_tree: self.mean_tree.clone(),
            build_stats: self.build_stats.clone(),
            stale: self.stale.clone(),
        }
    }

    fn apply_insert(&mut self, o: UncertainObject) -> Result<UpdateStats, DbError> {
        self.insert(o)
    }

    fn apply_remove(&mut self, id: u64) -> Result<UpdateStats, DbError> {
        self.remove(id)
    }

    fn apply_rebuild(&mut self) -> BuildStats {
        self.rebuild()
    }

    /// [`PvIndex::build`] already constructs a fully independent index from
    /// the catalog, so the successor needs no snapshot-codec fork first.
    fn rebuilt(&self) -> (Self, BuildStats) {
        let db = UncertainDb::new(
            self.domain.clone(),
            self.objects.values().cloned().collect(),
        );
        let fresh = PvIndex::build(&db, self.params);
        let stats = fresh.build_stats.clone();
        (fresh, stats)
    }
}

impl PersistentEngine for PvIndex {
    fn snapshot_bytes(&self) -> std::io::Result<Vec<u8>> {
        Ok(crate::snapshot::pv_index_to_bytes(self))
    }

    fn from_snapshot_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        crate::snapshot::pv_index_from_bytes(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;
    use crate::verify;
    use pv_workload::{queries, synthetic, SyntheticConfig};

    fn small_db(n: usize, dim: usize, seed: u64) -> UncertainDb {
        synthetic(&SyntheticConfig {
            n,
            dim,
            max_side: 200.0,
            samples: 16,
            seed,
        })
    }

    fn check_queries(index: &PvIndex, db_objects: &[UncertainObject], seeds: u64) {
        let qs = queries::uniform(index.domain(), 25, seeds);
        for q in qs {
            let (got, _) = index.step1(&q);
            let want = verify::possible_nn(db_objects.iter(), &q);
            assert_eq!(got, want, "q = {q:?}");
        }
    }

    #[test]
    fn step1_matches_naive_2d() {
        let db = small_db(300, 2, 1);
        let index = PvIndex::build(&db, PvParams::default());
        check_queries(&index, &db.objects, 11);
    }

    #[test]
    fn step1_matches_naive_3d() {
        let db = small_db(250, 3, 2);
        let index = PvIndex::build(&db, PvParams::default());
        check_queries(&index, &db.objects, 13);
    }

    #[test]
    fn step1_matches_naive_with_fs() {
        let db = small_db(300, 2, 3);
        let index = PvIndex::build(&db, PvParams::with_fs(40));
        check_queries(&index, &db.objects, 17);
    }

    #[test]
    fn full_query_probabilities_sum_to_one() {
        let db = small_db(200, 2, 4);
        let index = PvIndex::build(&db, PvParams::default());
        for q in queries::uniform(&db.domain, 10, 19) {
            let out = index.execute(&q, &QuerySpec::new()).unwrap();
            let total: f64 = out.answers.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-6, "sum {total}");
            assert!(out.stats.pc_io_reads > 0);
        }
    }

    #[test]
    fn parallel_build_equals_serial_build() {
        let db = small_db(150, 2, 5);
        let serial = PvIndex::build(&db, PvParams::default());
        let parallel = PvIndex::build(
            &db,
            PvParams {
                build_threads: 4,
                ..Default::default()
            },
        );
        for o in &db.objects {
            assert_eq!(
                serial.ubr(o.id).unwrap(),
                parallel.ubr(o.id).unwrap(),
                "UBR of {} differs between serial and parallel builds",
                o.id
            );
        }
    }

    #[test]
    fn insert_keeps_queries_exact() {
        let mut db = small_db(200, 2, 6);
        let mut index = PvIndex::build(&db, PvParams::default());
        let extra = small_db(20, 2, 777);
        for (i, mut o) in extra.objects.into_iter().enumerate() {
            o.id = 50_000 + i as u64;
            db.objects.push(o.clone());
            index.insert(o).unwrap();
        }
        check_queries(&index, &db.objects, 23);
    }

    #[test]
    fn remove_keeps_queries_exact() {
        let mut db = small_db(200, 2, 7);
        let mut index = PvIndex::build(&db, PvParams::default());
        for id in (0..200u64).step_by(7) {
            assert!(index.remove(id).is_ok());
        }
        db.objects.retain(|o| o.id % 7 != 0);
        check_queries(&index, &db.objects, 29);
    }

    #[test]
    fn mixed_updates_match_rebuild() {
        let mut db = small_db(150, 2, 8);
        let mut index = PvIndex::build(&db, PvParams::default());
        // interleave deletions and insertions
        for id in [3u64, 17, 42, 99, 140] {
            index.remove(id).unwrap();
            db.objects.retain(|o| o.id != id);
        }
        let extra = small_db(10, 2, 888);
        for (i, mut o) in extra.objects.into_iter().enumerate() {
            o.id = 60_000 + i as u64;
            db.objects.push(o.clone());
            index.insert(o).unwrap();
        }
        // compare against a fresh build
        let fresh = PvIndex::build(&db, PvParams::default());
        for q in queries::uniform(&db.domain, 25, 31) {
            let (a, _) = index.step1(&q);
            let (b, _) = fresh.step1(&q);
            assert_eq!(a, b, "incremental index diverged from rebuild");
        }
        check_queries(&index, &db.objects, 37);
    }

    #[test]
    fn remove_unknown_is_a_typed_error() {
        let db = small_db(50, 2, 9);
        let mut index = PvIndex::build(&db, PvParams::default());
        assert!(matches!(
            index.remove(123_456),
            Err(DbError::UnknownId(123_456))
        ));
        assert_eq!(index.len(), 50);
    }

    #[test]
    fn insert_duplicate_or_escaping_is_a_typed_error() {
        let db = small_db(50, 2, 10);
        let mut index = PvIndex::build(&db, PvParams::default());
        let dup = db.objects[0].clone();
        let dup_id = dup.id;
        assert!(matches!(index.insert(dup), Err(DbError::DuplicateId(id)) if id == dup_id));
        let mut escapee = db.objects[1].clone();
        escapee.id = 999_999;
        escapee.region = HyperRect::new(vec![-10.0, -10.0], vec![-5.0, -5.0]);
        assert!(matches!(
            index.insert(escapee),
            Err(DbError::OutOfDomain(999_999))
        ));
        assert_eq!(index.len(), 50, "failed inserts must not mutate");
    }

    #[test]
    fn ubrs_contain_uncertainty_regions() {
        let db = small_db(150, 3, 11);
        let index = PvIndex::build(&db, PvParams::default());
        for o in &db.objects {
            assert!(index.ubr(o.id).unwrap().contains_rect(&o.region));
        }
    }

    #[test]
    fn query_io_is_counted() {
        let db = small_db(400, 2, 12);
        let index = PvIndex::build(&db, PvParams::default());
        let q = queries::uniform(&db.domain, 1, 41)[0].clone();
        let (_, st) = index.step1(&q);
        assert!(st.io_reads >= 1, "leaf pages must be charged");
    }

    #[test]
    fn build_stats_are_populated() {
        let db = small_db(100, 2, 13);
        let index = PvIndex::build(&db, PvParams::default());
        let bs = index.build_stats();
        assert_eq!(bs.ubr_count, 100);
        assert!(bs.se.slab_tests > 0);
        assert!(bs.avg_cset_size() > 0.0);
        assert!(bs.total_time.as_nanos() > 0);
    }

    #[test]
    fn secondary_round_trip() {
        let db = small_db(60, 2, 14);
        let index = PvIndex::build(&db, PvParams::default());
        let o = &db.objects[5];
        let buf = index.secondary.get(o.id).unwrap();
        let (ubr, obj) = decode_secondary(&buf, 2, index.domain()).unwrap();
        assert_eq!(&ubr, index.ubr(o.id).unwrap());
        assert_eq!(&obj, o);
        // corruption is reported, not panicked on
        let mut bad = buf.clone();
        bad[0] = 0x7F;
        bad[1] = 0x7F;
        assert!(matches!(
            decode_secondary(&bad, 2, index.domain()),
            Err(codec::DecodeError::UnknownTag {
                context: "secondary record",
                ..
            })
        ));
        assert!(matches!(
            decode_secondary(&buf[..buf.len() - 4], 2, index.domain()),
            Err(codec::DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn quantized_ubrs_keep_queries_exact() {
        // §VIII compression extension: snapped-outward UBRs may admit more
        // candidates, but Step 1 must stay exact.
        let db = small_db(250, 2, 15);
        let index = PvIndex::build(
            &db,
            PvParams {
                ubr_quantize_steps: Some(4_096),
                ..Default::default()
            },
        );
        check_queries(&index, &db.objects, 43);
        // and the stored UBRs still contain the uncertainty regions
        for o in &db.objects {
            assert!(index.ubr(o.id).unwrap().contains_rect(&o.region));
        }
    }

    #[test]
    fn quantized_secondary_roundtrip_and_size() {
        let db = small_db(60, 3, 16);
        let plain = PvIndex::build(&db, PvParams::default());
        let packed = PvIndex::build(
            &db,
            PvParams {
                ubr_quantize_steps: Some(65_535),
                ..Default::default()
            },
        );
        let o = &db.objects[7];
        let buf = packed.secondary.get(o.id).unwrap();
        let (ubr, obj) = decode_secondary(&buf, 3, packed.domain()).unwrap();
        assert_eq!(&ubr, packed.ubr(o.id).unwrap());
        assert_eq!(&obj, o);
        // the quantized record is strictly smaller (48-byte corners → 14)
        let plain_buf = plain.secondary.get(o.id).unwrap();
        assert!(buf.len() < plain_buf.len());
        // enlargement only: the packed UBR contains the plain one
        assert!(packed
            .ubr(o.id)
            .unwrap()
            .contains_rect(plain.ubr(o.id).unwrap()));
    }

    #[test]
    fn quantized_updates_stay_exact() {
        let mut db = small_db(150, 2, 17);
        let mut index = PvIndex::build(
            &db,
            PvParams {
                ubr_quantize_steps: Some(4_096),
                ..Default::default()
            },
        );
        for id in (0..150u64).step_by(11) {
            index.remove(id).unwrap();
        }
        db.objects.retain(|o| o.id % 11 != 0);
        let extra = small_db(15, 2, 1717);
        for (i, mut o) in extra.objects.into_iter().enumerate() {
            o.id = 40_000 + i as u64;
            db.objects.push(o.clone());
            index.insert(o).unwrap();
        }
        check_queries(&index, &db.objects, 47);
    }
}
