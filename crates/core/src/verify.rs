//! Naive linear-scan ground truth for PNNQ Step 1.
//!
//! Under the region-based possible-worlds semantics used by the PV-cell
//! literature, object `o` has a non-zero chance of being the nearest
//! neighbor of `q` iff
//!
//! ```text
//! distmin(o, q) <= min over all o' in S of distmax(o', q)
//! ```
//!
//! (If the inequality holds, a world exists placing `o` at its closest point
//! and everyone else at their farthest.) The scan below is O(|S|) per query
//! and serves as the reference implementation the indexes are validated
//! against, as well as the recall oracle for the UV-index baseline.

use crate::db::{PersistentEngine, WritableEngine};
use crate::error::DbError;
use crate::prob::pdf_payload_pages;
use crate::query::{FetchScratch, ProbNnEngine, Step1Engine};
use crate::stats::{BuildStats, Step1Stats, UpdateStats};
use pv_geom::{max_dist_sq, min_dist_sq, HyperRect, Point};
use pv_storage::codec::{self, DecodeError};
use pv_storage::snapshot::{open_snapshot, SnapshotWriter};
use pv_uncertain::{UncertainDb, UncertainObject};
use std::collections::HashMap;
use std::time::Instant;

/// All objects with a non-zero probability of being `q`'s nearest neighbor.
/// The returned ids are sorted ascending for easy comparison.
pub fn possible_nn<'a>(
    objects: impl IntoIterator<Item = &'a UncertainObject>,
    q: &Point,
) -> Vec<u64> {
    let objects: Vec<&UncertainObject> = objects.into_iter().collect();
    let tau_sq = objects
        .iter()
        .map(|o| max_dist_sq(&o.region, q))
        .fold(f64::INFINITY, f64::min);
    let mut out: Vec<u64> = objects
        .iter()
        .filter(|o| min_dist_sq(&o.region, q) <= tau_sq)
        .map(|o| o.id)
        .collect();
    out.sort_unstable();
    out
}

/// Same as [`possible_nn`] with timing, for harness use.
pub fn possible_nn_timed<'a>(
    objects: impl IntoIterator<Item = &'a UncertainObject>,
    q: &Point,
) -> (Vec<u64>, Step1Stats) {
    let t0 = Instant::now();
    let ids = possible_nn(objects, q);
    let stats = Step1Stats {
        time: t0.elapsed(),
        io_reads: 0,
        candidates: ids.len(),
        answers: ids.len(),
    };
    (ids, stats)
}

/// The naive linear scan packaged as a query engine: the ground-truth
/// implementation of the [`Step1Engine`]/[`ProbNnEngine`] traits.
///
/// Step 1 is [`possible_nn`] (exact, zero index I/O); Step 2 runs through
/// the shared trait pipeline with the same pdf-payload I/O accounting as the
/// R-tree baseline, so every engine's answers — and the answer-semantics
/// laws (threshold subsets, top-k prefixes) — can be validated against it.
#[derive(Debug, Clone)]
pub struct LinearScan {
    objects: Vec<UncertainObject>,
    by_id: HashMap<u64, usize>,
    page_size: usize,
    domain: HyperRect,
}

impl LinearScan {
    /// Wraps a database with the default 4 KiB page size.
    pub fn new(db: &UncertainDb) -> Self {
        Self::with_page_size(db, 4096)
    }

    /// Wraps a database, charging pdf payloads at the given page size.
    pub fn with_page_size(db: &UncertainDb, page_size: usize) -> Self {
        let objects = db.objects.clone();
        let by_id = objects.iter().enumerate().map(|(i, o)| (o.id, i)).collect();
        Self {
            objects,
            by_id,
            page_size,
            domain: db.domain.clone(),
        }
    }

    /// Number of objects scanned per query.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The domain the wrapped database covers.
    pub fn domain(&self) -> &HyperRect {
        &self.domain
    }

    /// The scanned objects. Construction order until the first
    /// [`WritableEngine::apply_remove`], which swap-removes and therefore
    /// reorders; treat the order as arbitrary on a mutated scan.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    fn object(&self, id: u64) -> &UncertainObject {
        &self.objects[self.by_id[&id]]
    }
}

impl Step1Engine for LinearScan {
    fn engine_name(&self) -> &'static str {
        "linear-scan"
    }

    fn dim(&self) -> usize {
        self.domain.dim()
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn step1(&self, q: &Point) -> (Vec<u64>, Step1Stats) {
        possible_nn_timed(self.objects.iter(), q)
    }

    /// Allocation-free scan: same two passes as [`possible_nn`] (threshold
    /// fold, then filter), writing into the reused `ids` buffer.
    fn step1_into(&self, q: &Point, ids: &mut Vec<u64>, _scratch: &mut FetchScratch) -> Step1Stats {
        let t0 = Instant::now();
        let tau_sq = self
            .objects
            .iter()
            .map(|o| max_dist_sq(&o.region, q))
            .fold(f64::INFINITY, f64::min);
        ids.clear();
        ids.extend(
            self.objects
                .iter()
                .filter(|o| min_dist_sq(&o.region, q) <= tau_sq)
                .map(|o| o.id),
        );
        ids.sort_unstable();
        Step1Stats {
            time: t0.elapsed(),
            io_reads: 0,
            candidates: ids.len(),
            answers: ids.len(),
        }
    }
}

impl ProbNnEngine for LinearScan {
    fn candidate_region(&self, id: u64) -> &HyperRect {
        &self.object(id).region
    }

    fn fetch_candidate(&self, id: u64) -> (UncertainObject, u64) {
        let o = self.object(id).clone();
        let io = pdf_payload_pages(&o, self.page_size);
        (o, io)
    }

    /// Serves distances straight from the in-memory catalog — no clone.
    fn fetch_dists_sq(
        &self,
        id: u64,
        q: &Point,
        out: &mut Vec<f64>,
        scratch: &mut FetchScratch,
    ) -> u64 {
        let o = self.object(id);
        o.dists_sq_into(q, &mut scratch.samples, out);
        pdf_payload_pages(o, self.page_size)
    }
}

/// The scan has no index to maintain, so updates are trivial — which makes
/// it the ideal ground-truth engine for the [`crate::db`] concurrency
/// stress tests: every published snapshot can be re-derived exactly from
/// the operation prefix it reflects.
impl WritableEngine for LinearScan {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn apply_insert(&mut self, o: UncertainObject) -> Result<UpdateStats, DbError> {
        let t0 = Instant::now();
        if self.by_id.contains_key(&o.id) {
            return Err(DbError::DuplicateId(o.id));
        }
        if !self.domain.contains_rect(&o.region) {
            return Err(DbError::OutOfDomain(o.id));
        }
        self.by_id.insert(o.id, self.objects.len());
        self.objects.push(o);
        Ok(UpdateStats {
            time: t0.elapsed(),
            ..Default::default()
        })
    }

    fn apply_remove(&mut self, id: u64) -> Result<UpdateStats, DbError> {
        let t0 = Instant::now();
        let idx = *self.by_id.get(&id).ok_or(DbError::UnknownId(id))?;
        self.objects.swap_remove(idx);
        self.by_id.remove(&id);
        if idx < self.objects.len() {
            self.by_id.insert(self.objects[idx].id, idx);
        }
        Ok(UpdateStats {
            time: t0.elapsed(),
            ..Default::default()
        })
    }

    fn apply_rebuild(&mut self) -> BuildStats {
        let t0 = Instant::now();
        // Nothing derived to rebuild; re-densify the id map for parity with
        // the indexed engines' contract.
        self.by_id = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.id, i))
            .collect();
        BuildStats {
            total_time: t0.elapsed(),
            ubr_count: self.objects.len(),
            ..Default::default()
        }
    }
}

/// Snapshot envelope kind for a serialised [`LinearScan`].
const LINEAR_SCAN_KIND: [u8; 4] = *b"PVLS";
/// Format version of the [`LinearScan`] snapshot payload.
const LINEAR_SCAN_VERSION: u16 = 1;

/// The scan *is* its object catalog, so its snapshot is just that catalog
/// (ascending-id for deterministic bytes) plus the domain and page size —
/// which makes `LinearScan` a full [`PersistentEngine`] and therefore
/// usable as the ground-truth engine under
/// [`DurableDb`](crate::durable::DurableDb) in the crash-consistency
/// torture tests.
impl PersistentEngine for LinearScan {
    fn snapshot_bytes(&self) -> std::io::Result<Vec<u8>> {
        let mut w = SnapshotWriter::new(LINEAR_SCAN_KIND, LINEAR_SCAN_VERSION);
        let out = w.buf();
        codec::put_u32_len(out, self.domain.dim());
        crate::snapshot::put_rect(out, &self.domain);
        codec::put_u32_len(out, self.page_size);
        let mut ids: Vec<u64> = self.by_id.keys().copied().collect();
        ids.sort_unstable();
        codec::put_u64(out, ids.len() as u64);
        for id in &ids {
            codec::put_bytes(out, &self.object(*id).encode());
        }
        Ok(w.finish())
    }

    fn from_snapshot_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        let decode = |bytes: &[u8]| -> Result<Self, DecodeError> {
            let (mut r, _) = open_snapshot(
                bytes,
                LINEAR_SCAN_KIND,
                "linear-scan snapshot",
                LINEAR_SCAN_VERSION,
            )?;
            let dim = r.try_u32()? as usize;
            if dim == 0 || dim > 64 {
                return Err(DecodeError::Invalid {
                    context: "linear-scan snapshot dimensionality",
                });
            }
            let domain = crate::snapshot::try_rect(&mut r, dim)?;
            let page_size = r.try_u32()? as usize;
            let n = r.try_u64()? as usize;
            let mut objects = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let rec = r.try_bytes()?;
                objects.push(UncertainObject::try_decode(&rec)?);
            }
            let by_id = objects.iter().enumerate().map(|(i, o)| (o.id, i)).collect();
            Ok(Self {
                objects,
                by_id,
                page_size,
                domain,
            })
        };
        decode(bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;

    fn mk(id: u64, lo: &[f64], hi: &[f64]) -> UncertainObject {
        UncertainObject::uniform(id, HyperRect::new(lo.to_vec(), hi.to_vec()), 4)
    }

    #[test]
    fn obvious_nearest_wins_alone() {
        let objs = [
            mk(1, &[1.0, 1.0], &[2.0, 2.0]),
            mk(2, &[50.0, 50.0], &[51.0, 51.0]),
        ];
        let q = Point::new(vec![0.0, 0.0]);
        assert_eq!(possible_nn(objs.iter(), &q), vec![1]);
    }

    #[test]
    fn overlapping_regions_are_both_possible() {
        let objs = [
            mk(1, &[1.0, 0.0], &[4.0, 1.0]),
            mk(2, &[2.0, 0.0], &[5.0, 1.0]),
        ];
        let q = Point::new(vec![0.0, 0.5]);
        assert_eq!(possible_nn(objs.iter(), &q), vec![1, 2]);
    }

    #[test]
    fn the_minmax_object_is_always_possible() {
        // Whoever minimises distmax can always be the NN.
        let objs = [
            mk(1, &[1.0], &[9.0]), // wide region
            mk(2, &[4.0], &[5.0]), // small region with smallest maxdist
            mk(3, &[20.0], &[21.0]),
        ];
        let q = Point::new(vec![4.5]);
        let ids = possible_nn(objs.iter(), &q);
        assert!(ids.contains(&2));
        assert!(!ids.contains(&3));
    }

    #[test]
    fn query_inside_a_region_keeps_that_object() {
        let objs = [
            mk(1, &[0.0, 0.0], &[10.0, 10.0]),
            mk(2, &[4.0, 4.0], &[5.0, 5.0]),
        ];
        let q = Point::new(vec![4.5, 4.5]); // inside both
        let ids = possible_nn(objs.iter(), &q);
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn timed_variant_agrees() {
        let objs = [mk(1, &[0.0], &[1.0]), mk(2, &[5.0], &[6.0])];
        let q = Point::new(vec![0.5]);
        let (ids, stats) = possible_nn_timed(objs.iter(), &q);
        assert_eq!(ids, possible_nn(objs.iter(), &q));
        assert_eq!(stats.answers, ids.len());
    }

    #[test]
    fn linear_scan_engine_matches_the_free_function() {
        let domain = HyperRect::new(vec![0.0, 0.0], vec![100.0, 100.0]);
        let objs = vec![
            mk(1, &[1.0, 1.0], &[2.0, 2.0]),
            mk(2, &[3.0, 0.0], &[5.0, 2.0]),
            mk(3, &[50.0, 50.0], &[51.0, 51.0]),
        ];
        let db = UncertainDb::new(domain, objs.clone());
        let scan = LinearScan::new(&db);
        assert_eq!(scan.engine_name(), "linear-scan");
        assert_eq!(scan.len(), 3);
        let q = Point::new(vec![0.0, 0.0]);
        let (ids, stats) = scan.step1(&q);
        assert_eq!(ids, possible_nn(objs.iter(), &q));
        assert_eq!(stats.io_reads, 0, "the scan charges no index I/O");
        let out = scan.execute(&q, &QuerySpec::new()).unwrap();
        assert_eq!(out.candidates, ids);
        let total: f64 = out.answers.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // step 2 charges pdf payload pages like the R-tree baseline
        assert!(out.stats.pc_io_reads >= out.answers.len() as u64);
    }

    #[test]
    fn updates_keep_the_scan_exact() {
        let domain = HyperRect::new(vec![0.0, 0.0], vec![100.0, 100.0]);
        let db = UncertainDb::new(domain, vec![mk(1, &[1.0, 1.0], &[2.0, 2.0])]);
        let mut scan = LinearScan::new(&db);
        scan.apply_insert(mk(2, &[3.0, 3.0], &[4.0, 4.0])).unwrap();
        scan.apply_insert(mk(3, &[90.0, 90.0], &[91.0, 91.0]))
            .unwrap();
        assert!(matches!(
            scan.apply_insert(mk(2, &[5.0, 5.0], &[6.0, 6.0])),
            Err(DbError::DuplicateId(2))
        ));
        assert!(matches!(
            scan.apply_insert(mk(9, &[99.0, 99.0], &[101.0, 101.0])),
            Err(DbError::OutOfDomain(9))
        ));
        scan.apply_remove(1).unwrap();
        assert!(matches!(scan.apply_remove(1), Err(DbError::UnknownId(1))));
        let q = Point::new(vec![0.0, 0.0]);
        let (ids, _) = scan.step1(&q);
        assert_eq!(ids, possible_nn(scan.objects().iter(), &q));
        assert_eq!(scan.len(), 2);
        // fork is fully independent
        let fork = scan.fork();
        scan.apply_remove(2).unwrap();
        assert_eq!(fork.len(), 2);
        assert_eq!(scan.len(), 1);
    }
}
