//! Naive linear-scan ground truth for PNNQ Step 1.
//!
//! Under the region-based possible-worlds semantics used by the PV-cell
//! literature, object `o` has a non-zero chance of being the nearest
//! neighbor of `q` iff
//!
//! ```text
//! distmin(o, q) <= min over all o' in S of distmax(o', q)
//! ```
//!
//! (If the inequality holds, a world exists placing `o` at its closest point
//! and everyone else at their farthest.) The scan below is O(|S|) per query
//! and serves as the reference implementation the indexes are validated
//! against, as well as the recall oracle for the UV-index baseline.

use crate::stats::Step1Stats;
use pv_geom::{max_dist_sq, min_dist_sq, Point};
use pv_uncertain::UncertainObject;
use std::time::Instant;

/// All objects with a non-zero probability of being `q`'s nearest neighbor.
/// The returned ids are sorted ascending for easy comparison.
pub fn possible_nn<'a>(
    objects: impl IntoIterator<Item = &'a UncertainObject>,
    q: &Point,
) -> Vec<u64> {
    let objects: Vec<&UncertainObject> = objects.into_iter().collect();
    let tau_sq = objects
        .iter()
        .map(|o| max_dist_sq(&o.region, q))
        .fold(f64::INFINITY, f64::min);
    let mut out: Vec<u64> = objects
        .iter()
        .filter(|o| min_dist_sq(&o.region, q) <= tau_sq)
        .map(|o| o.id)
        .collect();
    out.sort_unstable();
    out
}

/// Same as [`possible_nn`] with timing, for harness use.
pub fn possible_nn_timed<'a>(
    objects: impl IntoIterator<Item = &'a UncertainObject>,
    q: &Point,
) -> (Vec<u64>, Step1Stats) {
    let t0 = Instant::now();
    let ids = possible_nn(objects, q);
    let stats = Step1Stats {
        time: t0.elapsed(),
        io_reads: 0,
        candidates: ids.len(),
        answers: ids.len(),
    };
    (ids, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_geom::HyperRect;

    fn mk(id: u64, lo: &[f64], hi: &[f64]) -> UncertainObject {
        UncertainObject::uniform(id, HyperRect::new(lo.to_vec(), hi.to_vec()), 4)
    }

    #[test]
    fn obvious_nearest_wins_alone() {
        let objs = [mk(1, &[1.0, 1.0], &[2.0, 2.0]),
            mk(2, &[50.0, 50.0], &[51.0, 51.0])];
        let q = Point::new(vec![0.0, 0.0]);
        assert_eq!(possible_nn(objs.iter(), &q), vec![1]);
    }

    #[test]
    fn overlapping_regions_are_both_possible() {
        let objs = [mk(1, &[1.0, 0.0], &[4.0, 1.0]),
            mk(2, &[2.0, 0.0], &[5.0, 1.0])];
        let q = Point::new(vec![0.0, 0.5]);
        assert_eq!(possible_nn(objs.iter(), &q), vec![1, 2]);
    }

    #[test]
    fn the_minmax_object_is_always_possible() {
        // Whoever minimises distmax can always be the NN.
        let objs = [
            mk(1, &[1.0], &[9.0]),  // wide region
            mk(2, &[4.0], &[5.0]),  // small region with smallest maxdist
            mk(3, &[20.0], &[21.0]),
        ];
        let q = Point::new(vec![4.5]);
        let ids = possible_nn(objs.iter(), &q);
        assert!(ids.contains(&2));
        assert!(!ids.contains(&3));
    }

    #[test]
    fn query_inside_a_region_keeps_that_object() {
        let objs = [mk(1, &[0.0, 0.0], &[10.0, 10.0]),
            mk(2, &[4.0, 4.0], &[5.0, 5.0])];
        let q = Point::new(vec![4.5, 4.5]); // inside both
        let ids = possible_nn(objs.iter(), &q);
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn timed_variant_agrees() {
        let objs = [mk(1, &[0.0], &[1.0]), mk(2, &[5.0], &[6.0])];
        let q = Point::new(vec![0.5]);
        let (ids, stats) = possible_nn_timed(objs.iter(), &q);
        assert_eq!(ids, possible_nn(objs.iter(), &q));
        assert_eq!(stats.answers, ids.len());
    }
}
