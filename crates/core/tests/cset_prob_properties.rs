//! Property tests for `chooseCSet` and the Step-2 probability module.

use proptest::prelude::*;
use pv_core::cset::{build_mean_tree, choose_cset};
use pv_core::params::CSetStrategy;
use pv_core::prob::qualification_probabilities;
use pv_geom::{HyperRect, Point};
use pv_uncertain::UncertainObject;
use std::collections::HashMap;

/// A random 2-D object set with ids 0..n.
fn arb_objects(n: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec(
        ((0.0f64..900.0, 0.0f64..900.0), (1.0f64..80.0, 1.0f64..80.0)),
        2..n,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y), (w, h)))| {
                UncertainObject::uniform(
                    i as u64,
                    HyperRect::new(vec![x, y], vec![(x + w).min(1000.0), (y + h).min(1000.0)]),
                    8,
                )
            })
            .collect()
    })
}

fn setup(objects: &[UncertainObject]) -> (HashMap<u64, HyperRect>, pv_rtree::RTree) {
    let regions: HashMap<u64, HyperRect> =
        objects.iter().map(|o| (o.id, o.region.clone())).collect();
    let tree = build_mean_tree(regions.iter().map(|(&id, r)| (id, r.clone())), 2, 8);
    (regions, tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy returns a valid C-set: no self-reference, no unknown
    /// ids, and (for ALL/IS) no candidate overlapping `u(o)`.
    #[test]
    fn cset_structural_invariants(objects in arb_objects(30)) {
        let (regions, tree) = setup(&objects);
        let o = &objects[0];
        for strategy in [
            CSetStrategy::All,
            CSetStrategy::Fixed { k: 10 },
            CSetStrategy::default(),
        ] {
            let cs = choose_cset(o, strategy, &tree, &regions);
            prop_assert!(!cs.ids.contains(&o.id), "{strategy:?} returned o itself");
            prop_assert_eq!(cs.ids.len(), cs.regions.len());
            for id in &cs.ids {
                prop_assert!(regions.contains_key(id));
            }
            if !matches!(strategy, CSetStrategy::Fixed { .. }) {
                for r in &cs.regions {
                    prop_assert!(
                        !r.intersects(&o.region),
                        "{strategy:?} kept an overlapping candidate"
                    );
                }
            }
        }
    }

    /// FS returns exactly min(k, |S|−1) candidates in mean-distance order.
    #[test]
    fn fs_cardinality_and_order(objects in arb_objects(25), k in 1usize..30) {
        let (regions, tree) = setup(&objects);
        let o = &objects[0];
        let cs = choose_cset(o, CSetStrategy::Fixed { k }, &tree, &regions);
        prop_assert_eq!(cs.ids.len(), k.min(objects.len() - 1));
        let mean = o.mean();
        for w in cs.ids.windows(2) {
            let d0 = regions[&w[0]].center().dist(&mean);
            let d1 = regions[&w[1]].center().dist(&mean);
            prop_assert!(d0 <= d1 + 1e-9);
        }
    }

    /// Probabilities over any candidate set are a sub-distribution, and over
    /// the full object set they sum to 1 (distances are almost surely
    /// tie-free for random float inputs).
    #[test]
    fn probabilities_form_distribution(
        objects in arb_objects(12),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
    ) {
        let q = Point::new(vec![qx, qy]);
        let refs: Vec<&UncertainObject> = objects.iter().collect();
        let probs = qualification_probabilities(&q, &refs);
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        prop_assert!(probs.iter().all(|&(_, p)| (0.0..=1.0 + 1e-12).contains(&p)));
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        // dropping a candidate can only redistribute mass upward for the rest
        let subset: Vec<&UncertainObject> = objects.iter().skip(1).collect();
        let sub_probs = qualification_probabilities(&q, &subset);
        for ((id_a, p_all), (id_b, p_sub)) in probs.iter().skip(1).zip(sub_probs.iter()) {
            prop_assert_eq!(id_a, id_b);
            prop_assert!(p_sub + 1e-12 >= *p_all,
                "removing a competitor reduced P({id_a}): {p_all} -> {p_sub}");
        }
    }
}
