//! Property tests pitting the merged-CDF sweep kernel against the retained
//! naive oracle (`qualification_from_sorted`), demanding **bitwise** equal
//! probabilities — the contract that lets the query driver swap kernels
//! without changing a single reported answer.
//!
//! The generators deliberately stress the hard cases: duplicate distances
//! within a candidate, exact ties across candidates, zero-probability
//! (dominated) rivals, empty instance lists and the single-candidate query.

use proptest::prelude::*;
use pv_core::prob::{
    qualification_from_sorted, qualification_probabilities, qualification_probabilities_sweep,
    qualification_sweep_into, ProbScratch,
};
use pv_core::query::{ProbNnEngine, QuerySpec};
use pv_core::verify::{possible_nn, LinearScan};
use pv_geom::{min_dist_sq, HyperRect, Point};
use pv_uncertain::{Pdf, UncertainDb, UncertainObject};
use std::sync::Arc;

/// Asserts both kernels produce bit-for-bit equal `(id, probability)` lists.
fn assert_bitwise_equal(naive: &[(u64, f64)], swept: &[(u64, f64)]) {
    assert_eq!(naive.len(), swept.len());
    for ((ia, pa), (ib, pb)) in naive.iter().zip(swept.iter()) {
        assert_eq!(ia, ib);
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "kernels disagree on P({ia}): naive {pa} vs sweep {pb}"
        );
    }
}

/// Sorted per-candidate distance lists drawn from a coarse grid, so exact
/// ties (within and across candidates) are common; empty lists model
/// candidates whose payload discretises to zero instances.
fn arb_sorted_lists() -> impl Strategy<Value = Vec<(u64, Vec<f64>)>> {
    prop::collection::vec(prop::collection::vec(0u8..12, 0..10), 1..8).prop_map(|lists| {
        lists
            .into_iter()
            .enumerate()
            .map(|(i, grid)| {
                let mut ds: Vec<f64> = grid.into_iter().map(|g| g as f64 * 0.25).collect();
                ds.sort_unstable_by(f64::total_cmp);
                (i as u64, ds)
            })
            .collect()
    })
}

/// A small database of explicit-instance objects on an integer grid in
/// `dim` dimensions, plus one far-away object that Step 2 must report with
/// probability zero (the "zero-probability rival" case).
fn arb_objects(dim: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0i8..8, dim), 1..8),
        1..6,
    )
    .prop_map(move |objs| {
        let mut out: Vec<UncertainObject> = objs
            .into_iter()
            .enumerate()
            .map(|(i, pts)| {
                let points: Vec<Point> = pts
                    .into_iter()
                    .map(|cs| Point::new(cs.into_iter().map(|c| c as f64).collect()))
                    .collect();
                let region = HyperRect::bounding_points(points.iter()).expect("non-empty");
                UncertainObject {
                    id: i as u64,
                    region,
                    pdf: Pdf::Explicit(Arc::new(points)),
                }
            })
            .collect();
        // A dominated rival: every instance far outside the grid.
        let far: Vec<Point> = (0..3)
            .map(|k| Point::new(vec![150.0 + k as f64; dim]))
            .collect();
        out.push(UncertainObject {
            id: 1000,
            region: HyperRect::bounding_points(far.iter()).expect("non-empty"),
            pdf: Pdf::Explicit(Arc::new(far)),
        });
        out
    })
}

/// The full naive Step-2 pipeline, replicated outside the driver: Step-1
/// ground truth, `(distmin², id)` candidate ordering, squared distances,
/// oracle kernel, probability-descending answer order.
fn oracle_pipeline(objs: &[UncertainObject], q: &Point) -> Vec<(u64, f64)> {
    let by_id = |id: u64| objs.iter().find(|o| o.id == id).expect("known id");
    let ids = possible_nn(objs.iter(), q);
    let mut order: Vec<(u64, f64)> = ids
        .iter()
        .map(|&id| (id, min_dist_sq(&by_id(id).region, q)))
        .collect();
    order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let sorted: Vec<(u64, Vec<f64>)> = order
        .iter()
        .map(|&(id, _)| {
            let mut ds: Vec<f64> = by_id(id).samples().iter().map(|s| s.dist_sq(q)).collect();
            ds.sort_unstable_by(f64::total_cmp);
            (id, ds)
        })
        .collect();
    let mut answers = qualification_from_sorted(&sorted);
    answers.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kernel-level law: on identical pre-sorted lists the sweep and the
    /// oracle agree bit for bit.
    #[test]
    fn sweep_is_bitwise_equal_to_oracle(lists in arb_sorted_lists()) {
        let naive = qualification_from_sorted(&lists);
        let mut dists = Vec::new();
        let mut spans = Vec::new();
        for (id, ds) in &lists {
            spans.push((*id, dists.len() as u32, ds.len() as u32));
            dists.extend_from_slice(ds);
        }
        let mut swept = Vec::new();
        qualification_sweep_into(&spans, &dists, &mut ProbScratch::default(), &mut swept);
        assert_bitwise_equal(&naive, &swept);
    }

    /// Database-level law in 2/3/4 dimensions: the convenience wrappers
    /// (which also exercise the decode-free distance path) agree bit for
    /// bit, and the dominated rival really has probability zero.
    #[test]
    fn wrappers_agree_on_random_databases(
        dim in 2usize..5,
        seed_objs in prop::collection::vec(prop::collection::vec(prop::collection::vec(0i8..8, 4), 1..8), 1..6),
        q_cell in prop::collection::vec(0i8..8, 4),
    ) {
        // Reuse the 4-d generator output, truncating coordinates to `dim`.
        let objs: Vec<UncertainObject> = seed_objs
            .iter()
            .enumerate()
            .map(|(i, pts)| {
                let points: Vec<Point> = pts
                    .iter()
                    .map(|cs| Point::new(cs.iter().take(dim).map(|&c| c as f64).collect()))
                    .collect();
                let region = HyperRect::bounding_points(points.iter()).expect("non-empty");
                UncertainObject { id: i as u64, region, pdf: Pdf::Explicit(Arc::new(points)) }
            })
            .collect();
        let q = Point::new(q_cell.iter().take(dim).map(|&c| c as f64).collect());
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let naive = qualification_probabilities(&q, &refs);
        let swept = qualification_probabilities_sweep(&q, &refs);
        assert_bitwise_equal(&naive, &swept);
    }

    /// Driver-level law: `LinearScan::execute` (squared-distance ordering,
    /// sweep kernel, scratch buffers) returns exactly the answers of the
    /// replicated naive pipeline — same probabilities, same order.
    #[test]
    fn driver_matches_naive_pipeline(dim in 2usize..5, objs4 in arb_objects(4), q_cell in prop::collection::vec(0i8..8, 4)) {
        // Project the 4-d generator output down to `dim`.
        let objs: Vec<UncertainObject> = objs4
            .iter()
            .map(|o| {
                let points: Vec<Point> = match &o.pdf {
                    Pdf::Explicit(pts) => pts
                        .iter()
                        .map(|p| Point::new(p.coords().iter().take(dim).copied().collect()))
                        .collect(),
                    _ => unreachable!("generator emits explicit pdfs"),
                };
                let region = HyperRect::bounding_points(points.iter()).expect("non-empty");
                UncertainObject { id: o.id, region, pdf: Pdf::Explicit(Arc::new(points)) }
            })
            .collect();
        let domain = HyperRect::cube(dim, -10.0, 400.0);
        let db = UncertainDb::new(domain, objs.clone());
        let scan = LinearScan::new(&db);
        let q = Point::new(q_cell.iter().take(dim).map(|&c| c as f64).collect());

        let got = scan.execute(&q, &QuerySpec::new()).expect("query");
        let want = oracle_pipeline(&objs, &q);
        assert_bitwise_equal(&want, &got.answers);

        // The far rival is a Step-1 candidate only if it minimises distmax
        // for no point here (it never does on this grid), so when present it
        // must carry exactly zero probability.
        if let Some(p) = got.probability_of(1000) {
            prop_assert_eq!(p, 0.0);
        }
    }

    /// Single-candidate degenerate case, all dimensions: probability is
    /// exactly 1 under both kernels.
    #[test]
    fn single_candidate_is_certain_in_all_dims(dim in 2usize..5, cell in prop::collection::vec(0i8..8, 4), n in 1u32..40) {
        let lo: Vec<f64> = cell.iter().take(dim).map(|&c| c as f64).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 2.0).collect();
        let o = UncertainObject::uniform(9, HyperRect::new(lo, hi), n);
        let q = Point::new(vec![0.0; dim]);
        let naive = qualification_probabilities(&q, &[&o]);
        let swept = qualification_probabilities_sweep(&q, &[&o]);
        prop_assert_eq!(naive.len(), 1);
        prop_assert_eq!(naive[0].0, 9u64);
        // n · (1/n) accumulated n times: exact only for power-of-two n,
        // within an ulp or two otherwise.
        prop_assert!((naive[0].1 - 1.0).abs() < 1e-12, "P = {}", naive[0].1);
        assert_bitwise_equal(&naive, &swept);
    }
}
