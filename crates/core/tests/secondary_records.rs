//! Property tests for the secondary-index record codec
//! (`encode_secondary`/`decode_secondary`), with emphasis on the quantized
//! tag-`1` path (§VIII compression): dims 2–4, degenerate (zero-extent)
//! UBRs, and corruption surfacing through the codec layer.

use proptest::prelude::*;
use pv_core::index::{decode_secondary, encode_secondary};
use pv_geom::{snap_outward, HyperRect};
use pv_storage::codec::DecodeError;
use pv_uncertain::UncertainObject;

const DOMAIN_SIDE: f64 = 1_000.0;

/// A random `(dim, ubr, object)` case: `dim` in 2–4, UBR sides degenerate
/// (zero extent) with probability 1/4, object region independent of the UBR.
fn arb_case() -> impl Strategy<Value = (usize, HyperRect, UncertainObject)> {
    (
        2usize..=4,
        prop::collection::vec((0.0f64..900.0, 0.1f64..90.0, 0u8..4), 4usize),
        prop::collection::vec((0.0f64..900.0, 0.1f64..90.0), 4usize),
        1u64..1_000_000,
        1u32..64,
    )
        .prop_map(|(dim, ubr_sides, reg_sides, id, samples)| {
            let lo: Vec<f64> = ubr_sides[..dim].iter().map(|&(l, _, _)| l).collect();
            let hi: Vec<f64> = ubr_sides[..dim]
                .iter()
                .map(|&(l, e, flag)| {
                    if flag == 0 {
                        l // degenerate side
                    } else {
                        (l + e).min(DOMAIN_SIDE)
                    }
                })
                .collect();
            let ubr = HyperRect::new(lo, hi);
            let rlo: Vec<f64> = reg_sides[..dim].iter().map(|&(l, _)| l).collect();
            let rhi: Vec<f64> = reg_sides[..dim]
                .iter()
                .map(|&(l, e)| (l + e).min(DOMAIN_SIDE))
                .collect();
            let o = UncertainObject::uniform(id, HyperRect::new(rlo, rhi), samples);
            (dim, ubr, o)
        })
}

fn domain(dim: usize) -> HyperRect {
    HyperRect::cube(dim, 0.0, DOMAIN_SIDE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tag 0 (raw corners) roundtrips exactly in every dimension.
    #[test]
    fn raw_records_roundtrip((dim, ubr, o) in arb_case()) {
        let dom = domain(dim);
        let buf = encode_secondary(&ubr, &o, &dom, None);
        let (back_ubr, back_o) = decode_secondary(&buf, dim, &dom).unwrap();
        prop_assert_eq!(back_ubr, ubr);
        prop_assert_eq!(back_o, o);
    }

    /// Tag 1 (grid-quantized corners): encoding a snapped-outward UBR
    /// roundtrips exactly, the snap only enlarges, and the object payload is
    /// untouched — for dims 2–4, degenerate sides included.
    #[test]
    fn quantized_records_roundtrip(
        (dim, ubr, o) in arb_case(),
        steps in prop::sample::select(vec![16u16, 256, 4_096, 65_535]),
    ) {
        let dom = domain(dim);
        let snapped = snap_outward(&ubr, &dom, steps);
        prop_assert!(snapped.contains_rect(&ubr), "snap must only enlarge");
        let buf = encode_secondary(&snapped, &o, &dom, Some(steps));
        let (back_ubr, back_o) = decode_secondary(&buf, dim, &dom).unwrap();
        prop_assert_eq!(&back_ubr, &snapped, "snapped UBRs roundtrip exactly");
        prop_assert_eq!(back_o, o.clone());
        // re-encoding the decoded rect is stable (idempotent snap)
        let buf2 = encode_secondary(&back_ubr, &o, &dom, Some(steps));
        prop_assert_eq!(buf, buf2);
    }

    /// The quantized record is strictly smaller than the raw one (2-byte
    /// cell indices instead of 8-byte floats per corner coordinate).
    #[test]
    fn quantized_records_are_smaller((dim, ubr, o) in arb_case()) {
        let dom = domain(dim);
        let raw = encode_secondary(&ubr, &o, &dom, None);
        let snapped = snap_outward(&ubr, &dom, 65_535);
        let packed = encode_secondary(&snapped, &o, &dom, Some(65_535));
        prop_assert!(packed.len() < raw.len());
    }

    /// Corrupting the record tag or truncating the buffer yields a decode
    /// error, never a panic.
    #[test]
    fn corruption_is_an_error_not_a_panic(
        (dim, ubr, o) in arb_case(),
        cut in 1usize..16,
        tag in 2u16..60_000,
    ) {
        let dom = domain(dim);
        let buf = encode_secondary(&ubr, &o, &dom, None);

        let mut bad_tag = buf.clone();
        bad_tag[..2].copy_from_slice(&tag.to_le_bytes());
        prop_assert_eq!(
            decode_secondary(&bad_tag, dim, &dom),
            Err(DecodeError::UnknownTag { context: "secondary record", tag })
        );

        let cut = cut.min(buf.len() - 1);
        let truncated = &buf[..buf.len() - cut];
        let is_truncated_err = matches!(
            decode_secondary(truncated, dim, &dom),
            Err(DecodeError::Truncated { .. })
        );
        prop_assert!(is_truncated_err, "expected a Truncated decode error");
    }
}
