//! SE algorithm edge cases beyond the in-module unit tests: degenerate
//! databases, extreme parameters, adversarial geometry.

use pv_core::cset::{build_mean_tree, choose_cset, CandidateSet};
use pv_core::params::CSetStrategy;
use pv_core::se::{compute_ubr, compute_ubr_with_bounds, SeBounds};
use pv_geom::HyperRect;
use pv_uncertain::UncertainObject;
use std::collections::HashMap;

fn mk(id: u64, lo: &[f64], hi: &[f64]) -> UncertainObject {
    UncertainObject::uniform(id, HyperRect::new(lo.to_vec(), hi.to_vec()), 4)
}

fn cset_of(objects: &[UncertainObject], o: &UncertainObject) -> CandidateSet {
    let regions: HashMap<u64, HyperRect> =
        objects.iter().map(|x| (x.id, x.region.clone())).collect();
    let tree = build_mean_tree(
        regions.iter().map(|(&id, r)| (id, r.clone())),
        o.region.dim(),
        8,
    );
    choose_cset(o, CSetStrategy::All, &tree, &regions)
}

#[test]
fn object_filling_the_whole_domain() {
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let big = mk(1, &[0.0, 0.0], &[100.0, 100.0]);
    let small = mk(2, &[40.0, 40.0], &[41.0, 41.0]);
    let objects = vec![big.clone(), small];
    let cs = cset_of(&objects, &big);
    // the small object overlaps `big`, so the cset is empty and the UBR is D
    let (ubr, _) = compute_ubr(&big, &domain, &cs, 1.0, 10);
    assert_eq!(ubr, domain);
}

#[test]
fn point_objects_reduce_to_voronoi() {
    // Degenerate (zero-extent) regions: the PV-cell is the classic Voronoi
    // cell; the UBR must tightly cover it.
    let domain = HyperRect::cube(1, 0.0, 100.0);
    let a = mk(1, &[20.0], &[20.0]);
    let b = mk(2, &[80.0], &[80.0]);
    let objects = vec![a.clone(), b];
    let cs = cset_of(&objects, &a);
    let (ubr, _) = compute_ubr(&a, &domain, &cs, 0.1, 10);
    // a's Voronoi cell is [0, 50]
    assert!(ubr.lo()[0] <= 0.0 + 1e-9);
    assert!((ubr.hi()[0] - 50.0).abs() < 1.0, "ubr = {ubr:?}");
}

#[test]
fn tiny_delta_converges_and_terminates() {
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let a = mk(1, &[10.0, 10.0], &[12.0, 12.0]);
    let b = mk(2, &[80.0, 80.0], &[82.0, 82.0]);
    let objects = vec![a.clone(), b];
    let cs = cset_of(&objects, &a);
    let (ubr, stats) = compute_ubr(&a, &domain, &cs, 1e-6, 32);
    assert!(ubr.contains_rect(&a.region));
    // log2(100 / 1e-6) ≈ 27 passes * 4 directions, plus slack
    assert!(stats.slab_tests < 4 * 40, "{}", stats.slab_tests);
}

#[test]
fn huge_delta_returns_domain_like_box() {
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let a = mk(1, &[10.0, 10.0], &[12.0, 12.0]);
    let b = mk(2, &[80.0, 80.0], &[82.0, 82.0]);
    let objects = vec![a.clone(), b];
    let cs = cset_of(&objects, &a);
    let (ubr, stats) = compute_ubr(&a, &domain, &cs, 1e9, 10);
    // Δ larger than the domain: the loop exits immediately
    assert_eq!(stats.slab_tests, 0);
    assert_eq!(ubr, domain);
}

#[test]
fn mmax_one_can_never_split() {
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let a = mk(1, &[10.0, 49.0], &[12.0, 51.0]);
    let b = mk(2, &[90.0, 49.0], &[92.0, 51.0]);
    let objects = vec![a.clone(), b];
    let cs = cset_of(&objects, &a);
    // budget 1 still lets single-candidate domination prune whole slabs
    let (ubr, _) = compute_ubr(&a, &domain, &cs, 1.0, 1);
    assert!(ubr.contains_rect(&a.region));
    assert!(ubr.volume() < domain.volume(), "some slab must be provable");
}

#[test]
fn empty_cset_with_bounds_returns_upper() {
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let a = mk(1, &[40.0, 40.0], &[45.0, 45.0]);
    let upper = HyperRect::new(vec![20.0, 20.0], vec![70.0, 70.0]);
    let cs = CandidateSet {
        ids: vec![],
        regions: vec![],
    };
    let (ubr, _) = compute_ubr_with_bounds(
        &a,
        &domain,
        &cs,
        1.0,
        10,
        SeBounds::after_insertion(upper.clone()),
    );
    assert_eq!(
        ubr, upper,
        "nothing can shrink below the seeded upper bound"
    );
}

#[test]
fn warm_lower_bound_larger_than_upper_is_clamped() {
    // Defensive path: a stale lower bound exceeding the upper seed must not
    // panic or produce an inverted rectangle.
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let a = mk(1, &[40.0, 40.0], &[45.0, 45.0]);
    let b = mk(2, &[80.0, 80.0], &[82.0, 82.0]);
    let objects = vec![a.clone(), b];
    let cs = cset_of(&objects, &a);
    let bounds = SeBounds {
        lower: Some(HyperRect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        upper: Some(HyperRect::new(vec![30.0, 30.0], vec![60.0, 60.0])),
    };
    let (ubr, _) = compute_ubr_with_bounds(&a, &domain, &cs, 1.0, 10, bounds);
    assert!(ubr.lo()[0] <= ubr.hi()[0]);
    assert!(ubr.contains_rect(&a.region));
}

#[test]
fn clustered_wall_blocks_one_side_only() {
    // A wall of objects east of `o`: the UBR must stay wide to the west
    // (unbounded by any candidate) and tight to the east.
    let domain = HyperRect::cube(2, 0.0, 1_000.0);
    let o = mk(0, &[480.0, 490.0], &[500.0, 510.0]);
    let mut objects = vec![o.clone()];
    for i in 0..10u64 {
        let y = 100.0 * i as f64;
        objects.push(mk(1 + i, &[600.0, y], &[620.0, y + 60.0]));
    }
    let cs = cset_of(&objects, &o);
    let (ubr, _) = compute_ubr(&o, &domain, &cs, 0.5, 20);
    assert!(ubr.lo()[0] <= 1.0, "west side unbounded: {ubr:?}");
    assert!(ubr.hi()[0] < 900.0, "east side must be cut: {ubr:?}");
}

#[test]
fn identical_regions_coexist() {
    // Multiple objects with identical uncertainty regions all keep the
    // whole-domain UBR w.r.t. each other (mutual overlap ⇒ no pruning),
    // but a third object east of them still prunes the east slab. (The
    // blocker sits at mid-height: a corner-placed blocker would leave the
    // axis extremes inside V(a) and the MBR would legitimately stay the
    // full domain.)
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let a = mk(1, &[10.0, 45.0], &[15.0, 55.0]);
    let b = mk(2, &[10.0, 45.0], &[15.0, 55.0]);
    let far = mk(3, &[80.0, 45.0], &[85.0, 55.0]);
    let objects = vec![a.clone(), b, far];
    let cs = cset_of(&objects, &a);
    assert_eq!(cs.len(), 1, "only the non-overlapping object remains");
    let (ubr, _) = compute_ubr(&a, &domain, &cs, 1.0, 10);
    assert!(
        ubr.hi()[0] < 99.0,
        "east slab behind the blocker must be cut: {ubr:?}"
    );
}

#[test]
fn five_dimensional_ubr_is_sound() {
    let domain = HyperRect::cube(5, 0.0, 100.0);
    let o = mk(0, &[10.0; 5], &[14.0; 5]);
    let other = mk(1, &[70.0; 5], &[74.0; 5]);
    let objects = vec![o.clone(), other.clone()];
    let cs = cset_of(&objects, &o);
    let (ubr, _) = compute_ubr(&o, &domain, &cs, 1.0, 40);
    assert!(ubr.contains_rect(&o.region));
    // sample points where o can be NN
    use pv_geom::{max_dist, min_dist, Point};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..500 {
        let p = Point::new((0..5).map(|_| rng.gen_range(0.0..100.0)).collect());
        let tau = objects
            .iter()
            .map(|x| max_dist(&x.region, &p))
            .fold(f64::INFINITY, f64::min);
        if min_dist(&o.region, &p) <= tau {
            assert!(ubr.contains_point(&p), "escaped at {p:?}");
        }
    }
}
