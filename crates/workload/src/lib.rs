//! # pv-workload — dataset and query generators for the evaluation
//!
//! Reimplements the workloads of §VII-A:
//!
//! * [`synthetic`]: the uniform workload the paper generated with the
//!   Theodoridis spatial-data generator — object means uniform in
//!   `[0, 10000]^d`, per-dimension uncertainty-region lengths uniform in
//!   `[1, |u(o)|]`, 500-instance discrete pdfs;
//! * [`realistic`]: seeded simulators standing in for the paper's real
//!   datasets (`roads`, `rrlines` from rtreeportal.org, `airports` from
//!   ourairports.com), which are not available offline. The simulators
//!   match the statistical knobs the experiments actually exploit —
//!   cardinality, dimensionality, spatial skew (cluster corridors / hubs)
//!   and uncertainty-region shapes (thin elongated 2-D rectangles for road
//!   segments; tiny boxes bounding a 10 m GPS error sphere for airports);
//! * [`queries`]: uniformly random PNNQ query points (the paper's workload),
//!   plus a data-skewed variant for ablations.
//!
//! Everything is deterministic given a seed.

#![deny(missing_docs)]

use pv_geom::{HyperRect, Point};
use pv_uncertain::{Pdf, UncertainDb, UncertainObject};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Side length of the paper's domain `D = [0, 10000]^d`.
pub const DOMAIN_SIDE: f64 = 10_000.0;

/// Configuration for the synthetic uniform workload (Table I defaults).
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// `|S|`: number of objects.
    pub n: usize,
    /// Dimensionality `d` (paper default 3).
    pub dim: usize,
    /// `|u(o)|`: maximum per-dimension uncertainty length (paper default 60;
    /// sweeps 20..100).
    pub max_side: f64,
    /// Instances per object (paper: 500).
    pub samples: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n: 10_000,
            dim: 3,
            max_side: 60.0,
            samples: 500,
            seed: 42,
        }
    }
}

/// Generates the synthetic uniform database of §VII-A.
pub fn synthetic(cfg: &SyntheticConfig) -> UncertainDb {
    let domain = HyperRect::cube(cfg.dim, 0.0, DOMAIN_SIDE);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let objects = (0..cfg.n)
        .map(|i| {
            let id = i as u64;
            // Side lengths uniform in [1, max_side] per dimension.
            let sides: Vec<f64> = (0..cfg.dim)
                .map(|_| rng.gen_range(1.0..=cfg.max_side.max(1.0)))
                .collect();
            // Mean uniform, region clamped inside the domain.
            let region = region_around_mean(&mut rng, cfg.dim, &sides);
            UncertainObject {
                id,
                region,
                pdf: Pdf::Uniform {
                    n: cfg.samples,
                    seed: cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                },
            }
        })
        .collect();
    UncertainDb::new(domain, objects)
}

fn region_around_mean(rng: &mut StdRng, dim: usize, sides: &[f64]) -> HyperRect {
    let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..DOMAIN_SIDE)).collect();
    let lo: Vec<f64> = (0..dim)
        .map(|j| (mean[j] - sides[j] / 2.0).clamp(0.0, DOMAIN_SIDE - sides[j]))
        .collect();
    let hi: Vec<f64> = (0..dim).map(|j| lo[j] + sides[j]).collect();
    HyperRect::new(lo, hi)
}

/// Simulated stand-ins for the paper's real datasets (see DESIGN.md §3 for
/// the substitution rationale).
pub mod realistic {
    use super::*;

    /// `roads`-like dataset: 2-D MBRs of road segments — thin, elongated
    /// rectangles chained along meandering road polylines.
    /// Paper cardinality: 30k.
    pub fn roads(n: usize, seed: u64) -> UncertainDb {
        corridor_segments(n, seed, (n / 150).max(6), 1.5, (20.0, 220.0), (1.0, 8.0))
    }

    /// `rrlines`-like dataset: 2-D MBRs of railroad lines — longer and
    /// straighter segments on fewer polylines. Paper cardinality: 36k.
    pub fn rrlines(n: usize, seed: u64) -> UncertainDb {
        corridor_segments(n, seed, (n / 400).max(3), 0.6, (80.0, 500.0), (1.0, 5.0))
    }

    /// `airports`-like dataset: 3-D coordinates (lat, lon, altitude mapped
    /// to the domain) with a 10 m-radius GPS error sphere bounded by its
    /// MBR; positions cluster around hub regions. The pdf is the clipped
    /// Gaussian the paper uses, discretised to 500 samples.
    /// Paper cardinality: 20k.
    pub fn airports(n: usize, seed: u64) -> UncertainDb {
        let dim = 3;
        let domain = HyperRect::cube(dim, 0.0, DOMAIN_SIDE);
        let mut rng = StdRng::seed_from_u64(seed);
        // Hub centres: a few dozen metro areas.
        let hubs: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                vec![
                    rng.gen_range(500.0..DOMAIN_SIDE - 500.0),
                    rng.gen_range(500.0..DOMAIN_SIDE - 500.0),
                    rng.gen_range(0.0..1500.0), // altitude band
                ]
            })
            .collect();
        // 10 m radius on a ~4000 km extent mapped to 10^4 units → ~0.025
        // domain units.
        let gps_radius = 10.0 * DOMAIN_SIDE / 4.0e6;
        let objects = (0..n)
            .map(|i| {
                let id = i as u64;
                let hub = &hubs[rng.gen_range(0..hubs.len())];
                let spread = if rng.gen_bool(0.8) { 300.0 } else { 2000.0 };
                let center: Vec<f64> = (0..dim)
                    .map(|j| {
                        (hub[j] + spread * super::gauss(&mut rng))
                            .clamp(gps_radius, DOMAIN_SIDE - gps_radius)
                    })
                    .collect();
                let lo: Vec<f64> = center.iter().map(|c| c - gps_radius).collect();
                let hi: Vec<f64> = center.iter().map(|c| c + gps_radius).collect();
                UncertainObject {
                    id,
                    region: HyperRect::new(lo, hi),
                    pdf: Pdf::Gaussian {
                        sigma: gps_radius / 2.0,
                        n: 500,
                        seed: seed ^ id.wrapping_mul(0xD6E8_FEB8_6659_FD93),
                    },
                }
            })
            .collect();
        UncertainDb::new(domain, objects)
    }

    /// Shared generator: `n` segment MBRs along wandering polyline
    /// corridors. Segments are chained **end-to-end** along each corridor —
    /// like real road/rail polylines, where consecutive segment MBRs touch
    /// at their endpoints but do not stack on top of each other (stacking
    /// would create pathological overlap densities no real dataset has).
    /// Each segment has a length from `len_range`, a width from
    /// `width_range`, and the corridor heading drifts as it walks.
    fn corridor_segments(
        n: usize,
        seed: u64,
        n_corridors: usize,
        heading_drift: f64,
        len_range: (f64, f64),
        width_range: (f64, f64),
    ) -> UncertainDb {
        let dim = 2;
        let domain = HyperRect::cube(dim, 0.0, DOMAIN_SIDE);
        let mut rng = StdRng::seed_from_u64(seed);
        // Walker state per corridor: position + heading.
        let mut walkers: Vec<(f64, f64, f64)> = (0..n_corridors.max(1))
            .map(|_| {
                (
                    rng.gen_range(0.05 * DOMAIN_SIDE..0.95 * DOMAIN_SIDE),
                    rng.gen_range(0.05 * DOMAIN_SIDE..0.95 * DOMAIN_SIDE),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                )
            })
            .collect();
        let objects = (0..n)
            .map(|i| {
                let id = i as u64;
                let w = id as usize % walkers.len();
                let (ref mut x, ref mut y, ref mut heading) = walkers[w];
                // The corridor meanders: small heading drift per segment,
                // occasional junctions with a sharp turn.
                *heading += heading_drift * super::gauss(&mut rng) / 10.0;
                if rng.gen_bool(0.03) {
                    *heading += rng.gen_range(-1.2..1.2);
                }
                let len = rng.gen_range(len_range.0..len_range.1);
                let width = rng.gen_range(width_range.0..width_range.1);
                let (sx, sy) = (*x, *y);
                let mut ex = sx + len * heading.cos();
                let mut ey = sy + len * heading.sin();
                // Bounce off the domain walls.
                if !(0.0..=DOMAIN_SIDE).contains(&ex) || !(0.0..=DOMAIN_SIDE).contains(&ey) {
                    *heading += std::f64::consts::FRAC_PI_2 * 1.1;
                    ex = (sx + len * heading.cos()).clamp(0.0, DOMAIN_SIDE);
                    ey = (sy + len * heading.sin()).clamp(0.0, DOMAIN_SIDE);
                }
                *x = ex;
                *y = ey;
                let lo = vec![
                    (sx.min(ex) - width / 2.0).max(0.0),
                    (sy.min(ey) - width / 2.0).max(0.0),
                ];
                let hi = vec![
                    (sx.max(ex) + width / 2.0).min(DOMAIN_SIDE).max(lo[0]),
                    (sy.max(ey) + width / 2.0).min(DOMAIN_SIDE).max(lo[1]),
                ];
                UncertainObject {
                    id,
                    region: HyperRect::new(lo, hi),
                    pdf: Pdf::Uniform {
                        n: 500,
                        seed: seed ^ id.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
                    },
                }
            })
            .collect();
        UncertainDb::new(domain, objects)
    }
}

/// One standard-normal variate (Box–Muller; `rand_distr` is not vendored).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Query workloads.
pub mod queries {
    use super::*;

    /// `m` query points uniform in the domain (the paper's PNNQ workload:
    /// query points are selected uniformly at random from `D`).
    pub fn uniform(domain: &HyperRect, m: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                Point::new(
                    (0..domain.dim())
                        .map(|j| rng.gen_range(domain.lo()[j]..=domain.hi()[j]))
                        .collect(),
                )
            })
            .collect()
    }

    /// `m` query points placed near data objects (ablation workload:
    /// data-skewed queries stress dense PV-cell areas).
    pub fn data_skewed(db: &UncertainDb, m: usize, spread: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                let o = &db.objects[rng.gen_range(0..db.objects.len())];
                let c = o.region.center();
                Point::new(
                    (0..db.dim())
                        .map(|j| {
                            (c[j] + spread * super::gauss(&mut rng))
                                .clamp(db.domain.lo()[j], db.domain.hi()[j])
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_respects_config() {
        let cfg = SyntheticConfig {
            n: 500,
            dim: 3,
            max_side: 80.0,
            samples: 100,
            seed: 7,
        };
        let db = synthetic(&cfg);
        assert_eq!(db.len(), 500);
        assert_eq!(db.dim(), 3);
        for o in &db.objects {
            assert!(db.domain.contains_rect(&o.region));
            for j in 0..3 {
                let side = o.region.extent(j);
                assert!((1.0..=80.0).contains(&side), "side {side}");
            }
            assert_eq!(o.pdf.n_samples(), 100);
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        let cfg = SyntheticConfig::default();
        let small = SyntheticConfig { n: 50, ..cfg };
        let a = synthetic(&small);
        let b = synthetic(&small);
        assert_eq!(a.objects, b.objects);
        let c = synthetic(&SyntheticConfig { seed: 43, ..small });
        assert_ne!(a.objects, c.objects);
    }

    #[test]
    fn synthetic_means_cover_the_domain() {
        let db = synthetic(&SyntheticConfig {
            n: 2000,
            dim: 2,
            ..Default::default()
        });
        // crude uniformity check: each quadrant holds 15-35% of objects
        let mid = DOMAIN_SIDE / 2.0;
        let mut quad = [0usize; 4];
        for o in &db.objects {
            let c = o.region.center();
            let q = (c[0] >= mid) as usize + 2 * (c[1] >= mid) as usize;
            quad[q] += 1;
        }
        for q in quad {
            let frac = q as f64 / 2000.0;
            assert!((0.15..0.35).contains(&frac), "quadrant fraction {frac}");
        }
    }

    #[test]
    fn roads_are_thin_and_clustered() {
        let db = realistic::roads(1000, 3);
        assert_eq!(db.dim(), 2);
        assert_eq!(db.len(), 1000);
        // segments must exhibit high aspect ratio on average
        let mut ratio_sum = 0.0;
        for o in &db.objects {
            let (a, b) = (o.region.extent(0), o.region.extent(1));
            let (long, short) = if a > b { (a, b) } else { (b, a) };
            ratio_sum += long / short.max(1e-9);
        }
        assert!(ratio_sum / 1000.0 > 3.0, "roads should be elongated");
    }

    #[test]
    fn rrlines_longer_than_roads() {
        let roads = realistic::roads(800, 5);
        let rr = realistic::rrlines(800, 5);
        let avg = |db: &UncertainDb| {
            db.objects
                .iter()
                .map(|o| o.region.extent(0).max(o.region.extent(1)))
                .sum::<f64>()
                / db.len() as f64
        };
        assert!(avg(&rr) > avg(&roads), "rail segments should be longer");
    }

    #[test]
    fn airports_are_tiny_3d_boxes() {
        let db = realistic::airports(500, 11);
        assert_eq!(db.dim(), 3);
        for o in &db.objects {
            for j in 0..3 {
                assert!(o.region.extent(j) < 1.0, "GPS boxes must be tiny");
            }
            assert!(matches!(o.pdf, Pdf::Gaussian { .. }));
        }
    }

    #[test]
    fn airports_are_clustered() {
        // Hub clustering ⇒ nearest-neighbor distances far below uniform.
        let db = realistic::airports(1500, 13);
        let uniform_db = synthetic(&SyntheticConfig {
            n: 1500,
            dim: 3,
            max_side: 1.0,
            samples: 8,
            seed: 13,
        });
        let mean_nn = |db: &UncertainDb| {
            let centers: Vec<Point> = db.objects.iter().map(|o| o.region.center()).collect();
            let mut total = 0.0;
            for (i, c) in centers.iter().enumerate().take(200) {
                let mut best = f64::INFINITY;
                for (j, other) in centers.iter().enumerate() {
                    if i != j {
                        best = best.min(c.dist_sq(other));
                    }
                }
                total += best.sqrt();
            }
            total / 200.0
        };
        assert!(mean_nn(&db) < mean_nn(&uniform_db) * 0.8);
    }

    #[test]
    fn query_workloads() {
        let db = synthetic(&SyntheticConfig {
            n: 100,
            dim: 2,
            ..Default::default()
        });
        let qs = queries::uniform(&db.domain, 64, 1);
        assert_eq!(qs.len(), 64);
        assert!(qs.iter().all(|q| db.domain.contains_point(q)));
        assert_eq!(qs, queries::uniform(&db.domain, 64, 1));
        let skewed = queries::data_skewed(&db, 64, 50.0, 2);
        assert_eq!(skewed.len(), 64);
        assert!(skewed.iter().all(|q| db.domain.contains_point(q)));
    }
}
