//! Criterion bench: batched PNNQ execution through the unified engine API —
//! sequential vs parallel `query_batch` on the small preset, the scaling
//! knob behind the roadmap's batched-serving goal.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_bench::{Ctx, Preset};
use pv_core::baseline::RTreeBaseline;
use pv_core::{ProbNnEngine, PvIndex, QuerySpec};
use pv_workload::queries;

fn bench_query_batch(c: &mut Criterion) {
    let ctx = Ctx::new(Preset::Small);
    let mut g = c.benchmark_group("query_batch");
    let db = ctx.synthetic_db(4_000, 3, 60.0, 29);
    let params = ctx.pv_params();
    let index = PvIndex::build(&db, params);
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
    let qs = queries::uniform(&db.domain, 128, 11);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    for (label, threads) in [("seq", 1usize), ("par", cores)] {
        let spec = QuerySpec::new().with_top_k(5).with_batch_threads(threads);
        g.bench_with_input(BenchmarkId::new("pv_index", label), &threads, |b, _| {
            b.iter(|| black_box(index.query_batch(&qs, &spec)))
        });
        g.bench_with_input(BenchmarkId::new("rtree", label), &threads, |b, _| {
            b.iter(|| black_box(baseline.query_batch(&qs, &spec)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_query_batch
);
criterion_main!(benches);
