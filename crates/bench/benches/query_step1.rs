//! Criterion bench: PNNQ Step 1 (object retrieval) — PV-index vs R-tree,
//! the comparison behind Figs. 9(a), 9(c), 9(e)–(g).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_bench::{Ctx, Preset};
use pv_core::baseline::RTreeBaseline;
use pv_core::{PvIndex, Step1Engine};
use pv_workload::queries;

fn bench_step1(c: &mut Criterion) {
    let ctx = Ctx::new(Preset::Tiny);
    let mut g = c.benchmark_group("query_step1");
    for dim in [2usize, 3, 4] {
        let db = ctx.synthetic_db(2_500, dim, 60.0, 17);
        let params = ctx.pv_params();
        let index = PvIndex::build(&db, params);
        let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
        let qs = queries::uniform(&db.domain, 64, 3);
        g.bench_with_input(BenchmarkId::new("pv_index", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i = i.wrapping_add(1);
                black_box(index.step1(q))
            })
        });
        g.bench_with_input(BenchmarkId::new("rtree", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i = i.wrapping_add(1);
                black_box(baseline.step1(q))
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_step1
);
criterion_main!(benches);
