//! Criterion bench: cold `PvIndex::build` vs snapshot decode (`load`) at the
//! default workload size, plus snapshot encode (`save`) for completeness.
//! The roadmap's warm-restart story rests on load being far cheaper than
//! build — the acceptance bar is at least 5×; in practice it is orders of
//! magnitude.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::{Ctx, Preset};
use pv_core::snapshot::{pv_index_from_bytes, pv_index_to_bytes};
use pv_core::PvIndex;

fn bench_load_vs_build(c: &mut Criterion) {
    let ctx = Ctx::new(Preset::Small);
    let mut g = c.benchmark_group("load_vs_build");
    let db = ctx.synthetic_db(ctx.preset.s_default(), 2, 60.0, 37);
    let params = ctx.pv_params();
    let index = PvIndex::build(&db, params);
    let bytes = pv_index_to_bytes(&index);

    g.sample_size(10);
    g.bench_function("build", |b| {
        b.iter(|| black_box(PvIndex::build(&db, params)))
    });
    g.bench_function("save", |b| b.iter(|| black_box(pv_index_to_bytes(&index))));
    g.bench_function("load", |b| {
        b.iter(|| black_box(pv_index_from_bytes(&bytes).expect("valid snapshot")))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_load_vs_build
);
criterion_main!(benches);
