//! Criterion bench: full PNNQ evaluation (Step 1 + Step 2) — the end-to-end
//! comparison behind Figs. 9(b), 9(d), 9(h).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_bench::{Ctx, Preset};
use pv_core::baseline::RTreeBaseline;
use pv_core::{ProbNnEngine, PvIndex, QuerySpec};
use pv_workload::{queries, realistic};

fn bench_full_query(c: &mut Criterion) {
    let ctx = Ctx::new(Preset::Tiny);
    let mut g = c.benchmark_group("pnnq_full");

    // |u(o)| sweep (Fig. 9(d) shape).
    for u in [20.0f64, 60.0, 100.0] {
        let db = ctx.synthetic_db(2_000, 3, u, 19);
        let params = ctx.pv_params();
        let index = PvIndex::build(&db, params);
        let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
        let qs = queries::uniform(&db.domain, 64, 5);
        g.bench_with_input(BenchmarkId::new("pv_u", u as u64), &u, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i = i.wrapping_add(1);
                black_box(index.execute(q, &QuerySpec::new()))
            })
        });
        g.bench_with_input(BenchmarkId::new("rtree_u", u as u64), &u, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i = i.wrapping_add(1);
                black_box(baseline.execute(q, &QuerySpec::new()))
            })
        });
    }

    // Real-dataset shape (Fig. 9(h)).
    let db = realistic::airports(1_000, 23);
    let params = ctx.pv_params();
    let index = PvIndex::build(&db, params);
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
    let qs = queries::data_skewed(&db, 64, 500.0, 7);
    g.bench_function("pv_airports", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &qs[i % qs.len()];
            i = i.wrapping_add(1);
            black_box(index.execute(q, &QuerySpec::new()))
        })
    });
    g.bench_function("rtree_airports", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &qs[i % qs.len()];
            i = i.wrapping_add(1);
            black_box(baseline.execute(q, &QuerySpec::new()))
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_full_query
);
criterion_main!(benches);
