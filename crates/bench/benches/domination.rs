//! Criterion micro-benches for the geometry kernel — the inner loop behind
//! every SE run and therefore behind every construction figure (Fig. 10).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_geom::{dominates, max_dist_sq, min_dist_sq, region_fully_dominated, HyperRect, Point};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn rand_rect(rng: &mut StdRng, dim: usize, max_side: f64) -> HyperRect {
    let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..9_000.0)).collect();
    let hi: Vec<f64> = lo
        .iter()
        .map(|l| l + rng.gen_range(1.0..max_side))
        .collect();
    HyperRect::new(lo, hi)
}

fn bench_distances(c: &mut Criterion) {
    let mut g = c.benchmark_group("distances");
    for dim in [2usize, 3, 5] {
        let mut rng = StdRng::seed_from_u64(1);
        let rects: Vec<HyperRect> = (0..256).map(|_| rand_rect(&mut rng, dim, 100.0)).collect();
        let points: Vec<Point> = (0..256)
            .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..10_000.0)).collect()))
            .collect();
        g.bench_with_input(BenchmarkId::new("min_max_dist_sq", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let r = &rects[i % rects.len()];
                let p = &points[i % points.len()];
                i = i.wrapping_add(1);
                black_box(min_dist_sq(r, p) + max_dist_sq(r, p))
            })
        });
    }
    g.finish();
}

fn bench_dominates(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_domination");
    for dim in [2usize, 3, 5] {
        let mut rng = StdRng::seed_from_u64(2);
        let triples: Vec<(HyperRect, HyperRect, HyperRect)> = (0..256)
            .map(|_| {
                (
                    rand_rect(&mut rng, dim, 60.0),
                    rand_rect(&mut rng, dim, 60.0),
                    rand_rect(&mut rng, dim, 400.0),
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("dominates", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let (a, o, r) = &triples[i % triples.len()];
                i = i.wrapping_add(1);
                black_box(dominates(a, o, r))
            })
        });
    }
    g.finish();
}

fn bench_region_fully_dominated(c: &mut Criterion) {
    let mut g = c.benchmark_group("domination_count");
    for mmax in [2usize, 10, 40] {
        let mut rng = StdRng::seed_from_u64(3);
        let dim = 3;
        let o = rand_rect(&mut rng, dim, 60.0);
        let cset: Vec<HyperRect> = (0..120).map(|_| rand_rect(&mut rng, dim, 60.0)).collect();
        let slab = rand_rect(&mut rng, dim, 2_000.0);
        g.bench_with_input(BenchmarkId::new("mmax", mmax), &mmax, |b, &mmax| {
            b.iter(|| black_box(region_fully_dominated(&slab, &cset, &o, mmax, None)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_distances, bench_dominates, bench_region_fully_dominated
);
criterion_main!(benches);
