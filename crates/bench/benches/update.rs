//! Criterion bench: incremental maintenance — per-object insertion and
//! deletion against the Rebuild alternative (Figs. 10(h)/(i)).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pv_bench::{Ctx, Preset};
use pv_core::PvIndex;

fn bench_updates(c: &mut Criterion) {
    let ctx = Ctx::new(Preset::Tiny);
    let db = ctx.synthetic_db(2_000, 3, 60.0, 29);
    let params = ctx.pv_params();
    let base_index = PvIndex::build(&db, params);

    let mut g = c.benchmark_group("update");
    g.sample_size(10);

    // Incremental deletion + reinsertion cycle of a single object: measures
    // the steady-state per-update cost without growing/shrinking the index.
    g.bench_function("inc_delete_insert_cycle", |b| {
        let mut index = PvIndex::build(&db, params);
        let mut i = 0usize;
        b.iter(|| {
            let o = db.objects[i % db.objects.len()].clone();
            i = i.wrapping_add(37);
            index.remove(o.id).expect("present");
            black_box(index.insert(o).expect("reinsert"));
        })
    });

    // Rebuild alternative: the paper's competitor charges a full index
    // construction per update.
    g.bench_function("rebuild_after_update", |b| {
        b.iter_batched(
            || (),
            |_| black_box(PvIndex::build(&db, params)),
            BatchSize::PerIteration,
        )
    });

    drop(base_index);
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_updates
);
criterion_main!(benches);
