//! Criterion bench: per-object UBR construction with the SE algorithm —
//! the per-object cost behind Figs. 10(a)–(f).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_core::cset::{build_mean_tree, choose_cset};
use pv_core::params::CSetStrategy;
use pv_core::se::compute_ubr;
use pv_geom::HyperRect;
use pv_workload::{synthetic, SyntheticConfig};
use std::collections::HashMap;

fn bench_se(c: &mut Criterion) {
    let db = synthetic(&SyntheticConfig {
        n: 4_000,
        dim: 3,
        max_side: 60.0,
        samples: 8,
        seed: 13,
    });
    let regions: HashMap<u64, HyperRect> = db
        .objects
        .iter()
        .map(|o| (o.id, o.region.clone()))
        .collect();
    let tree = build_mean_tree(regions.iter().map(|(&id, r)| (id, r.clone())), 3, 100);

    let mut g = c.benchmark_group("se_ubr");
    for (name, strategy) in [
        ("fs_k200", CSetStrategy::Fixed { k: 200 }),
        ("is_default", CSetStrategy::default()),
    ] {
        g.bench_function(BenchmarkId::new("strategy", name), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let o = &db.objects[i % db.objects.len()];
                i = i.wrapping_add(7);
                let cset = choose_cset(o, strategy, &tree, &regions);
                black_box(compute_ubr(o, &db.domain, &cset, 1.0, 10))
            })
        });
    }
    // Δ sensitivity (Fig. 10(a)).
    for delta in [0.1f64, 1.0, 100.0] {
        g.bench_function(BenchmarkId::new("delta", format!("{delta}")), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let o = &db.objects[i % db.objects.len()];
                i = i.wrapping_add(7);
                let cset = choose_cset(o, CSetStrategy::default(), &tree, &regions);
                black_box(compute_ubr(o, &db.domain, &cset, delta, 10))
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_se
);
criterion_main!(benches);
