//! Criterion bench: substrate data structures (R*-tree, octree, extendible
//! hash, pager) — supporting measurements for the index-level figures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_exthash::ExtHash;
use pv_geom::{HyperRect, Point};
use pv_octree::{encode_leaf_record, Octree};
use pv_rtree::{Entry, RTree, RTreeParams};
use pv_storage::{MemPager, PageList, Pager};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

fn rand_rect(rng: &mut StdRng, dim: usize) -> HyperRect {
    let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..9_000.0)).collect();
    let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(1.0..60.0)).collect();
    HyperRect::new(lo, hi)
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    let mut rng = StdRng::seed_from_u64(31);
    let entries: Vec<Entry> = (0..10_000)
        .map(|i| Entry {
            rect: rand_rect(&mut rng, 3),
            id: i,
        })
        .collect();
    g.bench_function("bulk_load_10k", |b| {
        b.iter(|| {
            black_box(RTree::bulk_load(
                3,
                RTreeParams::with_fanout(100),
                entries.clone(),
            ))
        })
    });
    let tree = RTree::bulk_load(3, RTreeParams::with_fanout(100), entries.clone());
    let queries: Vec<Point> = (0..128)
        .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..10_000.0)).collect()))
        .collect();
    g.bench_function("knn10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i = i.wrapping_add(1);
            black_box(tree.knn(q, 10))
        })
    });
    g.bench_function("range_search", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i = i.wrapping_add(1);
            let range = HyperRect::new(
                q.coords().iter().map(|x| (x - 200.0).max(0.0)).collect(),
                q.coords()
                    .iter()
                    .map(|x| (x + 200.0).min(10_000.0))
                    .collect(),
            );
            black_box(tree.range_search(&range))
        })
    });
    g.finish();
}

fn bench_octree(c: &mut Criterion) {
    let mut g = c.benchmark_group("octree");
    let mut rng = StdRng::seed_from_u64(37);
    let dim = 3;
    let domain = HyperRect::cube(dim, 0.0, 10_000.0);
    let objs: Vec<(u64, HyperRect)> = (0..5_000).map(|i| (i, rand_rect(&mut rng, dim))).collect();
    let lookup_map: HashMap<u64, HyperRect> = objs.iter().cloned().collect();
    g.bench_function("insert_5k", |b| {
        b.iter(|| {
            let pager = MemPager::new(4096);
            let mut tree = Octree::new(pager, domain.clone(), 5 * 1024 * 1024, 56);
            let lookup = |id: u64| lookup_map[&id].clone();
            for (id, ubr) in &objs {
                tree.insert(ubr, &encode_leaf_record(*id, ubr), &lookup);
            }
            black_box(tree.stats())
        })
    });
    // point queries on a built tree
    let pager = MemPager::new(4096);
    let mut tree = Octree::new(pager, domain.clone(), 5 * 1024 * 1024, 56);
    let lookup = |id: u64| lookup_map[&id].clone();
    for (id, ubr) in &objs {
        tree.insert(ubr, &encode_leaf_record(*id, ubr), &lookup);
    }
    let queries: Vec<Point> = (0..128)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..10_000.0)).collect()))
        .collect();
    g.bench_function("point_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i = i.wrapping_add(1);
            black_box(tree.point_query(q))
        })
    });
    g.finish();
}

fn bench_exthash(c: &mut Criterion) {
    let mut g = c.benchmark_group("exthash");
    g.bench_function("put_get_4k_entries", |b| {
        b.iter(|| {
            let mut h = ExtHash::new(MemPager::new(4096));
            for k in 0..4_000u64 {
                h.put(k, &k.to_le_bytes());
            }
            let mut acc = 0u64;
            for k in 0..4_000u64 {
                acc ^= h.get(k).unwrap()[0] as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_pager(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    g.bench_function("pagelist_append_read", |b| {
        b.iter(|| {
            let pager = MemPager::new(4096);
            let mut list = PageList::new();
            for i in 0..200u8 {
                list.append(&pager, &[i; 56]);
            }
            black_box(list.read_all(&pager).len())
        })
    });
    g.bench_function("page_rw", |b| {
        let pager = MemPager::new(4096);
        let id = pager.alloc();
        let buf = vec![7u8; 4096];
        b.iter(|| {
            pager.write(id, &buf);
            black_box(pager.read(id)[0])
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_rtree, bench_octree, bench_exthash, bench_pager
);
criterion_main!(benches);
