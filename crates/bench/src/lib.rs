//! # pv-bench — experiment harness for §VII of the paper
//!
//! Shared machinery for the `experiments` binary and the criterion benches:
//! scale presets, workload builders, measurement loops and table/CSV output.
//! Every public function here regenerates one figure (or the analysis behind
//! one figure) of the paper's evaluation; the mapping is documented in
//! DESIGN.md §4 and the measured outcomes in EXPERIMENTS.md.

#![deny(missing_docs)]

pub mod alloc_counter;
pub mod figures;
pub mod report;
pub mod trajectory;

use pv_core::params::PvParams;
use pv_uncertain::UncertainDb;
use pv_workload::{realistic, synthetic, SyntheticConfig};

/// Experiment scale. The paper runs |S| up to 100k with 50 queries per data
/// point on 2008-class hardware; the presets trade cardinality for laptop
/// turnaround while keeping every *relative* comparison intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Minutes-scale smoke runs (|S| ≤ 2.5k).
    Tiny,
    /// Default for EXPERIMENTS.md (|S| ≤ 10k).
    Small,
    /// Construction-scaling runs (|S| ≤ 25k): large enough that the PR-8
    /// build pipeline (work stealing + bulk load) dominates the wall clock,
    /// small enough to finish in minutes.
    Large,
    /// The paper's Table-I scale (|S| ≤ 100k). Hours.
    Paper,
}

impl Preset {
    /// Parses a preset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Self::Tiny),
            "small" => Some(Self::Small),
            "large" => Some(Self::Large),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The |S| sweep of Figs. 9(a)/(c) and 10(b)/(c)/(h)/(i).
    pub fn s_sweep(self) -> Vec<usize> {
        match self {
            Self::Tiny => vec![500, 1_000, 1_500, 2_000, 2_500],
            Self::Small => vec![2_000, 4_000, 6_000, 8_000, 10_000],
            Self::Large => vec![5_000, 10_000, 15_000, 20_000, 25_000],
            Self::Paper => vec![20_000, 40_000, 60_000, 80_000, 100_000],
        }
    }

    /// Default |S| for non-cardinality sweeps.
    pub fn s_default(self) -> usize {
        match self {
            Self::Tiny => 1_500,
            Self::Small => 6_000,
            Self::Large => 25_000,
            Self::Paper => 100_000,
        }
    }

    /// Queries per data point (the paper averages 50 runs).
    pub fn queries(self) -> usize {
        match self {
            Self::Tiny => 25,
            Self::Small => 50,
            Self::Large => 50,
            Self::Paper => 50,
        }
    }

    /// Real-dataset cardinalities (paper: roads 30k, rrlines 36k,
    /// airports 20k), scaled with the preset.
    pub fn real_sizes(self) -> (usize, usize, usize) {
        match self {
            Self::Tiny => (1_000, 1_200, 700),
            Self::Small => (3_000, 3_600, 2_000),
            Self::Large => (10_000, 12_000, 7_000),
            Self::Paper => (30_000, 36_000, 20_000),
        }
    }

    /// Objects deleted/re-inserted in the update experiments (paper: 1k).
    pub fn update_batch(self) -> usize {
        match self {
            Self::Tiny => 50,
            Self::Small => 150,
            Self::Large => 500,
            Self::Paper => 1_000,
        }
    }

    /// Instances per object (paper: 500). Step 2 cost scales linearly with
    /// this; the tiny preset trims it.
    pub fn samples(self) -> u32 {
        match self {
            Self::Tiny => 100,
            _ => 500,
        }
    }
}

/// Common experiment context: preset + construction parallelism.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Scale preset.
    pub preset: Preset,
    /// Worker threads for bulk UBR construction (queries stay serial, as in
    /// the paper).
    pub threads: usize,
}

impl Ctx {
    /// Context with all available cores for construction.
    pub fn new(preset: Preset) -> Self {
        Self {
            preset,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// `PvParams` matching Table I, with this context's build parallelism.
    pub fn pv_params(&self) -> PvParams {
        PvParams {
            build_threads: self.threads,
            ..Default::default()
        }
    }

    /// Synthetic database with Table-I defaults at the given cardinality.
    pub fn synthetic_db(&self, n: usize, dim: usize, max_side: f64, seed: u64) -> UncertainDb {
        synthetic(&SyntheticConfig {
            n,
            dim,
            max_side,
            samples: self.preset.samples(),
            seed,
        })
    }

    /// The three simulated real datasets at preset scale.
    pub fn real_dbs(&self) -> Vec<(&'static str, UncertainDb)> {
        let (roads_n, rr_n, air_n) = self.preset.real_sizes();
        vec![
            ("roads", realistic::roads(roads_n, 71)),
            ("rrlines", realistic::rrlines(rr_n, 72)),
            ("airports", realistic::airports(air_n, 73)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parsing() {
        assert_eq!(Preset::parse("tiny"), Some(Preset::Tiny));
        assert_eq!(Preset::parse("small"), Some(Preset::Small));
        assert_eq!(Preset::parse("large"), Some(Preset::Large));
        assert_eq!(Preset::parse("paper"), Some(Preset::Paper));
        assert_eq!(Preset::parse("huge"), None);
    }

    #[test]
    fn sweeps_are_monotone() {
        for p in [Preset::Tiny, Preset::Small, Preset::Large, Preset::Paper] {
            let sweep = p.s_sweep();
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ctx_builds_dbs() {
        let ctx = Ctx::new(Preset::Tiny);
        let db = ctx.synthetic_db(100, 2, 60.0, 1);
        assert_eq!(db.len(), 100);
        assert!(ctx.pv_params().build_threads >= 1);
    }
}
