//! A counting global allocator for allocation-regression measurements.
//!
//! The hot-path contract of this repo (see ARCHITECTURE.md, "Hot paths &
//! performance model") is that steady-state batch queries perform **zero**
//! heap allocations. That contract is only checkable by counting real
//! allocator traffic, so this module provides a [`GlobalAlloc`] wrapper
//! around the system allocator that tallies every `alloc`/`realloc` call.
//!
//! A global allocator must be registered per binary; the `experiments`
//! binary and the workspace-root `alloc_steady_state` test both do
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pv_bench::alloc_counter::CountingAllocator = CountingAllocator;
//! ```
//!
//! and then read [`allocations`] deltas around the region of interest. In a
//! binary that does *not* register it, [`allocations`] stays at zero and
//! deltas are meaningless — check [`is_registered`] before trusting them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REGISTERED: AtomicBool = AtomicBool::new(false);

/// System-allocator wrapper counting every allocation and reallocation.
#[derive(Debug)]
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, only adding relaxed counter
// bumps, which are allocation-free and reentrancy-safe.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: pure pass-through — the caller's obligations are `System`'s.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        REGISTERED.store(true, Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged, so `System`'s contract is
        // the caller's contract; the counter bumps cannot allocate or unwind.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure pass-through — the caller's obligations are `System`'s.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from the caller's matching `alloc`,
        // which this wrapper served from `System` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: pure pass-through — the caller's obligations are `System`'s.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was allocated by `System` via this wrapper with
        // `layout`; the `new_size` obligations transfer verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: pure pass-through — the caller's obligations are `System`'s.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged to `System.alloc_zeroed`.
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Total allocations (+ reallocations) observed so far. Take deltas around
/// the region of interest.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// True once the counting allocator has served at least one allocation in
/// this process — i.e. it is actually registered as the global allocator.
pub fn is_registered() -> bool {
    REGISTERED.load(Ordering::Relaxed)
}
