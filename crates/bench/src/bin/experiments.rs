//! `experiments` — regenerates every table and figure of the paper's §VII.
//!
//! Usage:
//! ```text
//! experiments [--preset tiny|small|large|paper] [--threads N] <command>...
//!
//! commands:
//!   table1   fig9a fig9b fig9c fig9d fig9efg fig9h
//!   fig10a fig10b fig10c fig10d fig10e fig10f fig10g fig10hi
//!   params updquality engines snapshot
//!   report   (bench-trajectory snapshot -> BENCH_pr<N>.json)
//!   lint     (pv-lint static-invariant pass; non-zero exit on violations)
//!   fig9     (all of figure 9)    fig10   (all of figure 10)
//!   all      (everything)
//! ```
//!
//! Results print as aligned tables and are mirrored to `results/*.csv`.

use pv_bench::{figures, trajectory, Ctx, Preset};

/// Count real allocator traffic so `report` can measure the zero-allocation
/// steady-state contract of the batch query path.
#[global_allocator]
static ALLOC: pv_bench::alloc_counter::CountingAllocator =
    pv_bench::alloc_counter::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = Preset::Small;
    let mut threads: Option<usize> = None;
    let mut lint = LintOpts::default();
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let v = it.next().unwrap_or_default();
                preset = Preset::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown preset '{v}' (tiny|small|large|paper)");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads = it.next().and_then(|v| v.parse().ok());
            }
            // Passed through to the `lint` command (same meaning as the
            // standalone pv-lint binary's flags).
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" || f == "sarif" => lint.format = f,
                _ => {
                    eprintln!("--format takes `text`, `json`, or `sarif`");
                    std::process::exit(2);
                }
            },
            "--graph" => lint.graph = true,
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => commands.push(other.to_string()),
        }
    }
    if commands.is_empty() {
        print_help();
        std::process::exit(2);
    }
    let mut ctx = Ctx::new(preset);
    if let Some(t) = threads {
        ctx.threads = t.max(1);
    }
    println!(
        "# preset {:?}, |S| sweep {:?}, {} queries/point, {} build threads",
        ctx.preset,
        ctx.preset.s_sweep(),
        ctx.preset.queries(),
        ctx.threads
    );

    for cmd in commands {
        run(&ctx, &cmd, &lint);
    }
}

/// `experiments lint` options forwarded to pv-lint.
#[derive(Debug, Default)]
struct LintOpts {
    /// Output format: "" (text), "json", or "sarif".
    format: String,
    /// Dump the workspace call graph as DOT instead of linting.
    graph: bool,
}

fn run(ctx: &Ctx, cmd: &str, lint: &LintOpts) {
    let t0 = std::time::Instant::now();
    match cmd {
        "table1" => figures::table1(ctx),
        "fig9a" => figures::fig9a(ctx),
        "fig9b" => figures::fig9b(ctx),
        "fig9c" => figures::fig9c(ctx),
        "fig9d" => figures::fig9d(ctx),
        "fig9efg" | "fig9e" | "fig9f" | "fig9g" => figures::fig9efg(ctx),
        "fig9h" => figures::fig9h(ctx),
        "fig10a" => figures::fig10a(ctx),
        "fig10b" => figures::fig10b(ctx),
        "fig10c" => figures::fig10c(ctx),
        "fig10d" => figures::fig10d(ctx),
        "fig10e" => figures::fig10e(ctx),
        "fig10f" => figures::fig10f(ctx),
        "fig10g" => figures::fig10g(ctx),
        "fig10hi" | "fig10h" | "fig10i" => figures::fig10hi(ctx),
        "params" => figures::params_sensitivity(ctx),
        "space" => figures::space(ctx),
        "engines" => figures::engines(ctx),
        "snapshot" => figures::snapshot(ctx),
        "updquality" => figures::update_quality(ctx),
        "report" => trajectory::report(ctx, &format!("BENCH_pr{}.json", trajectory::TRAJECTORY_PR)),
        "lint" => run_lint(lint),
        "fig9" => {
            figures::fig9a(ctx);
            figures::fig9b(ctx);
            figures::fig9c(ctx);
            figures::fig9d(ctx);
            figures::fig9efg(ctx);
            figures::fig9h(ctx);
        }
        "fig10" => {
            figures::fig10a(ctx);
            figures::fig10b(ctx);
            figures::fig10c(ctx);
            figures::fig10d(ctx);
            figures::fig10e(ctx);
            figures::fig10f(ctx);
            figures::fig10g(ctx);
            figures::fig10hi(ctx);
        }
        "all" => {
            run(ctx, "table1", lint);
            run(ctx, "fig9", lint);
            run(ctx, "fig10", lint);
            run(ctx, "params", lint);
            run(ctx, "updquality", lint);
            run(ctx, "space", lint);
            run(ctx, "engines", lint);
            run(ctx, "snapshot", lint);
        }
        other => {
            eprintln!("unknown command '{other}'");
            print_help();
            std::process::exit(2);
        }
    }
    eprintln!("[{cmd} done in {:?}]", t0.elapsed());
}

/// `experiments lint`: run the pv-lint static-invariant pass over the
/// workspace (same engine as `cargo run -p pv-lint`), so a perf session can
/// check the hot-path/unsafe/COW discipline without leaving the harness.
/// `--format text|json|sarif` and `--graph` forward to the same renderers
/// as the standalone binary.
fn run_lint(opts: &LintOpts) {
    // Walk up from the CWD to the nearest lint.toml, like the standalone
    // binary does, so this works from any subdirectory of the checkout.
    let mut root = std::env::current_dir().unwrap_or_else(|_| ".".into());
    while !root.join("lint.toml").is_file() {
        if !root.pop() {
            eprintln!("experiments lint: no lint.toml above the current directory");
            std::process::exit(2);
        }
    }
    if opts.graph {
        match pv_lint::graph_dot_root(&root) {
            Ok(dot) => print!("{dot}"),
            Err(e) => {
                eprintln!("experiments lint: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    match pv_lint::lint_root(&root) {
        Ok(report) => {
            match opts.format.as_str() {
                "json" => print!("{}", report.to_json()),
                "sarif" => print!("{}", report.to_sarif()),
                _ => print!("{}", report.to_text()),
            }
            if !report.clean() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("experiments lint: {e}");
            std::process::exit(2);
        }
    }
}

fn print_help() {
    println!(
        "experiments — regenerate the tables/figures of the ICDE'13 PV-index paper\n\
         \n\
         usage: experiments [--preset tiny|small|large|paper] [--threads N] <command>...\n\
         \n\
         commands: table1, fig9a..fig9h, fig9efg, fig10a..fig10i, fig10hi,\n\
         params, updquality, space, engines, snapshot, report, lint, fig9, fig10, all\n\
         \n\
         lint flags: --format text|json|sarif    --graph (DOT call-graph dump)"
    );
}
