//! Table and CSV output for experiment results.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// A simple result table: header row + data rows, printed aligned and
/// mirrored to `results/<name>.csv`.
#[derive(Debug)]
pub struct Table {
    name: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; `name` becomes the CSV file stem.
    pub fn new(name: &str, title: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (already formatted).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Formats a float with sensible precision for table cells.
    pub fn num(x: impl Display) -> String {
        format!("{x}")
    }

    /// Milliseconds with two decimals.
    pub fn ms(d: std::time::Duration) -> String {
        format!("{:.3}", d.as_secs_f64() * 1e3)
    }

    /// Prints the aligned table to stdout and writes the CSV.
    pub fn finish(self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        // CSV mirror.
        let dir = PathBuf::from("results");
        if fs::create_dir_all(&dir).is_ok() {
            let mut csv = String::new();
            csv.push_str(&self.header.join(","));
            csv.push('\n');
            for row in &self.rows {
                csv.push_str(&row.join(","));
                csv.push('\n');
            }
            let path = dir.join(format!("{}.csv", self.name));
            if let Err(e) = fs::write(&path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(csv: {})", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("unit_test_table", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.finish();
        let csv = std::fs::read_to_string("results/unit_test_table.csv").unwrap();
        assert_eq!(csv, "a,b\n1,2\n");
        let _ = std::fs::remove_file("results/unit_test_table.csv");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(Table::ms(std::time::Duration::from_micros(1500)), "1.500");
    }
}
