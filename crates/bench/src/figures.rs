//! One runner per figure of §VII. Each function builds the workload at the
//! preset's scale, measures the same quantities the paper plots, and prints
//! a table whose rows correspond to the figure's x-axis points.

use crate::report::Table;
use crate::Ctx;
use pv_core::baseline::RTreeBaseline;
use pv_core::params::{CSetStrategy, PvParams};
use pv_core::query::{ProbNnEngine, QuerySpec, Step1Engine};
use pv_core::{LinearScan, PvIndex, QueryStats};
use pv_geom::Point;
use pv_uncertain::UncertainDb;
use pv_uvindex::{UvIndex, UvParams};
use pv_workload::queries;
use std::time::{Duration, Instant};

/// Table-I default |u(o)|.
const U_DEFAULT: f64 = 60.0;
/// Table-I default dimensionality.
const D_DEFAULT: usize = 3;

/// Averaged full-query measurements over a query workload.
struct QueryAverages {
    tq: Duration,
    t_or: Duration,
    t_pc: Duration,
    io_or: f64,
    io_pc: f64,
    answers: f64,
}

fn run_queries(mut f: impl FnMut(&Point) -> QueryStats, qs: &[Point]) -> QueryAverages {
    let mut tq = Duration::ZERO;
    let mut t_or = Duration::ZERO;
    let mut t_pc = Duration::ZERO;
    let mut io_or = 0u64;
    let mut io_pc = 0u64;
    let mut answers = 0usize;
    for q in qs {
        let st = f(q);
        tq += st.total_time();
        t_or += st.step1.time;
        t_pc += st.pc_time;
        io_or += st.step1.io_reads;
        io_pc += st.pc_io_reads;
        answers += st.step1.answers;
    }
    let m = qs.len() as u32;
    let mf = qs.len() as f64;
    QueryAverages {
        tq: tq / m,
        t_or: t_or / m,
        t_pc: t_pc / m,
        io_or: io_or as f64 / mf,
        io_pc: io_pc as f64 / mf,
        answers: answers as f64 / mf,
    }
}

fn measure_pair(
    ctx: &Ctx,
    db: &UncertainDb,
    seed: u64,
) -> (QueryAverages, QueryAverages, PvIndex, RTreeBaseline) {
    let params = ctx.pv_params();
    let index = PvIndex::build(db, params);
    let baseline = RTreeBaseline::build(db, params.rtree_fanout, params.page_size);
    let qs = queries::uniform(&db.domain, ctx.preset.queries(), seed);
    let spec = QuerySpec::new();
    let pv = run_queries(|q| index.execute(q, &spec).expect("query").stats, &qs);
    let rt = run_queries(|q| baseline.execute(q, &spec).expect("query").stats, &qs);
    (pv, rt, index, baseline)
}

/// Fig. 9(a): PNNQ time `Tq` vs `|S|` (PV-index vs R-tree), 3-D synthetic.
pub fn fig9a(ctx: &Ctx) {
    let mut t = Table::new(
        "fig9a",
        "Fig 9(a): Tq (ms) vs |S| — PV-index vs R-tree (3-D synthetic)",
        &["|S|", "Tq_rtree_ms", "Tq_pv_ms", "pv_speedup_pct"],
    );
    for (i, &n) in ctx.preset.s_sweep().iter().enumerate() {
        let db = ctx.synthetic_db(n, D_DEFAULT, U_DEFAULT, 100 + i as u64);
        let (pv, rt, _, _) = measure_pair(ctx, &db, 9000 + i as u64);
        let speedup = 100.0 * (1.0 - pv.tq.as_secs_f64() / rt.tq.as_secs_f64());
        t.row(vec![
            n.to_string(),
            Table::ms(rt.tq),
            Table::ms(pv.tq),
            format!("{speedup:.1}"),
        ]);
    }
    t.finish();
}

/// Fig. 9(b): `Tq` split into object retrieval (OR) and probability
/// computation (PC) at the default configuration.
pub fn fig9b(ctx: &Ctx) {
    let mut t = Table::new(
        "fig9b",
        "Fig 9(b): OR / PC breakdown (ms) at default |S|",
        &["method", "T_OR_ms", "T_PC_ms", "Tq_ms", "io_pc"],
    );
    let db = ctx.synthetic_db(ctx.preset.s_default(), D_DEFAULT, U_DEFAULT, 200);
    let (pv, rt, _, _) = measure_pair(ctx, &db, 9200);
    for (name, a) in [("rtree", &rt), ("pv-index", &pv)] {
        t.row(vec![
            name.to_string(),
            Table::ms(a.t_or),
            Table::ms(a.t_pc),
            Table::ms(a.tq),
            format!("{:.2}", a.io_pc),
        ]);
    }
    t.finish();
}

/// Fig. 9(c): query I/O vs `|S|`.
pub fn fig9c(ctx: &Ctx) {
    let mut t = Table::new(
        "fig9c",
        "Fig 9(c): Step-1 I/O (pages/query) vs |S|",
        &["|S|", "io_rtree", "io_pv", "pv_fraction_pct"],
    );
    for (i, &n) in ctx.preset.s_sweep().iter().enumerate() {
        let db = ctx.synthetic_db(n, D_DEFAULT, U_DEFAULT, 100 + i as u64);
        let (pv, rt, _, _) = measure_pair(ctx, &db, 9300 + i as u64);
        t.row(vec![
            n.to_string(),
            format!("{:.2}", rt.io_or),
            format!("{:.2}", pv.io_or),
            format!("{:.1}", 100.0 * pv.io_or / rt.io_or.max(1e-9)),
        ]);
    }
    t.finish();
}

/// Fig. 9(d): `Tq` vs `|u(o)|`.
pub fn fig9d(ctx: &Ctx) {
    let mut t = Table::new(
        "fig9d",
        "Fig 9(d): Tq (ms) vs |u(o)|",
        &["|u(o)|", "Tq_rtree_ms", "Tq_pv_ms", "answers_avg"],
    );
    for (i, &u) in [20.0, 40.0, 60.0, 80.0, 100.0].iter().enumerate() {
        let db = ctx.synthetic_db(ctx.preset.s_default(), D_DEFAULT, u, 300 + i as u64);
        let (pv, rt, _, _) = measure_pair(ctx, &db, 9400 + i as u64);
        t.row(vec![
            format!("{u:.0}"),
            Table::ms(rt.tq),
            Table::ms(pv.tq),
            format!("{:.1}", pv.answers),
        ]);
    }
    t.finish();
}

/// Figs. 9(e)/(f)/(g): `Tq`, `T_OR` and I/O vs dimensionality `d` (2–5),
/// with the UV-index joining at `d = 2`.
pub fn fig9efg(ctx: &Ctx) {
    let mut te = Table::new(
        "fig9e",
        "Fig 9(e): Tq (ms) vs d",
        &["d", "Tq_rtree_ms", "Tq_pv_ms", "Tq_uv_ms"],
    );
    let mut tf = Table::new(
        "fig9f",
        "Fig 9(f): T_OR (ms) vs d",
        &["d", "TOR_rtree_ms", "TOR_pv_ms", "rtree_or_share_pct"],
    );
    let mut tg = Table::new(
        "fig9g",
        "Fig 9(g): Step-1 I/O vs d",
        &["d", "io_rtree", "io_pv"],
    );
    for (i, d) in (2..=5).enumerate() {
        let db = ctx.synthetic_db(ctx.preset.s_default(), d, U_DEFAULT, 400 + i as u64);
        let (pv, rt, index, _) = measure_pair(ctx, &db, 9500 + i as u64);
        // UV-index only exists at d = 2; it runs the same trait-level query
        // pipeline (its own Step 1, shared Step 2), so Tq is comparable.
        let uv_tq = if d == 2 {
            let uv = UvIndex::build(&db, UvParams::matching(index.params()));
            let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9500 + i as u64);
            let avg = run_queries(
                |q| uv.execute(q, &QuerySpec::new()).expect("query").stats,
                &qs,
            );
            Some(avg.tq)
        } else {
            None
        };
        te.row(vec![
            d.to_string(),
            Table::ms(rt.tq),
            Table::ms(pv.tq),
            uv_tq.map_or_else(|| "-".into(), Table::ms),
        ]);
        tf.row(vec![
            d.to_string(),
            Table::ms(rt.t_or),
            Table::ms(pv.t_or),
            format!("{:.0}", 100.0 * rt.t_or.as_secs_f64() / rt.tq.as_secs_f64()),
        ]);
        tg.row(vec![
            d.to_string(),
            format!("{:.2}", rt.io_or),
            format!("{:.2}", pv.io_or),
        ]);
    }
    te.finish();
    tf.finish();
    tg.finish();
}

/// Fig. 9(h): `Tq` on the (simulated) real datasets.
pub fn fig9h(ctx: &Ctx) {
    let mut t = Table::new(
        "fig9h",
        "Fig 9(h): Tq (ms) on real datasets",
        &[
            "dataset",
            "d",
            "Tq_rtree_ms",
            "Tq_pv_ms",
            "Tq_uv_ms",
            "pv_speedup_pct",
        ],
    );
    for (name, db) in ctx.real_dbs() {
        let (pv, rt, index, _) = measure_pair(ctx, &db, 9600);
        let uv_cell = if db.dim() == 2 {
            let uv = UvIndex::build(&db, UvParams::matching(index.params()));
            let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9600);
            let avg = run_queries(
                |q| uv.execute(q, &QuerySpec::new()).expect("query").stats,
                &qs,
            );
            Table::ms(avg.tq)
        } else {
            "-".into()
        };
        let speedup = 100.0 * (1.0 - pv.tq.as_secs_f64() / rt.tq.as_secs_f64());
        t.row(vec![
            name.to_string(),
            db.dim().to_string(),
            Table::ms(rt.tq),
            Table::ms(pv.tq),
            uv_cell,
            format!("{speedup:.1}"),
        ]);
    }
    t.finish();
}

/// Fig. 10(a): construction time `Tc` vs `Δ`.
pub fn fig10a(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10a",
        "Fig 10(a): Tc (s) vs Δ",
        &["delta", "Tc_s", "avg_ubr_volume"],
    );
    let db = ctx.synthetic_db(ctx.preset.s_default(), D_DEFAULT, U_DEFAULT, 500);
    for &delta in &[0.1, 0.5, 1.0, 10.0, 100.0, 1000.0] {
        let params = PvParams {
            delta,
            ..ctx.pv_params()
        };
        let index = PvIndex::build(&db, params);
        let vol: f64 = db
            .objects
            .iter()
            .map(|o| index.ubr(o.id).unwrap().volume())
            .sum::<f64>()
            / db.len() as f64;
        t.row(vec![
            format!("{delta}"),
            format!("{:.2}", index.build_stats().total_time.as_secs_f64()),
            format!("{vol:.3e}"),
        ]);
    }
    t.finish();
}

/// Fig. 10(b): `Tc` vs `|S|` for ALL vs FS vs IS. ALL is run on a capped
/// sub-problem and linearly extrapolated (the paper itself reports 10³
/// hours for ALL at 20k — nobody runs that to completion).
pub fn fig10b(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10b",
        "Fig 10(b): Tc (s) vs |S| — ALL vs FS vs IS (ALL extrapolated)",
        &["|S|", "Tc_all_s", "Tc_fs_s", "Tc_is_s", "all_note"],
    );
    let all_cap = 150usize;
    for (i, &n) in ctx.preset.s_sweep().iter().enumerate() {
        let db = ctx.synthetic_db(n, D_DEFAULT, U_DEFAULT, 510 + i as u64);
        let fs = PvIndex::build(
            &db,
            PvParams {
                cset: CSetStrategy::Fixed { k: 200 },
                ..ctx.pv_params()
            },
        );
        let is = PvIndex::build(&db, ctx.pv_params());
        // ALL: build UBRs for `all_cap` objects against the full database,
        // then scale by n / all_cap (cost per object is Θ(|S|) for ALL).
        let sub = UncertainDb::new(
            db.domain.clone(),
            db.objects[..all_cap.min(db.len())].to_vec(),
        );
        let t0 = Instant::now();
        {
            let regions: std::collections::HashMap<u64, pv_geom::HyperRect> = db
                .objects
                .iter()
                .map(|o| (o.id, o.region.clone()))
                .collect();
            let tree = pv_core::cset::build_mean_tree(
                regions.iter().map(|(&id, r)| (id, r.clone())),
                D_DEFAULT,
                100,
            );
            for o in &sub.objects {
                let cs = pv_core::cset::choose_cset(o, CSetStrategy::All, &tree, &regions);
                let _ = pv_core::se::compute_ubr(o, &db.domain, &cs, 1.0, 10);
            }
        }
        let all_extrapolated =
            t0.elapsed().as_secs_f64() * (n as f64 / all_cap.min(db.len()) as f64);
        t.row(vec![
            n.to_string(),
            format!("{all_extrapolated:.1}"),
            format!("{:.2}", fs.build_stats().total_time.as_secs_f64()),
            format!("{:.2}", is.build_stats().total_time.as_secs_f64()),
            format!("extrapolated from {all_cap} objects"),
        ]);
    }
    t.finish();
}

/// Fig. 10(c): `Tc` vs `|S|` for FS vs IS.
pub fn fig10c(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10c",
        "Fig 10(c): Tc (s) vs |S| — FS vs IS",
        &["|S|", "Tc_fs_s", "Tc_is_s", "cset_fs", "cset_is"],
    );
    for (i, &n) in ctx.preset.s_sweep().iter().enumerate() {
        let db = ctx.synthetic_db(n, D_DEFAULT, U_DEFAULT, 520 + i as u64);
        let fs = PvIndex::build(
            &db,
            PvParams {
                cset: CSetStrategy::Fixed { k: 200 },
                ..ctx.pv_params()
            },
        );
        let is = PvIndex::build(&db, ctx.pv_params());
        t.row(vec![
            n.to_string(),
            format!("{:.2}", fs.build_stats().total_time.as_secs_f64()),
            format!("{:.2}", is.build_stats().total_time.as_secs_f64()),
            format!("{:.0}", fs.build_stats().avg_cset_size()),
            format!("{:.0}", is.build_stats().avg_cset_size()),
        ]);
    }
    t.finish();
}

/// Fig. 10(d): `Tc` vs `|u(o)|` for FS vs IS.
pub fn fig10d(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10d",
        "Fig 10(d): Tc (s) vs |u(o)| — FS vs IS",
        &["|u(o)|", "Tc_fs_s", "Tc_is_s"],
    );
    for (i, &u) in [20.0, 40.0, 60.0, 80.0, 100.0].iter().enumerate() {
        let db = ctx.synthetic_db(ctx.preset.s_default(), D_DEFAULT, u, 530 + i as u64);
        let fs = PvIndex::build(
            &db,
            PvParams {
                cset: CSetStrategy::Fixed { k: 200 },
                ..ctx.pv_params()
            },
        );
        let is = PvIndex::build(&db, ctx.pv_params());
        t.row(vec![
            format!("{u:.0}"),
            format!("{:.2}", fs.build_stats().total_time.as_secs_f64()),
            format!("{:.2}", is.build_stats().total_time.as_secs_f64()),
        ]);
    }
    t.finish();
}

/// Fig. 10(e): SE time split — chooseCSet vs UBR refinement, FS vs IS
/// (serial build so the split is undistorted by parallelism).
pub fn fig10e(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10e",
        "Fig 10(e): SE time split (s) — chooseCSet vs UBR computation",
        &["strategy", "t_cset_s", "t_ubr_s", "avg_cset_size"],
    );
    let db = ctx.synthetic_db(ctx.preset.s_default().min(4_000), D_DEFAULT, U_DEFAULT, 540);
    for (name, strategy) in [
        ("FS", CSetStrategy::Fixed { k: 200 }),
        ("IS", CSetStrategy::default()),
    ] {
        let params = PvParams {
            cset: strategy,
            build_threads: 1,
            ..Default::default()
        };
        let index = PvIndex::build(&db, params);
        let bs = index.build_stats();
        t.row(vec![
            name.to_string(),
            format!("{:.2}", bs.se.cset_time.as_secs_f64()),
            format!("{:.2}", bs.se.refine_time.as_secs_f64()),
            format!("{:.0}", bs.avg_cset_size()),
        ]);
    }
    t.finish();
}

/// Fig. 10(f): `Tc` on the real datasets, FS vs IS.
pub fn fig10f(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10f",
        "Fig 10(f): Tc (s) on real datasets — FS vs IS",
        &["dataset", "Tc_fs_s", "Tc_is_s"],
    );
    for (name, db) in ctx.real_dbs() {
        let fs = PvIndex::build(
            &db,
            PvParams {
                cset: CSetStrategy::Fixed { k: 200 },
                ..ctx.pv_params()
            },
        );
        let is = PvIndex::build(&db, ctx.pv_params());
        t.row(vec![
            name.to_string(),
            format!("{:.2}", fs.build_stats().total_time.as_secs_f64()),
            format!("{:.2}", is.build_stats().total_time.as_secs_f64()),
        ]);
    }
    t.finish();
}

/// Fig. 10(g): PV vs UV construction time on the 2-D real datasets.
pub fn fig10g(ctx: &Ctx) {
    let mut t = Table::new(
        "fig10g",
        "Fig 10(g): construction speedup PV vs UV (2-D real datasets)",
        &["dataset", "Tc_uv_s", "Tc_pv_s", "speedup_x"],
    );
    for (name, db) in ctx.real_dbs() {
        if db.dim() != 2 {
            continue;
        }
        // Single-threaded PV build for a like-for-like algorithmic ratio.
        let pv_params = PvParams {
            build_threads: 1,
            ..Default::default()
        };
        let pv = PvIndex::build(&db, pv_params);
        let uv = UvIndex::build(&db, UvParams::matching(&pv_params));
        let pv_s = pv.build_stats().total_time.as_secs_f64();
        let uv_s = uv.build_stats().total_time.as_secs_f64();
        t.row(vec![
            name.to_string(),
            format!("{uv_s:.2}"),
            format!("{pv_s:.2}"),
            format!("{:.1}", uv_s / pv_s.max(1e-9)),
        ]);
    }
    t.finish();
}

/// Figs. 10(h)/(i): per-object insertion/deletion — incremental vs rebuild.
pub fn fig10hi(ctx: &Ctx) {
    let mut th = Table::new(
        "fig10h",
        "Fig 10(h): insertion time per object (s) — Inc vs Rebuild",
        &[
            "|S|",
            "Tu_inc_s",
            "Tu_rebuild_serial_s",
            "Tu_rebuild_par_s",
            "speedup_x",
        ],
    );
    let mut ti = Table::new(
        "fig10i",
        "Fig 10(i): deletion time per object (s) — Inc vs Rebuild",
        &[
            "|S|",
            "Tu_inc_s",
            "Tu_rebuild_serial_s",
            "Tu_rebuild_par_s",
            "speedup_x",
        ],
    );
    let batch = ctx.preset.update_batch();
    for (i, &n) in ctx.preset.s_sweep().iter().enumerate() {
        let db = ctx.synthetic_db(n, D_DEFAULT, U_DEFAULT, 560 + i as u64);
        let params = ctx.pv_params();

        // Rebuild cost: one full construction per updated object (the
        // paper's Rebuild competitor). Incremental updates are inherently
        // serial, so the paper-comparable baseline is a *serial* rebuild;
        // the multi-threaded rebuild is reported alongside for context.
        let t0 = Instant::now();
        let serial_rebuilt = PvIndex::build(
            &db,
            PvParams {
                build_threads: 1,
                ..params
            },
        );
        let rebuild_serial_s = t0.elapsed().as_secs_f64();
        drop(serial_rebuilt);
        let t0 = Instant::now();
        let mut index = PvIndex::build(&db, params);
        let rebuild_s = t0.elapsed().as_secs_f64();

        // Deletion: remove `batch` random-ish objects incrementally.
        let victims: Vec<u64> = (0..batch as u64)
            .map(|k| k * (n as u64 / batch as u64))
            .collect();
        let t0 = Instant::now();
        for &id in &victims {
            index.remove(id).expect("victim exists");
        }
        let del_inc = t0.elapsed().as_secs_f64() / batch as f64;

        // Insertion: put them back incrementally.
        let t0 = Instant::now();
        for &id in &victims {
            index
                .insert(db.objects[id as usize].clone())
                .expect("insert");
        }
        let ins_inc = t0.elapsed().as_secs_f64() / batch as f64;

        th.row(vec![
            n.to_string(),
            format!("{ins_inc:.4}"),
            format!("{rebuild_serial_s:.2}"),
            format!("{rebuild_s:.2}"),
            format!("{:.0}", rebuild_serial_s / ins_inc.max(1e-12)),
        ]);
        ti.row(vec![
            n.to_string(),
            format!("{del_inc:.4}"),
            format!("{rebuild_serial_s:.2}"),
            format!("{rebuild_s:.2}"),
            format!("{:.0}", rebuild_serial_s / del_inc.max(1e-12)),
        ]);
    }
    th.finish();
    ti.finish();
}

/// §VII-C(a): parameter sensitivity of `Tq` and `Tc` (Δ, k, kpartition).
pub fn params_sensitivity(ctx: &Ctx) {
    let db = ctx.synthetic_db(ctx.preset.s_default().min(6_000), D_DEFAULT, U_DEFAULT, 570);
    let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9700);

    let mut t = Table::new(
        "params_delta",
        "§VII-C(a): Tq stability vs Δ",
        &["delta", "Tq_pv_ms"],
    );
    for &delta in &[0.1, 0.5, 1.0, 10.0, 100.0, 1000.0] {
        let index = PvIndex::build(
            &db,
            PvParams {
                delta,
                ..ctx.pv_params()
            },
        );
        let avg = run_queries(
            |q| index.execute(q, &QuerySpec::new()).expect("query").stats,
            &qs,
        );
        t.row(vec![format!("{delta}"), Table::ms(avg.tq)]);
    }
    t.finish();

    let mut t = Table::new(
        "params_k",
        "§VII-C(a): Tq and Tc vs FS k",
        &["k", "Tq_pv_ms", "Tc_s"],
    );
    for &k in &[20usize, 40, 100, 200, 400] {
        let index = PvIndex::build(
            &db,
            PvParams {
                cset: CSetStrategy::Fixed { k },
                ..ctx.pv_params()
            },
        );
        let avg = run_queries(
            |q| index.execute(q, &QuerySpec::new()).expect("query").stats,
            &qs,
        );
        t.row(vec![
            k.to_string(),
            Table::ms(avg.tq),
            format!("{:.2}", index.build_stats().total_time.as_secs_f64()),
        ]);
    }
    t.finish();

    let mut t = Table::new(
        "params_kpartition",
        "§VII-C(a): Tq and Tc vs IS kpartition",
        &["kpartition", "Tq_pv_ms", "Tc_s", "avg_cset"],
    );
    for &kp in &[2usize, 5, 10, 20, 50] {
        let index = PvIndex::build(
            &db,
            PvParams {
                cset: CSetStrategy::Incremental {
                    k_partition: kp,
                    k_global: 200,
                },
                ..ctx.pv_params()
            },
        );
        let avg = run_queries(
            |q| index.execute(q, &QuerySpec::new()).expect("query").stats,
            &qs,
        );
        t.row(vec![
            kp.to_string(),
            Table::ms(avg.tq),
            format!("{:.2}", index.build_stats().total_time.as_secs_f64()),
            format!("{:.0}", index.build_stats().avg_cset_size()),
        ]);
    }
    t.finish();

    let mut t = Table::new(
        "params_mmax",
        "ablation: Tc and UBR tightness vs mmax (partition budget)",
        &["mmax", "Tc_s", "avg_ubr_volume"],
    );
    for &mmax in &[2usize, 5, 10, 20, 40] {
        let index = PvIndex::build(
            &db,
            PvParams {
                mmax,
                ..ctx.pv_params()
            },
        );
        let vol: f64 = db
            .objects
            .iter()
            .map(|o| index.ubr(o.id).unwrap().volume())
            .sum::<f64>()
            / db.len() as f64;
        t.row(vec![
            mmax.to_string(),
            format!("{:.2}", index.build_stats().total_time.as_secs_f64()),
            format!("{vol:.3e}"),
        ]);
    }
    t.finish();
}

/// §VII-C(c): query-performance parity of incrementally maintained vs
/// rebuilt indexes.
pub fn update_quality(ctx: &Ctx) {
    let mut t = Table::new(
        "updquality",
        "§VII-C(c): Tq after Inc vs after Rebuild (parity check)",
        &[
            "operation",
            "Tq_inc_ms",
            "Tq_rebuild_ms",
            "diff_pct",
            "answers_equal",
        ],
    );
    let n = ctx.preset.s_default().min(6_000);
    let db = ctx.synthetic_db(n, D_DEFAULT, U_DEFAULT, 580);
    let params = ctx.pv_params();
    let batch = ctx.preset.update_batch().min(n / 10);
    let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9800);

    // Deletion parity.
    let mut inc = PvIndex::build(&db, params);
    let victims: Vec<u64> = (0..batch as u64).collect();
    for &id in &victims {
        inc.remove(id).expect("victim exists");
    }
    let remaining = UncertainDb::new(
        db.domain.clone(),
        db.objects
            .iter()
            .filter(|o| !victims.contains(&o.id))
            .cloned()
            .collect(),
    );
    let rebuilt = PvIndex::build(&remaining, params);
    let a = run_queries(
        |q| inc.execute(q, &QuerySpec::new()).expect("query").stats,
        &qs,
    );
    let b = run_queries(
        |q| rebuilt.execute(q, &QuerySpec::new()).expect("query").stats,
        &qs,
    );
    let equal = qs.iter().all(|q| inc.step1(q).0 == rebuilt.step1(q).0);
    t.row(vec![
        "deletion".into(),
        Table::ms(a.tq),
        Table::ms(b.tq),
        format!(
            "{:.2}",
            100.0 * (a.tq.as_secs_f64() - b.tq.as_secs_f64()) / b.tq.as_secs_f64()
        ),
        equal.to_string(),
    ]);

    // Insertion parity: re-insert the victims.
    for &id in &victims {
        inc.insert(db.objects[id as usize].clone()).expect("insert");
    }
    let rebuilt = PvIndex::build(&db, params);
    let a = run_queries(
        |q| inc.execute(q, &QuerySpec::new()).expect("query").stats,
        &qs,
    );
    let b = run_queries(
        |q| rebuilt.execute(q, &QuerySpec::new()).expect("query").stats,
        &qs,
    );
    let equal = qs.iter().all(|q| inc.step1(q).0 == rebuilt.step1(q).0);
    t.row(vec![
        "insertion".into(),
        Table::ms(a.tq),
        Table::ms(b.tq),
        format!(
            "{:.2}",
            100.0 * (a.tq.as_secs_f64() - b.tq.as_secs_f64()) / b.tq.as_secs_f64()
        ),
        equal.to_string(),
    ]);
    t.finish();
}

/// Table I: prints the parameter grid in effect for a preset.
pub fn table1(ctx: &Ctx) {
    let mut t = Table::new(
        "table1",
        "Table I: parameters (defaults in use)",
        &["parameter", "paper_values", "default", "preset_in_use"],
    );
    let p = PvParams::default();
    let rows: Vec<(&str, String, String, String)> = vec![
        (
            "|S|",
            "20k..100k".into(),
            "100k".into(),
            format!("{:?} → {:?}", ctx.preset, ctx.preset.s_sweep()),
        ),
        ("d", "2..5".into(), "3".into(), "3 (sweeps 2..5)".into()),
        (
            "|u(o)|",
            "20..100".into(),
            "60".into(),
            "60 (sweeps 20..100)".into(),
        ),
        (
            "delta",
            "0.1..1000".into(),
            "1".into(),
            format!("{}", p.delta),
        ),
        ("mmax", "2..40".into(), "10".into(), format!("{}", p.mmax)),
        ("k (FS)", "20..400".into(), "200".into(), "200".into()),
        ("kpartition", "2..50".into(), "10".into(), "10".into()),
        ("kglobal", "200".into(), "200".into(), "200".into()),
        (
            "page size",
            "4 KiB".into(),
            "4 KiB".into(),
            format!("{} B", p.page_size),
        ),
        (
            "memory M",
            "5 MB".into(),
            "5 MB".into(),
            format!("{} B", p.mem_budget),
        ),
        (
            "samples/pdf",
            "500".into(),
            "500".into(),
            format!("{}", ctx.preset.samples()),
        ),
        (
            "queries/point",
            "50".into(),
            "50".into(),
            format!("{}", ctx.preset.queries()),
        ),
    ];
    for (name, paper, default, used) in rows {
        t.row(vec![name.to_string(), paper, default, used]);
    }
    t.finish();
}

/// Space / compression ablation (§II space claims + §VIII "compression"
/// future work): disk footprint and query cost of the PV-index with and
/// without quantized UBRs, against the UV-index on the same 2-D data.
pub fn space(ctx: &Ctx) {
    let mut t = Table::new(
        "space",
        "Space ablation: disk footprint and query cost",
        &[
            "index",
            "disk_KiB",
            "mem_KiB",
            "leaf_records",
            "Tq_step1_ms",
            "io_step1",
        ],
    );
    let db = ctx.synthetic_db(ctx.preset.s_default().min(6_000), 2, U_DEFAULT, 590);
    let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9900);

    let mut add_pv = |name: &str, params: PvParams| {
        let index = PvIndex::build(&db, params);
        let mut t_total = Duration::ZERO;
        let mut io = 0u64;
        for q in &qs {
            let (_, st) = index.step1(q);
            t_total += st.time;
            io += st.io_reads;
        }
        let ot = index.octree_stats();
        t.row(vec![
            name.to_string(),
            (index.pager().disk_bytes() / 1024).to_string(),
            (ot.mem_used / 1024).to_string(),
            ot.leaf_records.to_string(),
            Table::ms(t_total / qs.len() as u32),
            format!("{:.2}", io as f64 / qs.len() as f64),
        ]);
    };
    add_pv("pv", ctx.pv_params());
    add_pv(
        "pv+quantized_ubrs",
        PvParams {
            ubr_quantize_steps: Some(65_535),
            ..ctx.pv_params()
        },
    );

    let uv = UvIndex::build(&db, UvParams::matching(&ctx.pv_params()));
    let mut t_total = Duration::ZERO;
    let mut io = 0u64;
    for q in &qs {
        let (_, st) = uv.step1(q);
        t_total += st.time;
        io += st.io_reads;
    }
    t.row(vec![
        "uv".to_string(),
        (uv.pager().disk_bytes() / 1024).to_string(),
        "-".to_string(),
        "-".to_string(),
        Table::ms(t_total / qs.len() as u32),
        format!("{:.2}", io as f64 / qs.len() as f64),
    ]);
    t.finish();
}

/// Unified-API engine comparison: all four engines (PV-index, R-tree,
/// UV-index, linear scan) answer the same top-5 workload through the shared
/// [`Step1Engine`]/[`ProbNnEngine`] traits, are verified against the
/// linear-scan ground truth, and run the same workload through
/// `query_batch` sequentially and in parallel.
pub fn engines(ctx: &Ctx) {
    let mut t = Table::new(
        "engines",
        "Unified query API: top-5 PNNQ through ProbNnEngine, all engines (2-D)",
        &[
            "engine",
            "Tq_ms",
            "io_q",
            "answers",
            "top5_vs_linear_pct",
            "batch_seq_qps",
            "batch_par_qps",
            "par_speedup_x",
        ],
    );
    let db = ctx.synthetic_db(ctx.preset.s_default().min(4_000), 2, U_DEFAULT, 600);
    let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9950);
    let params = ctx.pv_params();
    let pv = PvIndex::build(&db, params);
    let rt = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
    let uv = UvIndex::build(&db, UvParams::matching(&params));
    let scan = LinearScan::with_page_size(&db, params.page_size);
    let spec = QuerySpec::new().with_top_k(5);
    let truth: Vec<Vec<(u64, f64)>> = qs
        .iter()
        .map(|q| scan.execute(q, &spec).expect("query").answers)
        .collect();

    fn row<E: ProbNnEngine + Sync>(
        e: &E,
        qs: &[Point],
        truth: &[Vec<(u64, f64)>],
        spec: &QuerySpec,
        t: &mut Table,
    ) {
        let mut matches = 0usize;
        let mut tq = Duration::ZERO;
        let mut io = 0u64;
        let mut answers = 0usize;
        for (q, want) in qs.iter().zip(truth) {
            let out = e.execute(q, spec).expect("query");
            let close = out.answers.len() == want.len()
                && out
                    .answers
                    .iter()
                    .zip(want)
                    .all(|(a, b)| a.0 == b.0 && (a.1 - b.1).abs() < 1e-9);
            matches += close as usize;
            tq += out.stats.total_time();
            io += out.stats.total_io();
            answers += out.answers.len();
        }
        let seq = e
            .query_batch(qs, &spec.clone().with_batch_threads(1))
            .expect("batch");
        let par = e.query_batch(qs, spec).expect("batch");
        let m = qs.len();
        t.row(vec![
            e.engine_name().to_string(),
            Table::ms(tq / m as u32),
            format!("{:.2}", io as f64 / m as f64),
            format!("{:.1}", answers as f64 / m as f64),
            format!("{:.0}", 100.0 * matches as f64 / m as f64),
            format!("{:.0}", seq.stats.queries_per_sec()),
            format!("{:.0}", par.stats.queries_per_sec()),
            format!(
                "{:.2}",
                par.stats.queries_per_sec() / seq.stats.queries_per_sec().max(1e-9)
            ),
        ]);
    }
    row(&pv, &qs, &truth, &spec, &mut t);
    row(&rt, &qs, &truth, &spec, &mut t);
    row(&uv, &qs, &truth, &spec, &mut t);
    row(&scan, &qs, &truth, &spec, &mut t);
    t.finish();
}

/// Persistent index snapshots: cold-build vs save / load cost and file size
/// for every engine that persists, verifying the loaded index answers
/// identically. This is the "build once, serve many" experiment behind the
/// roadmap's warm-restart requirement (see ARCHITECTURE.md §6).
pub fn snapshot(ctx: &Ctx) {
    let mut t = Table::new(
        "snapshot",
        "Persistent snapshots: build vs load, with answer verification",
        &[
            "engine",
            "build_ms",
            "save_ms",
            "file_KiB",
            "load_ms",
            "build/load_x",
            "answers_identical",
        ],
    );
    let db = ctx.synthetic_db(ctx.preset.s_default().min(4_000), 2, U_DEFAULT, 610);
    let qs = queries::uniform(&db.domain, ctx.preset.queries(), 9960);
    let params = ctx.pv_params();
    let spec = QuerySpec::new();

    /// One measurement protocol for every engine: time build, save, load;
    /// record the file size; verify the loaded copy answers identically.
    #[allow(clippy::too_many_arguments)]
    fn case<E: ProbNnEngine>(
        t: &mut Table,
        name: &str,
        ext: &str,
        qs: &[Point],
        spec: &QuerySpec,
        build: impl FnOnce() -> E,
        save: impl FnOnce(&E, &std::path::Path),
        load: impl FnOnce(&std::path::Path) -> E,
    ) {
        let path =
            std::env::temp_dir().join(format!("pv_bench_snapshot_{}.{ext}", std::process::id()));
        let t0 = Instant::now();
        let built = build();
        let build_time = t0.elapsed();
        let t0 = Instant::now();
        save(&built, &path);
        let save_time = t0.elapsed();
        let file_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
        let t0 = Instant::now();
        let loaded = load(&path);
        let load_time = t0.elapsed();
        let identical = qs.iter().all(|q| {
            built.execute(q, spec).expect("query").answers
                == loaded.execute(q, spec).expect("query").answers
        });
        t.row(vec![
            name.to_string(),
            Table::ms(build_time),
            Table::ms(save_time),
            format!("{:.1}", file_bytes as f64 / 1024.0),
            Table::ms(load_time),
            format!(
                "{:.1}",
                build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
            ),
            identical.to_string(),
        ]);
        let _ = std::fs::remove_file(&path);
    }

    case(
        &mut t,
        "pv-index",
        "pvix",
        &qs,
        &spec,
        || PvIndex::build(&db, params),
        |e, p| e.save(p).expect("save snapshot"),
        |p| PvIndex::load(p).expect("load snapshot"),
    );
    case(
        &mut t,
        "rtree",
        "pvrt",
        &qs,
        &spec,
        || RTreeBaseline::build(&db, params.rtree_fanout, params.page_size),
        |e, p| e.save(p).expect("save snapshot"),
        |p| RTreeBaseline::load(p).expect("load snapshot"),
    );
    // UV-index: 2-D only; the most expensive build, so the biggest win.
    case(
        &mut t,
        "uv-index",
        "pvuv",
        &qs,
        &spec,
        || UvIndex::build(&db, UvParams::matching(&params)),
        |e, p| e.save(p).expect("save snapshot"),
        |p| UvIndex::load(p).expect("load snapshot"),
    );

    t.finish();
}
